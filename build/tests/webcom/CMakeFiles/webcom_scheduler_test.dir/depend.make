# Empty dependencies file for webcom_scheduler_test.
# This may be replaced when dependencies are built.
