file(REMOVE_RECURSE
  "CMakeFiles/webcom_scheduler_test.dir/scheduler_test.cpp.o"
  "CMakeFiles/webcom_scheduler_test.dir/scheduler_test.cpp.o.d"
  "webcom_scheduler_test"
  "webcom_scheduler_test.pdb"
  "webcom_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
