# Empty dependencies file for webcom_graph_test.
# This may be replaced when dependencies are built.
