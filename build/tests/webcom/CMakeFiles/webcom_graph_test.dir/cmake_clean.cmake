file(REMOVE_RECURSE
  "CMakeFiles/webcom_graph_test.dir/graph_test.cpp.o"
  "CMakeFiles/webcom_graph_test.dir/graph_test.cpp.o.d"
  "webcom_graph_test"
  "webcom_graph_test.pdb"
  "webcom_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
