file(REMOVE_RECURSE
  "CMakeFiles/webcom_flatten_test.dir/flatten_test.cpp.o"
  "CMakeFiles/webcom_flatten_test.dir/flatten_test.cpp.o.d"
  "webcom_flatten_test"
  "webcom_flatten_test.pdb"
  "webcom_flatten_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_flatten_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
