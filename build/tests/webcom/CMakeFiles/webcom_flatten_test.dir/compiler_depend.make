# Empty compiler generated dependencies file for webcom_flatten_test.
# This may be replaced when dependencies are built.
