# Empty compiler generated dependencies file for webcom_engine_test.
# This may be replaced when dependencies are built.
