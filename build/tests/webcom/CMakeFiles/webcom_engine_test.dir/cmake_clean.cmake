file(REMOVE_RECURSE
  "CMakeFiles/webcom_engine_test.dir/engine_test.cpp.o"
  "CMakeFiles/webcom_engine_test.dir/engine_test.cpp.o.d"
  "webcom_engine_test"
  "webcom_engine_test.pdb"
  "webcom_engine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
