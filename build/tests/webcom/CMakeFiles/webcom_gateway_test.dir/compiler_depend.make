# Empty compiler generated dependencies file for webcom_gateway_test.
# This may be replaced when dependencies are built.
