file(REMOVE_RECURSE
  "CMakeFiles/webcom_gateway_test.dir/gateway_test.cpp.o"
  "CMakeFiles/webcom_gateway_test.dir/gateway_test.cpp.o.d"
  "webcom_gateway_test"
  "webcom_gateway_test.pdb"
  "webcom_gateway_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_gateway_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
