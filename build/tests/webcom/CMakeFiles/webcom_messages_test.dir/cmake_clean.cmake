file(REMOVE_RECURSE
  "CMakeFiles/webcom_messages_test.dir/messages_test.cpp.o"
  "CMakeFiles/webcom_messages_test.dir/messages_test.cpp.o.d"
  "webcom_messages_test"
  "webcom_messages_test.pdb"
  "webcom_messages_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_messages_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
