# Empty dependencies file for webcom_messages_test.
# This may be replaced when dependencies are built.
