file(REMOVE_RECURSE
  "CMakeFiles/webcom_fault_injection_test.dir/fault_injection_test.cpp.o"
  "CMakeFiles/webcom_fault_injection_test.dir/fault_injection_test.cpp.o.d"
  "webcom_fault_injection_test"
  "webcom_fault_injection_test.pdb"
  "webcom_fault_injection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_fault_injection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
