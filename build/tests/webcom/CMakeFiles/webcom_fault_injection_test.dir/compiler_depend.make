# Empty compiler generated dependencies file for webcom_fault_injection_test.
# This may be replaced when dependencies are built.
