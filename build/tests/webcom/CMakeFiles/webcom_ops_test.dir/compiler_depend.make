# Empty compiler generated dependencies file for webcom_ops_test.
# This may be replaced when dependencies are built.
