file(REMOVE_RECURSE
  "CMakeFiles/webcom_ops_test.dir/ops_test.cpp.o"
  "CMakeFiles/webcom_ops_test.dir/ops_test.cpp.o.d"
  "webcom_ops_test"
  "webcom_ops_test.pdb"
  "webcom_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/webcom_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
