# CMake generated Testfile for 
# Source directory: /root/repo/tests/webcom
# Build directory: /root/repo/build/tests/webcom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/webcom/webcom_graph_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_ops_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_engine_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_messages_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_flatten_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_fault_injection_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_graph_io_test[1]_include.cmake")
include("/root/repo/build/tests/webcom/webcom_gateway_test[1]_include.cmake")
