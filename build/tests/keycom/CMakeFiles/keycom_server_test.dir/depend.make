# Empty dependencies file for keycom_server_test.
# This may be replaced when dependencies are built.
