file(REMOVE_RECURSE
  "CMakeFiles/keycom_server_test.dir/server_test.cpp.o"
  "CMakeFiles/keycom_server_test.dir/server_test.cpp.o.d"
  "keycom_server_test"
  "keycom_server_test.pdb"
  "keycom_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keycom_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
