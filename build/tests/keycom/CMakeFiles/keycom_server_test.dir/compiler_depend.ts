# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for keycom_server_test.
