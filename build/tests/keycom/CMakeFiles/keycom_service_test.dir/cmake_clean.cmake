file(REMOVE_RECURSE
  "CMakeFiles/keycom_service_test.dir/service_test.cpp.o"
  "CMakeFiles/keycom_service_test.dir/service_test.cpp.o.d"
  "keycom_service_test"
  "keycom_service_test.pdb"
  "keycom_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keycom_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
