# Empty compiler generated dependencies file for keycom_service_test.
# This may be replaced when dependencies are built.
