# CMake generated Testfile for 
# Source directory: /root/repo/tests/keycom
# Build directory: /root/repo/build/tests/keycom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/keycom/keycom_service_test[1]_include.cmake")
include("/root/repo/build/tests/keycom/keycom_server_test[1]_include.cmake")
