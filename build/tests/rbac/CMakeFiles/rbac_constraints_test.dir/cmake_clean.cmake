file(REMOVE_RECURSE
  "CMakeFiles/rbac_constraints_test.dir/constraints_test.cpp.o"
  "CMakeFiles/rbac_constraints_test.dir/constraints_test.cpp.o.d"
  "rbac_constraints_test"
  "rbac_constraints_test.pdb"
  "rbac_constraints_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_constraints_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
