# Empty compiler generated dependencies file for rbac_constraints_test.
# This may be replaced when dependencies are built.
