# Empty dependencies file for rbac_sessions_test.
# This may be replaced when dependencies are built.
