file(REMOVE_RECURSE
  "CMakeFiles/rbac_sessions_test.dir/sessions_test.cpp.o"
  "CMakeFiles/rbac_sessions_test.dir/sessions_test.cpp.o.d"
  "rbac_sessions_test"
  "rbac_sessions_test.pdb"
  "rbac_sessions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_sessions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
