# Empty dependencies file for rbac_hierarchy_test.
# This may be replaced when dependencies are built.
