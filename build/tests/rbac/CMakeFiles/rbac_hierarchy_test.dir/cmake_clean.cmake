file(REMOVE_RECURSE
  "CMakeFiles/rbac_hierarchy_test.dir/hierarchy_test.cpp.o"
  "CMakeFiles/rbac_hierarchy_test.dir/hierarchy_test.cpp.o.d"
  "rbac_hierarchy_test"
  "rbac_hierarchy_test.pdb"
  "rbac_hierarchy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_hierarchy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
