file(REMOVE_RECURSE
  "CMakeFiles/rbac_model_test.dir/model_test.cpp.o"
  "CMakeFiles/rbac_model_test.dir/model_test.cpp.o.d"
  "rbac_model_test"
  "rbac_model_test.pdb"
  "rbac_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
