# Empty compiler generated dependencies file for rbac_model_test.
# This may be replaced when dependencies are built.
