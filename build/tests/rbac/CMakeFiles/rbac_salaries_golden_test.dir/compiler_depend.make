# Empty compiler generated dependencies file for rbac_salaries_golden_test.
# This may be replaced when dependencies are built.
