file(REMOVE_RECURSE
  "CMakeFiles/rbac_salaries_golden_test.dir/salaries_golden_test.cpp.o"
  "CMakeFiles/rbac_salaries_golden_test.dir/salaries_golden_test.cpp.o.d"
  "rbac_salaries_golden_test"
  "rbac_salaries_golden_test.pdb"
  "rbac_salaries_golden_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_salaries_golden_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
