# Empty dependencies file for rbac_table_io_test.
# This may be replaced when dependencies are built.
