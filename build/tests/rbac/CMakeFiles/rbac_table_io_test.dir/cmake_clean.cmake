file(REMOVE_RECURSE
  "CMakeFiles/rbac_table_io_test.dir/table_io_test.cpp.o"
  "CMakeFiles/rbac_table_io_test.dir/table_io_test.cpp.o.d"
  "rbac_table_io_test"
  "rbac_table_io_test.pdb"
  "rbac_table_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_table_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
