# CMake generated Testfile for 
# Source directory: /root/repo/tests/rbac
# Build directory: /root/repo/build/tests/rbac
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/rbac/rbac_model_test[1]_include.cmake")
include("/root/repo/build/tests/rbac/rbac_salaries_golden_test[1]_include.cmake")
include("/root/repo/build/tests/rbac/rbac_hierarchy_test[1]_include.cmake")
include("/root/repo/build/tests/rbac/rbac_constraints_test[1]_include.cmake")
include("/root/repo/build/tests/rbac/rbac_sessions_test[1]_include.cmake")
include("/root/repo/build/tests/rbac/rbac_table_io_test[1]_include.cmake")
