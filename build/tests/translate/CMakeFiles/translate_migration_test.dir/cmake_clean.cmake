file(REMOVE_RECURSE
  "CMakeFiles/translate_migration_test.dir/migration_test.cpp.o"
  "CMakeFiles/translate_migration_test.dir/migration_test.cpp.o.d"
  "translate_migration_test"
  "translate_migration_test.pdb"
  "translate_migration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_migration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
