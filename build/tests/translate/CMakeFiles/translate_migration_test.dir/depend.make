# Empty dependencies file for translate_migration_test.
# This may be replaced when dependencies are built.
