# Empty dependencies file for translate_rbac_to_keynote_test.
# This may be replaced when dependencies are built.
