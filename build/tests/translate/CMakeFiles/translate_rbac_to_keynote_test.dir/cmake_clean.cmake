file(REMOVE_RECURSE
  "CMakeFiles/translate_rbac_to_keynote_test.dir/rbac_to_keynote_test.cpp.o"
  "CMakeFiles/translate_rbac_to_keynote_test.dir/rbac_to_keynote_test.cpp.o.d"
  "translate_rbac_to_keynote_test"
  "translate_rbac_to_keynote_test.pdb"
  "translate_rbac_to_keynote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_rbac_to_keynote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
