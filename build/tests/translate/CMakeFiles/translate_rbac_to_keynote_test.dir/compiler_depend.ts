# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for translate_rbac_to_keynote_test.
