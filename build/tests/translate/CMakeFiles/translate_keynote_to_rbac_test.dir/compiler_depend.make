# Empty compiler generated dependencies file for translate_keynote_to_rbac_test.
# This may be replaced when dependencies are built.
