file(REMOVE_RECURSE
  "CMakeFiles/translate_keynote_to_rbac_test.dir/keynote_to_rbac_test.cpp.o"
  "CMakeFiles/translate_keynote_to_rbac_test.dir/keynote_to_rbac_test.cpp.o.d"
  "translate_keynote_to_rbac_test"
  "translate_keynote_to_rbac_test.pdb"
  "translate_keynote_to_rbac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_keynote_to_rbac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
