# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for translate_keynote_to_rbac_test.
