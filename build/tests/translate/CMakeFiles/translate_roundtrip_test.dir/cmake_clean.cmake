file(REMOVE_RECURSE
  "CMakeFiles/translate_roundtrip_test.dir/roundtrip_test.cpp.o"
  "CMakeFiles/translate_roundtrip_test.dir/roundtrip_test.cpp.o.d"
  "translate_roundtrip_test"
  "translate_roundtrip_test.pdb"
  "translate_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
