file(REMOVE_RECURSE
  "CMakeFiles/translate_hierarchy_translate_test.dir/hierarchy_translate_test.cpp.o"
  "CMakeFiles/translate_hierarchy_translate_test.dir/hierarchy_translate_test.cpp.o.d"
  "translate_hierarchy_translate_test"
  "translate_hierarchy_translate_test.pdb"
  "translate_hierarchy_translate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_hierarchy_translate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
