# Empty compiler generated dependencies file for translate_hierarchy_translate_test.
# This may be replaced when dependencies are built.
