# Empty dependencies file for translate_similarity_test.
# This may be replaced when dependencies are built.
