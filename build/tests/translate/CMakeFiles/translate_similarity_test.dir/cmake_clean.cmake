file(REMOVE_RECURSE
  "CMakeFiles/translate_similarity_test.dir/similarity_test.cpp.o"
  "CMakeFiles/translate_similarity_test.dir/similarity_test.cpp.o.d"
  "translate_similarity_test"
  "translate_similarity_test.pdb"
  "translate_similarity_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_similarity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
