file(REMOVE_RECURSE
  "CMakeFiles/translate_migration_property_test.dir/migration_property_test.cpp.o"
  "CMakeFiles/translate_migration_property_test.dir/migration_property_test.cpp.o.d"
  "translate_migration_property_test"
  "translate_migration_property_test.pdb"
  "translate_migration_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/translate_migration_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
