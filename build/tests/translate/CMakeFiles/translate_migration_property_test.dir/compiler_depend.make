# Empty compiler generated dependencies file for translate_migration_property_test.
# This may be replaced when dependencies are built.
