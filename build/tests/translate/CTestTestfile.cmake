# CMake generated Testfile for 
# Source directory: /root/repo/tests/translate
# Build directory: /root/repo/build/tests/translate
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/translate/translate_rbac_to_keynote_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_keynote_to_rbac_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_roundtrip_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_similarity_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_migration_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_migration_property_test[1]_include.cmake")
include("/root/repo/build/tests/translate/translate_hierarchy_translate_test[1]_include.cmake")
