file(REMOVE_RECURSE
  "CMakeFiles/integration_full_system_test.dir/full_system_test.cpp.o"
  "CMakeFiles/integration_full_system_test.dir/full_system_test.cpp.o.d"
  "integration_full_system_test"
  "integration_full_system_test.pdb"
  "integration_full_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_full_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
