# Empty dependencies file for integration_full_system_test.
# This may be replaced when dependencies are built.
