file(REMOVE_RECURSE
  "CMakeFiles/integration_key_io_test.dir/key_io_test.cpp.o"
  "CMakeFiles/integration_key_io_test.dir/key_io_test.cpp.o.d"
  "integration_key_io_test"
  "integration_key_io_test.pdb"
  "integration_key_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_key_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
