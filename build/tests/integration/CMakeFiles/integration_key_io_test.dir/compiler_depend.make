# Empty compiler generated dependencies file for integration_key_io_test.
# This may be replaced when dependencies are built.
