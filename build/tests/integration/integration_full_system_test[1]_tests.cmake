add_test([=[FullSystem.PaperScenarioEndToEnd]=]  /root/repo/build/tests/integration/integration_full_system_test [==[--gtest_filter=FullSystem.PaperScenarioEndToEnd]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[FullSystem.PaperScenarioEndToEnd]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests/integration SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  integration_full_system_test_TESTS FullSystem.PaperScenarioEndToEnd)
