file(REMOVE_RECURSE
  "CMakeFiles/crypto_keys_test.dir/keys_test.cpp.o"
  "CMakeFiles/crypto_keys_test.dir/keys_test.cpp.o.d"
  "crypto_keys_test"
  "crypto_keys_test.pdb"
  "crypto_keys_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_keys_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
