# Empty compiler generated dependencies file for crypto_prime_test.
# This may be replaced when dependencies are built.
