file(REMOVE_RECURSE
  "CMakeFiles/crypto_prime_test.dir/prime_test.cpp.o"
  "CMakeFiles/crypto_prime_test.dir/prime_test.cpp.o.d"
  "crypto_prime_test"
  "crypto_prime_test.pdb"
  "crypto_prime_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_prime_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
