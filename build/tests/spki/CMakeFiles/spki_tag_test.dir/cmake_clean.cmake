file(REMOVE_RECURSE
  "CMakeFiles/spki_tag_test.dir/tag_test.cpp.o"
  "CMakeFiles/spki_tag_test.dir/tag_test.cpp.o.d"
  "spki_tag_test"
  "spki_tag_test.pdb"
  "spki_tag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spki_tag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
