# Empty compiler generated dependencies file for spki_tag_test.
# This may be replaced when dependencies are built.
