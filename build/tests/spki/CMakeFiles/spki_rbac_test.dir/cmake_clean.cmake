file(REMOVE_RECURSE
  "CMakeFiles/spki_rbac_test.dir/rbac_test.cpp.o"
  "CMakeFiles/spki_rbac_test.dir/rbac_test.cpp.o.d"
  "spki_rbac_test"
  "spki_rbac_test.pdb"
  "spki_rbac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spki_rbac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
