# Empty compiler generated dependencies file for spki_rbac_test.
# This may be replaced when dependencies are built.
