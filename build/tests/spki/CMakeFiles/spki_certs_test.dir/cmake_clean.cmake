file(REMOVE_RECURSE
  "CMakeFiles/spki_certs_test.dir/certs_test.cpp.o"
  "CMakeFiles/spki_certs_test.dir/certs_test.cpp.o.d"
  "spki_certs_test"
  "spki_certs_test.pdb"
  "spki_certs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spki_certs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
