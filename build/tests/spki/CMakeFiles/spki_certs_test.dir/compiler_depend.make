# Empty compiler generated dependencies file for spki_certs_test.
# This may be replaced when dependencies are built.
