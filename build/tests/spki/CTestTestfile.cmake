# CMake generated Testfile for 
# Source directory: /root/repo/tests/spki
# Build directory: /root/repo/build/tests/spki
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/spki/spki_tag_test[1]_include.cmake")
include("/root/repo/build/tests/spki/spki_certs_test[1]_include.cmake")
include("/root/repo/build/tests/spki/spki_rbac_test[1]_include.cmake")
