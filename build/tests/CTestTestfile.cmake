# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("keynote")
subdirs("rbac")
subdirs("middleware")
subdirs("translate")
subdirs("net")
subdirs("webcom")
subdirs("stack")
subdirs("keycom")
subdirs("ide")
subdirs("spki")
subdirs("integration")
