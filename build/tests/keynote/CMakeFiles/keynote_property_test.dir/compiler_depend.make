# Empty compiler generated dependencies file for keynote_property_test.
# This may be replaced when dependencies are built.
