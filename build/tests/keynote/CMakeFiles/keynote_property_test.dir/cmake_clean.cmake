file(REMOVE_RECURSE
  "CMakeFiles/keynote_property_test.dir/property_test.cpp.o"
  "CMakeFiles/keynote_property_test.dir/property_test.cpp.o.d"
  "keynote_property_test"
  "keynote_property_test.pdb"
  "keynote_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
