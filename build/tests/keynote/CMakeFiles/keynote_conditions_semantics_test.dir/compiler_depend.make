# Empty compiler generated dependencies file for keynote_conditions_semantics_test.
# This may be replaced when dependencies are built.
