file(REMOVE_RECURSE
  "CMakeFiles/keynote_conditions_semantics_test.dir/conditions_semantics_test.cpp.o"
  "CMakeFiles/keynote_conditions_semantics_test.dir/conditions_semantics_test.cpp.o.d"
  "keynote_conditions_semantics_test"
  "keynote_conditions_semantics_test.pdb"
  "keynote_conditions_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_conditions_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
