# Empty compiler generated dependencies file for keynote_store_test.
# This may be replaced when dependencies are built.
