file(REMOVE_RECURSE
  "CMakeFiles/keynote_store_test.dir/store_test.cpp.o"
  "CMakeFiles/keynote_store_test.dir/store_test.cpp.o.d"
  "keynote_store_test"
  "keynote_store_test.pdb"
  "keynote_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
