# Empty dependencies file for keynote_paper_figures_test.
# This may be replaced when dependencies are built.
