file(REMOVE_RECURSE
  "CMakeFiles/keynote_paper_figures_test.dir/paper_figures_test.cpp.o"
  "CMakeFiles/keynote_paper_figures_test.dir/paper_figures_test.cpp.o.d"
  "keynote_paper_figures_test"
  "keynote_paper_figures_test.pdb"
  "keynote_paper_figures_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_paper_figures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
