# Empty dependencies file for keynote_assertion_test.
# This may be replaced when dependencies are built.
