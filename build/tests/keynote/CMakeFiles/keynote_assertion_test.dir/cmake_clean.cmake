file(REMOVE_RECURSE
  "CMakeFiles/keynote_assertion_test.dir/assertion_test.cpp.o"
  "CMakeFiles/keynote_assertion_test.dir/assertion_test.cpp.o.d"
  "keynote_assertion_test"
  "keynote_assertion_test.pdb"
  "keynote_assertion_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_assertion_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
