# Empty dependencies file for keynote_lexer_test.
# This may be replaced when dependencies are built.
