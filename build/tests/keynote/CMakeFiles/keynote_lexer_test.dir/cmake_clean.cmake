file(REMOVE_RECURSE
  "CMakeFiles/keynote_lexer_test.dir/lexer_test.cpp.o"
  "CMakeFiles/keynote_lexer_test.dir/lexer_test.cpp.o.d"
  "keynote_lexer_test"
  "keynote_lexer_test.pdb"
  "keynote_lexer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_lexer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
