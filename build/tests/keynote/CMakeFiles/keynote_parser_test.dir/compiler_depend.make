# Empty compiler generated dependencies file for keynote_parser_test.
# This may be replaced when dependencies are built.
