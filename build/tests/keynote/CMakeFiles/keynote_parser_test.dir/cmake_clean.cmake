file(REMOVE_RECURSE
  "CMakeFiles/keynote_parser_test.dir/parser_test.cpp.o"
  "CMakeFiles/keynote_parser_test.dir/parser_test.cpp.o.d"
  "keynote_parser_test"
  "keynote_parser_test.pdb"
  "keynote_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
