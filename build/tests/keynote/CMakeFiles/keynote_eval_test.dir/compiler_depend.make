# Empty compiler generated dependencies file for keynote_eval_test.
# This may be replaced when dependencies are built.
