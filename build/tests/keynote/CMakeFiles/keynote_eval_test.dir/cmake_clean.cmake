file(REMOVE_RECURSE
  "CMakeFiles/keynote_eval_test.dir/eval_test.cpp.o"
  "CMakeFiles/keynote_eval_test.dir/eval_test.cpp.o.d"
  "keynote_eval_test"
  "keynote_eval_test.pdb"
  "keynote_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
