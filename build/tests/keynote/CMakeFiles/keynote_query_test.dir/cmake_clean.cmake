file(REMOVE_RECURSE
  "CMakeFiles/keynote_query_test.dir/query_test.cpp.o"
  "CMakeFiles/keynote_query_test.dir/query_test.cpp.o.d"
  "keynote_query_test"
  "keynote_query_test.pdb"
  "keynote_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keynote_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
