# Empty compiler generated dependencies file for keynote_query_test.
# This may be replaced when dependencies are built.
