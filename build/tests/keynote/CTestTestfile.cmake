# CMake generated Testfile for 
# Source directory: /root/repo/tests/keynote
# Build directory: /root/repo/build/tests/keynote
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/keynote/keynote_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_parser_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_eval_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_assertion_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_query_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_store_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_paper_figures_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_property_test[1]_include.cmake")
include("/root/repo/build/tests/keynote/keynote_conditions_semantics_test[1]_include.cmake")
