# Empty dependencies file for stack_layers_test.
# This may be replaced when dependencies are built.
