file(REMOVE_RECURSE
  "CMakeFiles/stack_layers_test.dir/layers_test.cpp.o"
  "CMakeFiles/stack_layers_test.dir/layers_test.cpp.o.d"
  "stack_layers_test"
  "stack_layers_test.pdb"
  "stack_layers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_layers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
