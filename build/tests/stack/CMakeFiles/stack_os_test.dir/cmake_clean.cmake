file(REMOVE_RECURSE
  "CMakeFiles/stack_os_test.dir/os_test.cpp.o"
  "CMakeFiles/stack_os_test.dir/os_test.cpp.o.d"
  "stack_os_test"
  "stack_os_test.pdb"
  "stack_os_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stack_os_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
