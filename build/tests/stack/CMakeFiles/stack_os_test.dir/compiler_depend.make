# Empty compiler generated dependencies file for stack_os_test.
# This may be replaced when dependencies are built.
