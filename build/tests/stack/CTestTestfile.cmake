# CMake generated Testfile for 
# Source directory: /root/repo/tests/stack
# Build directory: /root/repo/build/tests/stack
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/stack/stack_os_test[1]_include.cmake")
include("/root/repo/build/tests/stack/stack_layers_test[1]_include.cmake")
