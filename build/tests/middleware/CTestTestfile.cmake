# CMake generated Testfile for 
# Source directory: /root/repo/tests/middleware
# Build directory: /root/repo/build/tests/middleware
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/middleware/middleware_audit_test[1]_include.cmake")
include("/root/repo/build/tests/middleware/middleware_com_test[1]_include.cmake")
include("/root/repo/build/tests/middleware/middleware_ejb_test[1]_include.cmake")
include("/root/repo/build/tests/middleware/middleware_corba_test[1]_include.cmake")
