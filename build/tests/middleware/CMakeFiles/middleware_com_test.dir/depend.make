# Empty dependencies file for middleware_com_test.
# This may be replaced when dependencies are built.
