file(REMOVE_RECURSE
  "CMakeFiles/middleware_com_test.dir/com_test.cpp.o"
  "CMakeFiles/middleware_com_test.dir/com_test.cpp.o.d"
  "middleware_com_test"
  "middleware_com_test.pdb"
  "middleware_com_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_com_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
