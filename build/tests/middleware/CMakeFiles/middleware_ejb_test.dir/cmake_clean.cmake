file(REMOVE_RECURSE
  "CMakeFiles/middleware_ejb_test.dir/ejb_test.cpp.o"
  "CMakeFiles/middleware_ejb_test.dir/ejb_test.cpp.o.d"
  "middleware_ejb_test"
  "middleware_ejb_test.pdb"
  "middleware_ejb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_ejb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
