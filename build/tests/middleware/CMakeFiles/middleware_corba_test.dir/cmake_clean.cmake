file(REMOVE_RECURSE
  "CMakeFiles/middleware_corba_test.dir/corba_test.cpp.o"
  "CMakeFiles/middleware_corba_test.dir/corba_test.cpp.o.d"
  "middleware_corba_test"
  "middleware_corba_test.pdb"
  "middleware_corba_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_corba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
