file(REMOVE_RECURSE
  "CMakeFiles/middleware_audit_test.dir/audit_test.cpp.o"
  "CMakeFiles/middleware_audit_test.dir/audit_test.cpp.o.d"
  "middleware_audit_test"
  "middleware_audit_test.pdb"
  "middleware_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/middleware_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
