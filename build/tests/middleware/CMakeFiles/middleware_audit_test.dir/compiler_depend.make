# Empty compiler generated dependencies file for middleware_audit_test.
# This may be replaced when dependencies are built.
