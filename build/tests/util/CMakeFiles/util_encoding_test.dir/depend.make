# Empty dependencies file for util_encoding_test.
# This may be replaced when dependencies are built.
