file(REMOVE_RECURSE
  "CMakeFiles/util_encoding_test.dir/encoding_test.cpp.o"
  "CMakeFiles/util_encoding_test.dir/encoding_test.cpp.o.d"
  "util_encoding_test"
  "util_encoding_test.pdb"
  "util_encoding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
