file(REMOVE_RECURSE
  "CMakeFiles/ide_palette_test.dir/palette_test.cpp.o"
  "CMakeFiles/ide_palette_test.dir/palette_test.cpp.o.d"
  "ide_palette_test"
  "ide_palette_test.pdb"
  "ide_palette_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ide_palette_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
