# Empty compiler generated dependencies file for ide_palette_test.
# This may be replaced when dependencies are built.
