# CMake generated Testfile for 
# Source directory: /root/repo/tests/ide
# Build directory: /root/repo/build/tests/ide
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ide/ide_palette_test[1]_include.cmake")
