file(REMOVE_RECURSE
  "CMakeFiles/ide_palette.dir/ide_palette.cpp.o"
  "CMakeFiles/ide_palette.dir/ide_palette.cpp.o.d"
  "ide_palette"
  "ide_palette.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ide_palette.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
