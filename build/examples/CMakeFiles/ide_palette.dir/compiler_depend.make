# Empty compiler generated dependencies file for ide_palette.
# This may be replaced when dependencies are built.
