file(REMOVE_RECURSE
  "CMakeFiles/policy_migration.dir/policy_migration.cpp.o"
  "CMakeFiles/policy_migration.dir/policy_migration.cpp.o.d"
  "policy_migration"
  "policy_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
