# Empty compiler generated dependencies file for policy_migration.
# This may be replaced when dependencies are built.
