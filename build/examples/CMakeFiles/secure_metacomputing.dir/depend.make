# Empty dependencies file for secure_metacomputing.
# This may be replaced when dependencies are built.
