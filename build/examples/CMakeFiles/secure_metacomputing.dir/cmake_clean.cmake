file(REMOVE_RECURSE
  "CMakeFiles/secure_metacomputing.dir/secure_metacomputing.cpp.o"
  "CMakeFiles/secure_metacomputing.dir/secure_metacomputing.cpp.o.d"
  "secure_metacomputing"
  "secure_metacomputing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_metacomputing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
