file(REMOVE_RECURSE
  "CMakeFiles/delegation_lifecycle.dir/delegation_lifecycle.cpp.o"
  "CMakeFiles/delegation_lifecycle.dir/delegation_lifecycle.cpp.o.d"
  "delegation_lifecycle"
  "delegation_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/delegation_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
