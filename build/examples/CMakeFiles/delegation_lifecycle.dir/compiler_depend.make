# Empty compiler generated dependencies file for delegation_lifecycle.
# This may be replaced when dependencies are built.
