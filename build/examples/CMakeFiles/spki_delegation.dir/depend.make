# Empty dependencies file for spki_delegation.
# This may be replaced when dependencies are built.
