file(REMOVE_RECURSE
  "CMakeFiles/spki_delegation.dir/spki_delegation.cpp.o"
  "CMakeFiles/spki_delegation.dir/spki_delegation.cpp.o.d"
  "spki_delegation"
  "spki_delegation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spki_delegation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
