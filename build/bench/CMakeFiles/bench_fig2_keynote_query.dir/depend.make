# Empty dependencies file for bench_fig2_keynote_query.
# This may be replaced when dependencies are built.
