# Empty dependencies file for bench_fig3_secure_scheduling.
# This may be replaced when dependencies are built.
