
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_secure_scheduling.cpp" "bench/CMakeFiles/bench_fig3_secure_scheduling.dir/bench_fig3_secure_scheduling.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_secure_scheduling.dir/bench_fig3_secure_scheduling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/keycom/CMakeFiles/mwsec_keycom.dir/DependInfo.cmake"
  "/root/repo/build/src/ide/CMakeFiles/mwsec_ide.dir/DependInfo.cmake"
  "/root/repo/build/src/webcom/CMakeFiles/mwsec_webcom.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mwsec_net.dir/DependInfo.cmake"
  "/root/repo/build/src/spki/CMakeFiles/mwsec_spki.dir/DependInfo.cmake"
  "/root/repo/build/src/translate/CMakeFiles/mwsec_translate.dir/DependInfo.cmake"
  "/root/repo/build/src/stack/CMakeFiles/mwsec_stack.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/mwsec_keynote.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mwsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/mwsec_middleware.dir/DependInfo.cmake"
  "/root/repo/build/src/rbac/CMakeFiles/mwsec_rbac.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
