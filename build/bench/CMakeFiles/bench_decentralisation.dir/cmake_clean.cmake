file(REMOVE_RECURSE
  "CMakeFiles/bench_decentralisation.dir/bench_decentralisation.cpp.o"
  "CMakeFiles/bench_decentralisation.dir/bench_decentralisation.cpp.o.d"
  "bench_decentralisation"
  "bench_decentralisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decentralisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
