# Empty compiler generated dependencies file for bench_decentralisation.
# This may be replaced when dependencies are built.
