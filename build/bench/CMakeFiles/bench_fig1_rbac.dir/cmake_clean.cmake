file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_rbac.dir/bench_fig1_rbac.cpp.o"
  "CMakeFiles/bench_fig1_rbac.dir/bench_fig1_rbac.cpp.o.d"
  "bench_fig1_rbac"
  "bench_fig1_rbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_rbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
