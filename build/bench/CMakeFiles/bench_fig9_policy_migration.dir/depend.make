# Empty dependencies file for bench_fig9_policy_migration.
# This may be replaced when dependencies are built.
