file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_policy_migration.dir/bench_fig9_policy_migration.cpp.o"
  "CMakeFiles/bench_fig9_policy_migration.dir/bench_fig9_policy_migration.cpp.o.d"
  "bench_fig9_policy_migration"
  "bench_fig9_policy_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_policy_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
