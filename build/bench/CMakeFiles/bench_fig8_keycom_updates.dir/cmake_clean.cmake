file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_keycom_updates.dir/bench_fig8_keycom_updates.cpp.o"
  "CMakeFiles/bench_fig8_keycom_updates.dir/bench_fig8_keycom_updates.cpp.o.d"
  "bench_fig8_keycom_updates"
  "bench_fig8_keycom_updates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_keycom_updates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
