# Empty compiler generated dependencies file for bench_fig8_keycom_updates.
# This may be replaced when dependencies are built.
