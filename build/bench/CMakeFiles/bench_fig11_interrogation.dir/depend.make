# Empty dependencies file for bench_fig11_interrogation.
# This may be replaced when dependencies are built.
