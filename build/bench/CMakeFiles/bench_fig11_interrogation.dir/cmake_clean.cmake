file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_interrogation.dir/bench_fig11_interrogation.cpp.o"
  "CMakeFiles/bench_fig11_interrogation.dir/bench_fig11_interrogation.cpp.o.d"
  "bench_fig11_interrogation"
  "bench_fig11_interrogation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_interrogation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
