file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_delegation_chain.dir/bench_fig4_delegation_chain.cpp.o"
  "CMakeFiles/bench_fig4_delegation_chain.dir/bench_fig4_delegation_chain.cpp.o.d"
  "bench_fig4_delegation_chain"
  "bench_fig4_delegation_chain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_delegation_chain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
