# Empty compiler generated dependencies file for bench_fig5_rbac_to_keynote.
# This may be replaced when dependencies are built.
