file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_rbac_to_keynote.dir/bench_fig5_rbac_to_keynote.cpp.o"
  "CMakeFiles/bench_fig5_rbac_to_keynote.dir/bench_fig5_rbac_to_keynote.cpp.o.d"
  "bench_fig5_rbac_to_keynote"
  "bench_fig5_rbac_to_keynote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_rbac_to_keynote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
