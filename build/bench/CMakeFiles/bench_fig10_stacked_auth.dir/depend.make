# Empty dependencies file for bench_fig10_stacked_auth.
# This may be replaced when dependencies are built.
