file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_stacked_auth.dir/bench_fig10_stacked_auth.cpp.o"
  "CMakeFiles/bench_fig10_stacked_auth.dir/bench_fig10_stacked_auth.cpp.o.d"
  "bench_fig10_stacked_auth"
  "bench_fig10_stacked_auth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_stacked_auth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
