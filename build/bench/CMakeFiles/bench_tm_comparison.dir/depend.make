# Empty dependencies file for bench_tm_comparison.
# This may be replaced when dependencies are built.
