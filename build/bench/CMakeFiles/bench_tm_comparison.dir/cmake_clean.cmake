file(REMOVE_RECURSE
  "CMakeFiles/bench_tm_comparison.dir/bench_tm_comparison.cpp.o"
  "CMakeFiles/bench_tm_comparison.dir/bench_tm_comparison.cpp.o.d"
  "bench_tm_comparison"
  "bench_tm_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tm_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
