file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_delegation_roundtrip.dir/bench_fig7_delegation_roundtrip.cpp.o"
  "CMakeFiles/bench_fig7_delegation_roundtrip.dir/bench_fig7_delegation_roundtrip.cpp.o.d"
  "bench_fig7_delegation_roundtrip"
  "bench_fig7_delegation_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_delegation_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
