# Empty dependencies file for bench_fig7_delegation_roundtrip.
# This may be replaced when dependencies are built.
