file(REMOVE_RECURSE
  "libmwsec_ide.a"
)
