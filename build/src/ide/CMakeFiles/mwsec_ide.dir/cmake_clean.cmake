file(REMOVE_RECURSE
  "CMakeFiles/mwsec_ide.dir/palette.cpp.o"
  "CMakeFiles/mwsec_ide.dir/palette.cpp.o.d"
  "libmwsec_ide.a"
  "libmwsec_ide.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_ide.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
