# Empty compiler generated dependencies file for mwsec_ide.
# This may be replaced when dependencies are built.
