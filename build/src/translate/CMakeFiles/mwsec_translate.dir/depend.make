# Empty dependencies file for mwsec_translate.
# This may be replaced when dependencies are built.
