file(REMOVE_RECURSE
  "libmwsec_translate.a"
)
