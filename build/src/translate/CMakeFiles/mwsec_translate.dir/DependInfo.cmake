
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/translate/keynote_to_rbac.cpp" "src/translate/CMakeFiles/mwsec_translate.dir/keynote_to_rbac.cpp.o" "gcc" "src/translate/CMakeFiles/mwsec_translate.dir/keynote_to_rbac.cpp.o.d"
  "/root/repo/src/translate/migration.cpp" "src/translate/CMakeFiles/mwsec_translate.dir/migration.cpp.o" "gcc" "src/translate/CMakeFiles/mwsec_translate.dir/migration.cpp.o.d"
  "/root/repo/src/translate/rbac_to_keynote.cpp" "src/translate/CMakeFiles/mwsec_translate.dir/rbac_to_keynote.cpp.o" "gcc" "src/translate/CMakeFiles/mwsec_translate.dir/rbac_to_keynote.cpp.o.d"
  "/root/repo/src/translate/similarity.cpp" "src/translate/CMakeFiles/mwsec_translate.dir/similarity.cpp.o" "gcc" "src/translate/CMakeFiles/mwsec_translate.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mwsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/mwsec_keynote.dir/DependInfo.cmake"
  "/root/repo/build/src/rbac/CMakeFiles/mwsec_rbac.dir/DependInfo.cmake"
  "/root/repo/build/src/middleware/CMakeFiles/mwsec_middleware.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
