file(REMOVE_RECURSE
  "CMakeFiles/mwsec_translate.dir/keynote_to_rbac.cpp.o"
  "CMakeFiles/mwsec_translate.dir/keynote_to_rbac.cpp.o.d"
  "CMakeFiles/mwsec_translate.dir/migration.cpp.o"
  "CMakeFiles/mwsec_translate.dir/migration.cpp.o.d"
  "CMakeFiles/mwsec_translate.dir/rbac_to_keynote.cpp.o"
  "CMakeFiles/mwsec_translate.dir/rbac_to_keynote.cpp.o.d"
  "CMakeFiles/mwsec_translate.dir/similarity.cpp.o"
  "CMakeFiles/mwsec_translate.dir/similarity.cpp.o.d"
  "libmwsec_translate.a"
  "libmwsec_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
