# Empty dependencies file for mwsec_crypto.
# This may be replaced when dependencies are built.
