file(REMOVE_RECURSE
  "CMakeFiles/mwsec_crypto.dir/bigint.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/bigint.cpp.o.d"
  "CMakeFiles/mwsec_crypto.dir/hmac.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/mwsec_crypto.dir/keys.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/keys.cpp.o.d"
  "CMakeFiles/mwsec_crypto.dir/prime.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/prime.cpp.o.d"
  "CMakeFiles/mwsec_crypto.dir/rsa.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/rsa.cpp.o.d"
  "CMakeFiles/mwsec_crypto.dir/sha256.cpp.o"
  "CMakeFiles/mwsec_crypto.dir/sha256.cpp.o.d"
  "libmwsec_crypto.a"
  "libmwsec_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
