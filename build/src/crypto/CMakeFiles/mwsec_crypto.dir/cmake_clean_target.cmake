file(REMOVE_RECURSE
  "libmwsec_crypto.a"
)
