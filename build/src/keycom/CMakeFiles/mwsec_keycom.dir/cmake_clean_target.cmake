file(REMOVE_RECURSE
  "libmwsec_keycom.a"
)
