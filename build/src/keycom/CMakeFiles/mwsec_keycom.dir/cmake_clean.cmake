file(REMOVE_RECURSE
  "CMakeFiles/mwsec_keycom.dir/server.cpp.o"
  "CMakeFiles/mwsec_keycom.dir/server.cpp.o.d"
  "CMakeFiles/mwsec_keycom.dir/service.cpp.o"
  "CMakeFiles/mwsec_keycom.dir/service.cpp.o.d"
  "libmwsec_keycom.a"
  "libmwsec_keycom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_keycom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
