# Empty dependencies file for mwsec_keycom.
# This may be replaced when dependencies are built.
