
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keynote/assertion.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/assertion.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/assertion.cpp.o.d"
  "/root/repo/src/keynote/eval.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/eval.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/eval.cpp.o.d"
  "/root/repo/src/keynote/lexer.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/lexer.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/lexer.cpp.o.d"
  "/root/repo/src/keynote/parser.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/parser.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/parser.cpp.o.d"
  "/root/repo/src/keynote/query.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/query.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/query.cpp.o.d"
  "/root/repo/src/keynote/store.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/store.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/store.cpp.o.d"
  "/root/repo/src/keynote/values.cpp" "src/keynote/CMakeFiles/mwsec_keynote.dir/values.cpp.o" "gcc" "src/keynote/CMakeFiles/mwsec_keynote.dir/values.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mwsec_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
