file(REMOVE_RECURSE
  "CMakeFiles/mwsec_keynote.dir/assertion.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/assertion.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/eval.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/eval.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/lexer.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/lexer.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/parser.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/parser.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/query.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/query.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/store.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/store.cpp.o.d"
  "CMakeFiles/mwsec_keynote.dir/values.cpp.o"
  "CMakeFiles/mwsec_keynote.dir/values.cpp.o.d"
  "libmwsec_keynote.a"
  "libmwsec_keynote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_keynote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
