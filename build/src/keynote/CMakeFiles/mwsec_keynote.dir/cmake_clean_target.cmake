file(REMOVE_RECURSE
  "libmwsec_keynote.a"
)
