# Empty compiler generated dependencies file for mwsec_keynote.
# This may be replaced when dependencies are built.
