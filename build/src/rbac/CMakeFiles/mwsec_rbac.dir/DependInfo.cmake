
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rbac/constraints.cpp" "src/rbac/CMakeFiles/mwsec_rbac.dir/constraints.cpp.o" "gcc" "src/rbac/CMakeFiles/mwsec_rbac.dir/constraints.cpp.o.d"
  "/root/repo/src/rbac/fixtures.cpp" "src/rbac/CMakeFiles/mwsec_rbac.dir/fixtures.cpp.o" "gcc" "src/rbac/CMakeFiles/mwsec_rbac.dir/fixtures.cpp.o.d"
  "/root/repo/src/rbac/hierarchy.cpp" "src/rbac/CMakeFiles/mwsec_rbac.dir/hierarchy.cpp.o" "gcc" "src/rbac/CMakeFiles/mwsec_rbac.dir/hierarchy.cpp.o.d"
  "/root/repo/src/rbac/model.cpp" "src/rbac/CMakeFiles/mwsec_rbac.dir/model.cpp.o" "gcc" "src/rbac/CMakeFiles/mwsec_rbac.dir/model.cpp.o.d"
  "/root/repo/src/rbac/sessions.cpp" "src/rbac/CMakeFiles/mwsec_rbac.dir/sessions.cpp.o" "gcc" "src/rbac/CMakeFiles/mwsec_rbac.dir/sessions.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
