file(REMOVE_RECURSE
  "CMakeFiles/mwsec_rbac.dir/constraints.cpp.o"
  "CMakeFiles/mwsec_rbac.dir/constraints.cpp.o.d"
  "CMakeFiles/mwsec_rbac.dir/fixtures.cpp.o"
  "CMakeFiles/mwsec_rbac.dir/fixtures.cpp.o.d"
  "CMakeFiles/mwsec_rbac.dir/hierarchy.cpp.o"
  "CMakeFiles/mwsec_rbac.dir/hierarchy.cpp.o.d"
  "CMakeFiles/mwsec_rbac.dir/model.cpp.o"
  "CMakeFiles/mwsec_rbac.dir/model.cpp.o.d"
  "CMakeFiles/mwsec_rbac.dir/sessions.cpp.o"
  "CMakeFiles/mwsec_rbac.dir/sessions.cpp.o.d"
  "libmwsec_rbac.a"
  "libmwsec_rbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_rbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
