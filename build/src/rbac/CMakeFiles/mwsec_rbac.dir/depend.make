# Empty dependencies file for mwsec_rbac.
# This may be replaced when dependencies are built.
