file(REMOVE_RECURSE
  "libmwsec_rbac.a"
)
