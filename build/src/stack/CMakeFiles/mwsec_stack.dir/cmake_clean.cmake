file(REMOVE_RECURSE
  "CMakeFiles/mwsec_stack.dir/layers.cpp.o"
  "CMakeFiles/mwsec_stack.dir/layers.cpp.o.d"
  "CMakeFiles/mwsec_stack.dir/os.cpp.o"
  "CMakeFiles/mwsec_stack.dir/os.cpp.o.d"
  "libmwsec_stack.a"
  "libmwsec_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
