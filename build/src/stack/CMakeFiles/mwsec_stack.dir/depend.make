# Empty dependencies file for mwsec_stack.
# This may be replaced when dependencies are built.
