file(REMOVE_RECURSE
  "libmwsec_stack.a"
)
