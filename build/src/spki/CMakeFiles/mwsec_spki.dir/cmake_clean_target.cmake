file(REMOVE_RECURSE
  "libmwsec_spki.a"
)
