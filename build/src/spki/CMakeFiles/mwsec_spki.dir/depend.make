# Empty dependencies file for mwsec_spki.
# This may be replaced when dependencies are built.
