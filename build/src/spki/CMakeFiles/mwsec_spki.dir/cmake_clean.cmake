file(REMOVE_RECURSE
  "CMakeFiles/mwsec_spki.dir/certs.cpp.o"
  "CMakeFiles/mwsec_spki.dir/certs.cpp.o.d"
  "CMakeFiles/mwsec_spki.dir/rbac_to_spki.cpp.o"
  "CMakeFiles/mwsec_spki.dir/rbac_to_spki.cpp.o.d"
  "CMakeFiles/mwsec_spki.dir/tag.cpp.o"
  "CMakeFiles/mwsec_spki.dir/tag.cpp.o.d"
  "libmwsec_spki.a"
  "libmwsec_spki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_spki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
