# Empty dependencies file for mwsec_util.
# This may be replaced when dependencies are built.
