file(REMOVE_RECURSE
  "libmwsec_util.a"
)
