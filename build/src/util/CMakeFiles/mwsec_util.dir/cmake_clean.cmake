file(REMOVE_RECURSE
  "CMakeFiles/mwsec_util.dir/byte_buffer.cpp.o"
  "CMakeFiles/mwsec_util.dir/byte_buffer.cpp.o.d"
  "CMakeFiles/mwsec_util.dir/encoding.cpp.o"
  "CMakeFiles/mwsec_util.dir/encoding.cpp.o.d"
  "CMakeFiles/mwsec_util.dir/logging.cpp.o"
  "CMakeFiles/mwsec_util.dir/logging.cpp.o.d"
  "CMakeFiles/mwsec_util.dir/rng.cpp.o"
  "CMakeFiles/mwsec_util.dir/rng.cpp.o.d"
  "CMakeFiles/mwsec_util.dir/strings.cpp.o"
  "CMakeFiles/mwsec_util.dir/strings.cpp.o.d"
  "libmwsec_util.a"
  "libmwsec_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
