file(REMOVE_RECURSE
  "CMakeFiles/mwsec_net.dir/network.cpp.o"
  "CMakeFiles/mwsec_net.dir/network.cpp.o.d"
  "libmwsec_net.a"
  "libmwsec_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
