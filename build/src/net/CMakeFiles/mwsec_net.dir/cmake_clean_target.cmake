file(REMOVE_RECURSE
  "libmwsec_net.a"
)
