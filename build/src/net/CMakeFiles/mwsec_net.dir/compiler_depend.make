# Empty compiler generated dependencies file for mwsec_net.
# This may be replaced when dependencies are built.
