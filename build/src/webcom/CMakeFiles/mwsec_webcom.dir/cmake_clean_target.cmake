file(REMOVE_RECURSE
  "libmwsec_webcom.a"
)
