
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/webcom/engine.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/engine.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/engine.cpp.o.d"
  "/root/repo/src/webcom/flatten.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/flatten.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/flatten.cpp.o.d"
  "/root/repo/src/webcom/gateway.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/gateway.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/gateway.cpp.o.d"
  "/root/repo/src/webcom/graph.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/graph.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/graph.cpp.o.d"
  "/root/repo/src/webcom/graph_io.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/graph_io.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/graph_io.cpp.o.d"
  "/root/repo/src/webcom/messages.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/messages.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/messages.cpp.o.d"
  "/root/repo/src/webcom/ops.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/ops.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/ops.cpp.o.d"
  "/root/repo/src/webcom/scheduler.cpp" "src/webcom/CMakeFiles/mwsec_webcom.dir/scheduler.cpp.o" "gcc" "src/webcom/CMakeFiles/mwsec_webcom.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/mwsec_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/keynote/CMakeFiles/mwsec_keynote.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mwsec_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
