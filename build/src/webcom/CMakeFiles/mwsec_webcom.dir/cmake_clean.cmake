file(REMOVE_RECURSE
  "CMakeFiles/mwsec_webcom.dir/engine.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/engine.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/flatten.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/flatten.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/gateway.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/gateway.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/graph.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/graph.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/graph_io.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/graph_io.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/messages.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/messages.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/ops.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/ops.cpp.o.d"
  "CMakeFiles/mwsec_webcom.dir/scheduler.cpp.o"
  "CMakeFiles/mwsec_webcom.dir/scheduler.cpp.o.d"
  "libmwsec_webcom.a"
  "libmwsec_webcom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_webcom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
