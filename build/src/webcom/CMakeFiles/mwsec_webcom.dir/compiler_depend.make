# Empty compiler generated dependencies file for mwsec_webcom.
# This may be replaced when dependencies are built.
