file(REMOVE_RECURSE
  "libmwsec_middleware.a"
)
