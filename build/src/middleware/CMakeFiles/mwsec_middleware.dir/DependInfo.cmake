
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/middleware/com/catalogue.cpp" "src/middleware/CMakeFiles/mwsec_middleware.dir/com/catalogue.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsec_middleware.dir/com/catalogue.cpp.o.d"
  "/root/repo/src/middleware/common/audit.cpp" "src/middleware/CMakeFiles/mwsec_middleware.dir/common/audit.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsec_middleware.dir/common/audit.cpp.o.d"
  "/root/repo/src/middleware/corba/orb.cpp" "src/middleware/CMakeFiles/mwsec_middleware.dir/corba/orb.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsec_middleware.dir/corba/orb.cpp.o.d"
  "/root/repo/src/middleware/ejb/container.cpp" "src/middleware/CMakeFiles/mwsec_middleware.dir/ejb/container.cpp.o" "gcc" "src/middleware/CMakeFiles/mwsec_middleware.dir/ejb/container.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/mwsec_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rbac/CMakeFiles/mwsec_rbac.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
