# Empty dependencies file for mwsec_middleware.
# This may be replaced when dependencies are built.
