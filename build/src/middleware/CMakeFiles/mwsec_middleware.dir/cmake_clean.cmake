file(REMOVE_RECURSE
  "CMakeFiles/mwsec_middleware.dir/com/catalogue.cpp.o"
  "CMakeFiles/mwsec_middleware.dir/com/catalogue.cpp.o.d"
  "CMakeFiles/mwsec_middleware.dir/common/audit.cpp.o"
  "CMakeFiles/mwsec_middleware.dir/common/audit.cpp.o.d"
  "CMakeFiles/mwsec_middleware.dir/corba/orb.cpp.o"
  "CMakeFiles/mwsec_middleware.dir/corba/orb.cpp.o.d"
  "CMakeFiles/mwsec_middleware.dir/ejb/container.cpp.o"
  "CMakeFiles/mwsec_middleware.dir/ejb/container.cpp.o.d"
  "libmwsec_middleware.a"
  "libmwsec_middleware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec_middleware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
