# Empty dependencies file for mwsec-translate.
# This may be replaced when dependencies are built.
