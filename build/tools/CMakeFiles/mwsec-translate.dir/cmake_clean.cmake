file(REMOVE_RECURSE
  "CMakeFiles/mwsec-translate.dir/mwsec_translate.cpp.o"
  "CMakeFiles/mwsec-translate.dir/mwsec_translate.cpp.o.d"
  "mwsec-translate"
  "mwsec-translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec-translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
