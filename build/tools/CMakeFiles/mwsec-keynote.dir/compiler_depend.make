# Empty compiler generated dependencies file for mwsec-keynote.
# This may be replaced when dependencies are built.
