file(REMOVE_RECURSE
  "CMakeFiles/mwsec-keynote.dir/mwsec_keynote.cpp.o"
  "CMakeFiles/mwsec-keynote.dir/mwsec_keynote.cpp.o.d"
  "mwsec-keynote"
  "mwsec-keynote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mwsec-keynote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
