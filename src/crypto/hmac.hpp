// HMAC-SHA256 (RFC 2104). Used for keyed integrity on the simulated
// network transport and as a fast symmetric alternative in benches that
// compare signature schemes.
#pragma once

#include <string_view>

#include "crypto/sha256.hpp"
#include "util/encoding.hpp"

namespace mwsec::crypto {

Sha256::Digest hmac_sha256(const util::Bytes& key, const util::Bytes& message);
Sha256::Digest hmac_sha256(std::string_view key, std::string_view message);

}  // namespace mwsec::crypto
