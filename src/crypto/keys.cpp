#include "crypto/keys.hpp"

#include "util/byte_buffer.hpp"
#include "util/encoding.hpp"
#include "util/strings.hpp"

namespace mwsec::crypto {

bool is_key_principal(std::string_view principal) {
  return util::starts_with(principal, kRsaKeyPrefix);
}

std::string encode_public_key(const RsaPublicKey& key) {
  util::ByteWriter w;
  w.blob(key.n.to_bytes_be());
  w.blob(key.e.to_bytes_be());
  return std::string(kRsaKeyPrefix) + util::hex_encode(w.bytes());
}

mwsec::Result<RsaPublicKey> decode_public_key(std::string_view principal) {
  if (!is_key_principal(principal)) {
    return Error::make("not a key principal", "keys");
  }
  auto raw = util::hex_decode(principal.substr(kRsaKeyPrefix.size()));
  if (!raw.ok()) return raw.error();
  util::ByteReader r(*raw);
  auto n = r.blob();
  if (!n.ok()) return n.error();
  auto e = r.blob();
  if (!e.ok()) return e.error();
  if (!r.exhausted()) return Error::make("trailing bytes in key", "keys");
  return RsaPublicKey{BigInt::from_bytes_be(*n), BigInt::from_bytes_be(*e)};
}

inline constexpr std::string_view kRsaPrivPrefix = "rsa-priv-hex:";

std::string encode_private_key(const RsaPrivateKey& key) {
  util::ByteWriter w;
  w.blob(key.n.to_bytes_be());
  w.blob(key.d.to_bytes_be());
  return std::string(kRsaPrivPrefix) + util::hex_encode(w.bytes());
}

mwsec::Result<RsaPrivateKey> decode_private_key(std::string_view text) {
  text = util::trim(text);
  if (!util::starts_with(text, kRsaPrivPrefix)) {
    return Error::make("not a private key string", "keys");
  }
  auto raw = util::hex_decode(text.substr(kRsaPrivPrefix.size()));
  if (!raw.ok()) return raw.error();
  util::ByteReader r(*raw);
  auto n = r.blob();
  if (!n.ok()) return n.error();
  auto d = r.blob();
  if (!d.ok()) return d.error();
  if (!r.exhausted()) return Error::make("trailing bytes in key", "keys");
  return RsaPrivateKey{BigInt::from_bytes_be(*n), BigInt::from_bytes_be(*d)};
}

std::string sign_message(const RsaPrivateKey& key, std::string_view message) {
  auto sig = rsa_sign(key, util::to_bytes(message));
  return std::string(kRsaSigPrefix) + util::hex_encode(sig);
}

bool verify_message(std::string_view principal, std::string_view message,
                    std::string_view signature) {
  auto key = decode_public_key(principal);
  if (!key.ok()) return false;
  if (!util::starts_with(signature, kRsaSigPrefix)) return false;
  auto sig = util::hex_decode(signature.substr(kRsaSigPrefix.size()));
  if (!sig.ok()) return false;
  return rsa_verify(*key, util::to_bytes(message), *sig);
}

const Identity& KeyRing::identity(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = identities_.find(name);
  if (it == identities_.end()) {
    auto keys = rsa_generate(rng_, modulus_bits_);
    it = identities_.emplace(name, Identity(name, std::move(keys))).first;
    principal_to_name_.emplace(it->second.principal(), name);
  }
  return it->second;
}

std::string KeyRing::principal(const std::string& name) {
  return identity(name).principal();
}

const Identity* KeyRing::find(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = identities_.find(name);
  return it == identities_.end() ? nullptr : &it->second;
}

mwsec::Result<std::string> KeyRing::name_of(std::string_view principal) const {
  std::scoped_lock lock(mu_);
  auto it = principal_to_name_.find(principal);
  if (it == principal_to_name_.end()) {
    return Error::make("unknown principal", "keys");
  }
  return it->second;
}

}  // namespace mwsec::crypto
