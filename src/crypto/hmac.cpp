#include "crypto/hmac.hpp"

namespace mwsec::crypto {

Sha256::Digest hmac_sha256(const util::Bytes& key, const util::Bytes& message) {
  constexpr std::size_t kBlock = 64;
  util::Bytes k = key;
  if (k.size() > kBlock) {
    auto d = Sha256::hash(k);
    k.assign(d.begin(), d.end());
  }
  k.resize(kBlock, 0);

  util::Bytes ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  auto inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finish();
}

Sha256::Digest hmac_sha256(std::string_view key, std::string_view message) {
  return hmac_sha256(util::to_bytes(key), util::to_bytes(message));
}

}  // namespace mwsec::crypto
