// Principal keys in KeyNote's textual conventions (RFC 2704 §6).
//
// A principal is identified by an ASCII string. Two forms are supported,
// exactly as in KeyNote:
//   * key principals:    "rsa-hex:<hex blob>" — can sign assertions;
//   * opaque principals: any other string (e.g. "Kbob") — cannot sign, but
//     can appear in unsigned POLICY assertions and action-authoriser sets.
// The paper's worked examples use opaque tags like "Kbob"; the library and
// the tests exercise both opaque and real-keyed flows.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>

#include "crypto/rsa.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace mwsec::crypto {

inline constexpr std::string_view kRsaKeyPrefix = "rsa-hex:";
inline constexpr std::string_view kRsaSigPrefix = "sig-rsa-sha256-hex:";

/// True if the principal string denotes a cryptographic key (as opposed to
/// an opaque tag).
bool is_key_principal(std::string_view principal);

/// Encode/decode a public key to/from its principal string.
std::string encode_public_key(const RsaPublicKey& key);
mwsec::Result<RsaPublicKey> decode_public_key(std::string_view principal);

/// Encode/decode a private key (for the CLI tools' key files). The string
/// form is "rsa-priv-hex:<hex blob>"; treat it like any secret.
std::string encode_private_key(const RsaPrivateKey& key);
mwsec::Result<RsaPrivateKey> decode_private_key(std::string_view text);

/// Sign `message` with `key`; returns a "sig-rsa-sha256-hex:..." string.
std::string sign_message(const RsaPrivateKey& key, std::string_view message);

/// Verify a signature string against a key principal string.
/// Fails (returns false) for opaque principals or malformed inputs.
bool verify_message(std::string_view principal, std::string_view message,
                    std::string_view signature);

/// A named identity: friendly name + keypair. The friendly name is how the
/// paper refers to actors ("Kbob", "KWebCom"); the principal string is what
/// appears in credentials.
class Identity {
 public:
  Identity(std::string name, RsaKeyPair keys)
      : name_(std::move(name)), keys_(std::move(keys)),
        principal_(encode_public_key(keys_.pub)) {}

  const std::string& name() const { return name_; }
  const std::string& principal() const { return principal_; }
  const RsaPublicKey& public_key() const { return keys_.pub; }

  std::string sign(std::string_view message) const {
    return sign_message(keys_.priv, message);
  }

 private:
  std::string name_;
  RsaKeyPair keys_;
  std::string principal_;
};

/// A small in-memory PKI: mints identities on demand and resolves friendly
/// names to principal strings. Thread-safe (the WebCom scheduler mints
/// client identities from worker threads).
class KeyRing {
 public:
  explicit KeyRing(std::uint64_t seed = 42, std::size_t modulus_bits = 512)
      : rng_(seed), modulus_bits_(modulus_bits) {}

  /// Create (or return the existing) identity for `name`.
  const Identity& identity(const std::string& name);

  /// Principal string for `name`, minting the identity if needed.
  std::string principal(const std::string& name);

  /// Look up an existing identity; nullptr if never minted.
  const Identity* find(const std::string& name) const;

  /// Reverse lookup: friendly name for a principal string, if known.
  mwsec::Result<std::string> name_of(std::string_view principal) const;

 private:
  mutable std::mutex mu_;
  util::Rng rng_;
  std::size_t modulus_bits_;
  std::map<std::string, Identity> identities_;
  std::map<std::string, std::string, std::less<>> principal_to_name_;
};

}  // namespace mwsec::crypto
