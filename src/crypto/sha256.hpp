// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used to hash KeyNote assertion bodies before RSA signing and to derive
// stable key fingerprints. Verified against the NIST test vectors in
// tests/crypto/sha256_test.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string_view>

#include "util/encoding.hpp"

namespace mwsec::crypto {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256();

  void update(const std::uint8_t* data, std::size_t len);
  void update(const util::Bytes& data) { update(data.data(), data.size()); }
  void update(std::string_view s) {
    update(reinterpret_cast<const std::uint8_t*>(s.data()), s.size());
  }

  /// Finalise and return the digest; the object must not be reused after.
  Digest finish();

  /// One-shot helpers.
  static Digest hash(std::string_view s);
  static Digest hash(const util::Bytes& data);
  static std::string hex(std::string_view s);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffered_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Digest as a byte vector (for interop with the encoding helpers).
util::Bytes digest_bytes(const Sha256::Digest& d);

}  // namespace mwsec::crypto
