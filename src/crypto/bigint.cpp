#include "crypto/bigint.hpp"

#include <algorithm>
#include <cassert>

namespace mwsec::crypto {

namespace {
constexpr std::uint64_t kBase = 1ULL << 32;
}

BigInt::BigInt(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

mwsec::Result<BigInt> BigInt::from_hex(std::string_view hex) {
  if (hex.empty()) return Error::make("empty hex bigint", "bigint");
  BigInt out;
  // Pad to a multiple of 8 hex digits and parse 32 bits at a time from the
  // least significant end.
  std::string padded(hex);
  while (padded.size() % 8 != 0) padded.insert(padded.begin(), '0');
  for (std::size_t i = 0; i < padded.size(); i += 8) {
    std::uint32_t limb = 0;
    for (std::size_t j = 0; j < 8; ++j) {
      char c = padded[i + j];
      int nibble;
      if (c >= '0' && c <= '9') nibble = c - '0';
      else if (c >= 'a' && c <= 'f') nibble = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nibble = c - 'A' + 10;
      else return Error::make("invalid hex digit in bigint", "bigint");
      limb = (limb << 4) | static_cast<std::uint32_t>(nibble);
    }
    out.limbs_.insert(out.limbs_.begin(), limb);
  }
  out.trim();
  return out;
}

BigInt BigInt::from_bytes_be(const util::Bytes& bytes) {
  BigInt out;
  for (std::uint8_t b : bytes) {
    out = (out << 8) + BigInt(b);
  }
  return out;
}

BigInt BigInt::random_bits(util::Rng& rng, std::size_t bits) {
  assert(bits > 0);
  BigInt out;
  std::size_t limbs = (bits + 31) / 32;
  out.limbs_.resize(limbs);
  for (auto& l : out.limbs_) l = static_cast<std::uint32_t>(rng.next());
  // Mask the top limb and force the top bit so the result has exactly
  // `bits` bits (needed for fixed-size prime generation).
  std::size_t top_bits = bits - (limbs - 1) * 32;
  if (top_bits < 32) out.limbs_.back() &= (1u << top_bits) - 1;
  out.limbs_.back() |= 1u << (top_bits - 1);
  out.trim();
  return out;
}

BigInt BigInt::random_below(util::Rng& rng, const BigInt& bound) {
  assert(!bound.is_zero());
  std::size_t bits = bound.bit_length();
  while (true) {
    BigInt candidate;
    std::size_t limbs = (bits + 31) / 32;
    candidate.limbs_.resize(limbs);
    for (auto& l : candidate.limbs_) l = static_cast<std::uint32_t>(rng.next());
    std::size_t top_bits = bits - (limbs - 1) * 32;
    if (top_bits < 32) candidate.limbs_.back() &= (1u << top_bits) - 1;
    candidate.trim();
    if (candidate < bound) return candidate;
  }
}

std::string BigInt::to_hex() const {
  if (limbs_.empty()) return "0";
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(*it >> shift) & 0xf]);
    }
  }
  std::size_t first = out.find_first_not_of('0');
  return out.substr(first);
}

util::Bytes BigInt::to_bytes_be() const {
  util::Bytes out;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      out.push_back(static_cast<std::uint8_t>(*it >> shift));
    }
  }
  std::size_t first = 0;
  while (first + 1 < out.size() && out[first] == 0) ++first;
  return util::Bytes(out.begin() + static_cast<std::ptrdiff_t>(first), out.end());
}

std::uint64_t BigInt::to_u64() const {
  assert(limbs_.size() <= 2);
  std::uint64_t v = 0;
  if (limbs_.size() >= 1) v |= limbs_[0];
  if (limbs_.size() >= 2) v |= static_cast<std::uint64_t>(limbs_[1]) << 32;
  return v;
}

std::size_t BigInt::bit_length() const {
  if (limbs_.empty()) return 0;
  std::uint32_t top = limbs_.back();
  std::size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::bit(std::size_t i) const {
  std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigInt::compare(const BigInt& a, const BigInt& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigInt BigInt::operator+(const BigInt& o) const {
  BigInt out;
  const std::size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.resize(n);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(sum);
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<std::uint32_t>(carry));
  return out;
}

BigInt BigInt::operator-(const BigInt& o) const {
  assert(*this >= o);
  BigInt out;
  out.limbs_.resize(limbs_.size());
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::int64_t diff = static_cast<std::int64_t>(limbs_[i]) - borrow;
    if (i < o.limbs_.size()) diff -= o.limbs_[i];
    if (diff < 0) {
      diff += static_cast<std::int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(diff);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator*(const BigInt& o) const {
  if (is_zero() || o.is_zero()) return BigInt();
  BigInt out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < o.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(limbs_[i]) * o.limbs_[j];
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + o.limbs_.size();
    while (carry) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigInt BigInt::operator<<(std::size_t bits) const {
  if (is_zero() || bits == 0) {
    BigInt out = *this;
    return out;
  }
  const std::size_t limb_shift = bits / 32;
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    std::uint64_t v = static_cast<std::uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<std::uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<std::uint32_t>(v >> 32);
  }
  out.trim();
  return out;
}

BigInt BigInt::operator>>(std::size_t bits) const {
  const std::size_t limb_shift = bits / 32;
  if (limb_shift >= limbs_.size()) return BigInt();
  const std::size_t bit_shift = bits % 32;
  BigInt out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (std::size_t i = 0; i < out.limbs_.size(); ++i) {
    std::uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<std::uint64_t>(limbs_[i + limb_shift + 1])
           << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<std::uint32_t>(v);
  }
  out.trim();
  return out;
}

std::pair<BigInt, BigInt> BigInt::divmod(const BigInt& dividend,
                                         const BigInt& divisor) {
  assert(!divisor.is_zero());
  if (dividend < divisor) return {BigInt(), dividend};

  // Single-limb divisor fast path.
  if (divisor.limbs_.size() == 1) {
    const std::uint64_t d = divisor.limbs_[0];
    BigInt quotient;
    quotient.limbs_.assign(dividend.limbs_.size(), 0);
    std::uint64_t rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      std::uint64_t cur = (rem << 32) | dividend.limbs_[i];
      quotient.limbs_[i] = static_cast<std::uint32_t>(cur / d);
      rem = cur % d;
    }
    quotient.trim();
    return {quotient, BigInt(rem)};
  }

  // Knuth TAOCP vol. 2 Algorithm D with 32-bit limbs.
  const std::size_t n = divisor.limbs_.size();
  const std::size_t m = dividend.limbs_.size() - n;

  // D1: normalise so the divisor's top limb has its high bit set.
  int shift = 0;
  {
    std::uint32_t top = divisor.limbs_.back();
    while ((top & 0x80000000u) == 0) {
      top <<= 1;
      ++shift;
    }
  }
  BigInt un = dividend << static_cast<std::size_t>(shift);
  BigInt vn = divisor << static_cast<std::size_t>(shift);
  un.limbs_.resize(m + n + 1, 0);  // extra high limb for the algorithm

  BigInt quotient;
  quotient.limbs_.assign(m + 1, 0);

  const std::uint64_t v_hi = vn.limbs_[n - 1];
  const std::uint64_t v_lo = vn.limbs_[n - 2];

  for (std::size_t j = m + 1; j-- > 0;) {
    // D3: estimate the quotient limb.
    std::uint64_t numer =
        (static_cast<std::uint64_t>(un.limbs_[j + n]) << 32) | un.limbs_[j + n - 1];
    std::uint64_t qhat = numer / v_hi;
    std::uint64_t rhat = numer % v_hi;
    while (qhat >= kBase ||
           qhat * v_lo > ((rhat << 32) | un.limbs_[j + n - 2])) {
      --qhat;
      rhat += v_hi;
      if (rhat >= kBase) break;
    }

    // D4: multiply and subtract qhat * vn from un[j .. j+n].
    std::int64_t borrow = 0;
    std::uint64_t carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t product = qhat * vn.limbs_[i] + carry;
      carry = product >> 32;
      std::int64_t diff = static_cast<std::int64_t>(un.limbs_[i + j]) -
                          static_cast<std::int64_t>(product & 0xffffffffULL) -
                          borrow;
      if (diff < 0) {
        diff += static_cast<std::int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      un.limbs_[i + j] = static_cast<std::uint32_t>(diff);
    }
    std::int64_t top_diff = static_cast<std::int64_t>(un.limbs_[j + n]) -
                            static_cast<std::int64_t>(carry) - borrow;
    if (top_diff < 0) {
      // D6: estimate was one too large — add the divisor back.
      top_diff += static_cast<std::int64_t>(kBase);
      --qhat;
      std::uint64_t add_carry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t sum = static_cast<std::uint64_t>(un.limbs_[i + j]) +
                            vn.limbs_[i] + add_carry;
        un.limbs_[i + j] = static_cast<std::uint32_t>(sum);
        add_carry = sum >> 32;
      }
      top_diff += static_cast<std::int64_t>(add_carry);
      top_diff &= 0xffffffffLL;
    }
    un.limbs_[j + n] = static_cast<std::uint32_t>(top_diff);
    quotient.limbs_[j] = static_cast<std::uint32_t>(qhat);
  }

  BigInt remainder;
  remainder.limbs_.assign(un.limbs_.begin(),
                          un.limbs_.begin() + static_cast<std::ptrdiff_t>(n));
  remainder.trim();
  remainder = remainder >> static_cast<std::size_t>(shift);
  quotient.trim();
  return {quotient, remainder};
}

BigInt BigInt::mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m) {
  assert(!m.is_zero());
  BigInt result(1);
  BigInt b = base % m;
  const std::size_t bits = exp.bit_length();
  for (std::size_t i = 0; i < bits; ++i) {
    if (exp.bit(i)) result = (result * b) % m;
    b = (b * b) % m;
  }
  return result % m;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = b;
    b = r;
  }
  return a;
}

mwsec::Result<BigInt> BigInt::mod_inverse(const BigInt& a, const BigInt& m) {
  // Extended Euclid over non-negative values: track coefficients of `a`
  // as (sign, magnitude) pairs to stay in unsigned arithmetic.
  BigInt old_r = a % m, r = m;
  BigInt old_s(1), s(0);
  bool old_s_neg = false, s_neg = false;
  while (!r.is_zero()) {
    auto [q, rem] = divmod(old_r, r);
    old_r = r;
    r = rem;
    // new_s = old_s - q * s  (signed)
    BigInt qs = q * s;
    BigInt new_s;
    bool new_s_neg;
    if (old_s_neg == s_neg) {
      if (old_s >= qs) {
        new_s = old_s - qs;
        new_s_neg = old_s_neg;
      } else {
        new_s = qs - old_s;
        new_s_neg = !old_s_neg;
      }
    } else {
      new_s = old_s + qs;
      new_s_neg = old_s_neg;
    }
    old_s = s;
    old_s_neg = s_neg;
    s = new_s;
    s_neg = new_s_neg;
  }
  if (old_r != BigInt(1)) {
    return Error::make("values are not coprime; inverse does not exist",
                       "bigint");
  }
  if (old_s_neg) {
    return m - (old_s % m);
  }
  return old_s % m;
}

}  // namespace mwsec::crypto
