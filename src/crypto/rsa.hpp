// RSA signatures over the from-scratch BigInt substrate.
//
// Key generation follows the textbook recipe (two random primes, e = 65537,
// d = e^-1 mod lcm(p-1, q-1)); signing is deterministic
// "hash-then-pad-then-modexp" with a PKCS#1-v1.5-style padding of the
// SHA-256 digest. Default modulus size is 512 bits: large enough that the
// arithmetic exercises every multi-limb code path, small enough that the
// test suite's hundreds of keypairs generate quickly. This is the
// documented substitution for the paper's production PKI (DESIGN.md §2) —
// within the simulation, signatures are unforgeable without the private key.
#pragma once

#include "crypto/bigint.hpp"
#include "crypto/sha256.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace mwsec::crypto {

struct RsaPublicKey {
  BigInt n;  ///< modulus
  BigInt e;  ///< public exponent

  bool operator==(const RsaPublicKey& o) const { return n == o.n && e == o.e; }
};

struct RsaPrivateKey {
  BigInt n;
  BigInt d;  ///< private exponent
};

struct RsaKeyPair {
  RsaPublicKey pub;
  RsaPrivateKey priv;
};

/// Generate a keypair with a modulus of `modulus_bits` bits.
RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits = 512);

/// Sign the SHA-256 digest of `message`.
util::Bytes rsa_sign(const RsaPrivateKey& key, const util::Bytes& message);

/// Verify a signature produced by rsa_sign.
bool rsa_verify(const RsaPublicKey& key, const util::Bytes& message,
                const util::Bytes& signature);

}  // namespace mwsec::crypto
