// Probabilistic primality testing and random prime generation for the
// simulated PKI's RSA key generation.
#pragma once

#include "crypto/bigint.hpp"
#include "util/rng.hpp"

namespace mwsec::crypto {

/// Miller–Rabin with `rounds` random witnesses (plus trial division by
/// small primes first). Deterministic given the rng state.
bool is_probable_prime(const BigInt& n, util::Rng& rng, int rounds = 20);

/// Random prime with exactly `bits` bits.
BigInt random_prime(util::Rng& rng, std::size_t bits, int rounds = 20);

}  // namespace mwsec::crypto
