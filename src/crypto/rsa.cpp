#include "crypto/rsa.hpp"

#include <cassert>

#include "crypto/prime.hpp"

namespace mwsec::crypto {

namespace {

/// EMSA-PKCS1-v1.5 style encoding of a SHA-256 digest into `em_len` bytes:
/// 0x00 0x01 0xff..0xff 0x00 || digest. When the modulus is too small to
/// hold the full 32-byte digest (the simulation allows small keys for test
/// speed), the digest is truncated to fit — the code path is identical,
/// only the collision margin shrinks.
util::Bytes encode_digest(const Sha256::Digest& digest, std::size_t em_len) {
  assert(em_len >= 12);
  const std::size_t dlen = std::min(digest.size(), em_len - 4);
  util::Bytes em(em_len, 0xff);
  em[0] = 0x00;
  em[1] = 0x01;
  em[em_len - dlen - 1] = 0x00;
  for (std::size_t i = 0; i < dlen; ++i) {
    em[em_len - dlen + i] = digest[i];
  }
  return em;
}

}  // namespace

RsaKeyPair rsa_generate(util::Rng& rng, std::size_t modulus_bits) {
  assert(modulus_bits >= 128);
  const BigInt one(1);
  const BigInt e(65537);
  while (true) {
    BigInt p = random_prime(rng, modulus_bits / 2);
    BigInt q = random_prime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    BigInt n = p * q;
    BigInt p1 = p - one;
    BigInt q1 = q - one;
    BigInt lambda = (p1 * q1) / BigInt::gcd(p1, q1);
    auto d = BigInt::mod_inverse(e, lambda);
    if (!d.ok()) continue;  // e not coprime with lambda; re-draw primes
    return RsaKeyPair{RsaPublicKey{n, e}, RsaPrivateKey{n, std::move(d).take()}};
  }
}

util::Bytes rsa_sign(const RsaPrivateKey& key, const util::Bytes& message) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  auto em = encode_digest(Sha256::hash(message), k);
  BigInt m = BigInt::from_bytes_be(em);
  BigInt s = BigInt::mod_pow(m, key.d, key.n);
  // Left-pad to the modulus length so signatures have a fixed width.
  util::Bytes sig = s.to_bytes_be();
  util::Bytes out(k, 0);
  std::copy(sig.begin(), sig.end(), out.begin() + static_cast<std::ptrdiff_t>(k - sig.size()));
  return out;
}

bool rsa_verify(const RsaPublicKey& key, const util::Bytes& message,
                const util::Bytes& signature) {
  const std::size_t k = (key.n.bit_length() + 7) / 8;
  if (signature.size() != k) return false;
  BigInt s = BigInt::from_bytes_be(signature);
  if (s >= key.n) return false;
  BigInt m = BigInt::mod_pow(s, key.e, key.n);
  util::Bytes em = m.to_bytes_be();
  // Re-encode the expected message representative and compare. to_bytes_be
  // strips leading zeros, so strip them from the reference too.
  util::Bytes expected = encode_digest(Sha256::hash(message), k);
  std::size_t lead = 0;
  while (lead + 1 < expected.size() && expected[lead] == 0) ++lead;
  return em == util::Bytes(expected.begin() + static_cast<std::ptrdiff_t>(lead),
                           expected.end());
}

}  // namespace mwsec::crypto
