#include "crypto/prime.hpp"

#include <array>

namespace mwsec::crypto {

namespace {
constexpr std::array<std::uint32_t, 54> kSmallPrimes = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251};
}

bool is_probable_prime(const BigInt& n, util::Rng& rng, int rounds) {
  if (n < BigInt(2)) return false;
  for (std::uint32_t p : kSmallPrimes) {
    BigInt bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }

  // Write n-1 = d * 2^r with d odd.
  const BigInt one(1);
  const BigInt two(2);
  const BigInt n_minus_1 = n - one;
  BigInt d = n_minus_1;
  std::size_t r = 0;
  while (!d.is_odd()) {
    d = d >> 1;
    ++r;
  }

  for (int round = 0; round < rounds; ++round) {
    // Witness in [2, n-2].
    BigInt a = BigInt::random_below(rng, n - BigInt(3)) + two;
    BigInt x = BigInt::mod_pow(a, d, n);
    if (x == one || x == n_minus_1) continue;
    bool composite = true;
    for (std::size_t i = 0; i + 1 < r; ++i) {
      x = (x * x) % n;
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigInt random_prime(util::Rng& rng, std::size_t bits, int rounds) {
  while (true) {
    BigInt candidate = BigInt::random_bits(rng, bits);
    if (!candidate.is_odd()) candidate = candidate + BigInt(1);
    if (is_probable_prime(candidate, rng, rounds)) return candidate;
  }
}

}  // namespace mwsec::crypto
