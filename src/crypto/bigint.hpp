// Arbitrary-precision unsigned integers.
//
// This is the numeric substrate for the from-scratch RSA implementation
// (see DESIGN.md section 2: the paper's PKI is replaced by a simulated PKI
// that exercises identical sign/verify code paths). Limbs are 32-bit and
// stored little-endian; intermediate products use 64-bit arithmetic.
// Only the operations RSA needs are provided: add/sub/mul/divmod, modular
// exponentiation, gcd, and modular inverse.
#pragma once

#include <cstdint>
#include <utility>
#include <string>
#include <string_view>
#include <vector>

#include "util/encoding.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace mwsec::crypto {

class BigInt {
 public:
  BigInt() = default;
  explicit BigInt(std::uint64_t v);

  static mwsec::Result<BigInt> from_hex(std::string_view hex);
  static BigInt from_bytes_be(const util::Bytes& bytes);  ///< big-endian
  static BigInt random_bits(util::Rng& rng, std::size_t bits);
  /// Uniform in [0, bound).
  static BigInt random_below(util::Rng& rng, const BigInt& bound);

  std::string to_hex() const;
  util::Bytes to_bytes_be() const;
  /// Value as u64; caller must ensure it fits (asserted).
  std::uint64_t to_u64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  /// Three-way compare: -1, 0, +1.
  static int compare(const BigInt& a, const BigInt& b);
  bool operator==(const BigInt& o) const { return compare(*this, o) == 0; }
  bool operator!=(const BigInt& o) const { return compare(*this, o) != 0; }
  bool operator<(const BigInt& o) const { return compare(*this, o) < 0; }
  bool operator<=(const BigInt& o) const { return compare(*this, o) <= 0; }
  bool operator>(const BigInt& o) const { return compare(*this, o) > 0; }
  bool operator>=(const BigInt& o) const { return compare(*this, o) >= 0; }

  BigInt operator+(const BigInt& o) const;
  /// Requires *this >= o (unsigned arithmetic).
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator<<(std::size_t bits) const;
  BigInt operator>>(std::size_t bits) const;

  /// Long division (Knuth Algorithm D); divisor must be nonzero.
  /// Returns {quotient, remainder}.
  static std::pair<BigInt, BigInt> divmod(const BigInt& dividend,
                                          const BigInt& divisor);
  BigInt operator/(const BigInt& o) const { return divmod(*this, o).first; }
  BigInt operator%(const BigInt& o) const { return divmod(*this, o).second; }

  /// (base ^ exp) mod m, square-and-multiply. m must be nonzero.
  static BigInt mod_pow(const BigInt& base, const BigInt& exp, const BigInt& m);
  static BigInt gcd(BigInt a, BigInt b);
  /// Multiplicative inverse of a mod m, if gcd(a, m) == 1.
  static mwsec::Result<BigInt> mod_inverse(const BigInt& a, const BigInt& m);

 private:
  void trim();
  // Little-endian 32-bit limbs; empty vector represents zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace mwsec::crypto
