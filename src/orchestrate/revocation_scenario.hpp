// The revocation-liveness scenario run across real processes: the same
// KeyCOM → sync::Authority → WebCom-master pipeline as the in-process
// integration test, but with the administration point in one process and
// every (master, client, policy-replica) triple in its own process,
// connected by net::TcpTransport over loopback.
//
//   admin process               replica process i (× N)
//   ─────────────               ───────────────────────
//   sync::Authority "admin"  ←  sync::Replica "m<i>.sync"
//   keycom::Service             webcom::Master "m<i>"
//   "ctl" barrier endpoint   ←  webcom::Client "c<i>" (Fred's key)
//
// Flow: the admin publishes the WebCom trust root and commissions Fred
// via KeyCOM; each replica process loops execute() until its (attached,
// never re-attached) client is permitted and reports "permit" to the
// ctl endpoint; once all N reported, the admin withdraws the membership;
// each replica loops until execute() is denied (code "denied") and
// reports "denied"; the admin exits 0 when all N flipped. Every process
// uses the same deterministic crypto::KeyRing seed, so key material
// agrees without any key exchange.
//
// The parent (tools/mwsec-orchestrate or the integration test) spawns
// the roles from its own binary: call maybe_run_role() first thing in
// main() so the re-exec'd child becomes its role instead of the parent.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "util/result.hpp"

namespace mwsec::orchestrate {

struct ScenarioOptions {
  int replicas = 4;
  /// Per-phase deadline inside the roles, and the parent's supervision
  /// deadline is derived from it.
  std::chrono::milliseconds timeout{30000};
  /// Sender-side drop probability on every transport (the scenario must
  /// survive loss via the sync layer's retransmission).
  double drop_probability = 0.0;
};

struct ScenarioReport {
  int replicas = 0;
  int permits = 0;
  int denieds = 0;
  std::chrono::milliseconds elapsed{0};
};

/// Parent half: pick ports, spawn 1 admin + N replica role processes
/// from `exe` (normally self_exe_path()), supervise to the deadline, and
/// parse the admin's summary line. Any role failing (non-zero exit,
/// signal, or timeout) is an error naming the role.
mwsec::Result<ScenarioReport> run_revocation_scenario(
    const std::string& exe, const ScenarioOptions& options = {});

/// Child half: when argv carries --mwsec-role, run that role to
/// completion and return its exit code; std::nullopt when this is not a
/// role invocation (the caller proceeds as the parent). Call before
/// anything else in main().
std::optional<int> maybe_run_role(int argc, char** argv);

}  // namespace mwsec::orchestrate
