#include "orchestrate/process.hpp"

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <thread>

namespace mwsec::orchestrate {

std::string self_exe_path() {
  char buf[4096];
  ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::string(buf);
}

std::uint16_t pick_unused_port() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  std::uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      port = ntohs(bound.sin_port);
    }
  }
  ::close(fd);
  return port;
}

std::string encode_routes(const std::map<std::string, std::string>& routes) {
  std::string out;
  for (const auto& [name, addr] : routes) {
    if (!out.empty()) out += ',';
    out += name + '=' + addr;
  }
  return out;
}

std::map<std::string, std::string> decode_routes(const std::string& encoded) {
  std::map<std::string, std::string> out;
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    std::size_t comma = encoded.find(',', pos);
    if (comma == std::string::npos) comma = encoded.size();
    const std::string entry = encoded.substr(pos, comma - pos);
    const std::size_t eq = entry.find('=');
    if (eq != std::string::npos && eq > 0) {
      out[entry.substr(0, eq)] = entry.substr(eq + 1);
    }
    pos = comma + 1;
  }
  return out;
}

ProcessGroup::~ProcessGroup() {
  kill_all();
  // Reap so the kernel drops the zombies even if the caller never waited.
  for (Child& c : children_) {
    if (!c.exited && c.pid > 0) {
      int status = 0;
      ::waitpid(c.pid, &status, 0);
      c.exited = true;
    }
    if (c.stdout_fd >= 0) {
      ::close(c.stdout_fd);
      c.stdout_fd = -1;
    }
  }
}

mwsec::Result<std::size_t> ProcessGroup::spawn(
    const std::string& name, const std::string& exe,
    const std::vector<std::string>& args, bool capture_stdout) {
  int pipefd[2] = {-1, -1};
  if (capture_stdout && ::pipe(pipefd) != 0) {
    return Error::make("orchestrate: pipe() failed: " +
                           std::string(std::strerror(errno)),
                       "orchestrate");
  }

  std::vector<char*> argv;
  argv.push_back(const_cast<char*>(exe.c_str()));
  for (const std::string& a : args) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);

  pid_t pid = ::fork();
  if (pid < 0) {
    if (capture_stdout) {
      ::close(pipefd[0]);
      ::close(pipefd[1]);
    }
    return Error::make("orchestrate: fork() failed: " +
                           std::string(std::strerror(errno)),
                       "orchestrate");
  }
  if (pid == 0) {
    // Child: redirect stdout into the capture pipe, then become the role.
    if (capture_stdout) {
      ::dup2(pipefd[1], STDOUT_FILENO);
      ::close(pipefd[0]);
      ::close(pipefd[1]);
    }
    ::execv(exe.c_str(), argv.data());
    // Exec failed — nothing sensible to do but die distinctively.
    ::_exit(127);
  }

  if (capture_stdout) ::close(pipefd[1]);  // parent keeps the read end only
  Child c;
  c.name = name;
  c.pid = pid;
  c.stdout_fd = capture_stdout ? pipefd[0] : -1;
  children_.push_back(c);
  return children_.size() - 1;
}

void ProcessGroup::reap_nonblocking() {
  for (Child& c : children_) {
    if (c.exited || c.pid <= 0) continue;
    int status = 0;
    pid_t r = ::waitpid(c.pid, &status, WNOHANG);
    if (r != c.pid) continue;
    c.exited = true;
    if (WIFEXITED(status)) {
      c.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      c.signaled = true;
      c.exit_code = 128 + WTERMSIG(status);
    }
  }
}

bool ProcessGroup::wait_all(std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  for (;;) {
    reap_nonblocking();
    bool all = true;
    for (const Child& c : children_) {
      if (!c.exited) all = false;
    }
    if (all) return true;
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

void ProcessGroup::kill_all() {
  reap_nonblocking();
  for (Child& c : children_) {
    if (!c.exited && c.pid > 0) ::kill(c.pid, SIGKILL);
  }
}

std::string ProcessGroup::drain_stdout(std::size_t index) {
  if (index >= children_.size()) return {};
  Child& c = children_[index];
  if (c.stdout_fd < 0) return {};
  std::string out;
  char buf[4096];
  for (;;) {
    ssize_t n = ::read(c.stdout_fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(c.stdout_fd);
  c.stdout_fd = -1;
  return out;
}

bool ProcessGroup::all_succeeded() const {
  for (const Child& c : children_) {
    if (!c.exited || c.exit_code != 0) return false;
  }
  return !children_.empty();
}

std::string ProcessGroup::failure_summary() const {
  std::string out;
  for (const Child& c : children_) {
    if (c.exited && c.exit_code == 0) continue;
    if (!out.empty()) out += ", ";
    if (!c.exited) {
      out += c.name + " still running";
    } else if (c.signaled) {
      out += c.name + " killed by signal " + std::to_string(c.exit_code - 128);
    } else {
      out += c.name + " exited " + std::to_string(c.exit_code);
    }
  }
  return out;
}

}  // namespace mwsec::orchestrate
