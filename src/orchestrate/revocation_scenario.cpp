#include "orchestrate/revocation_scenario.hpp"

#include <cstdio>
#include <set>
#include <thread>

#include "keycom/service.hpp"
#include "middleware/com/catalogue.hpp"
#include "net/tcp_transport.hpp"
#include "orchestrate/process.hpp"
#include "sync/authority.hpp"
#include "webcom/scheduler.hpp"

namespace mwsec::orchestrate {

namespace {

using namespace std::chrono_literals;

constexpr const char* kRoleAdmin = "revocation-admin";
constexpr const char* kRoleReplica = "revocation-replica";
constexpr const char* kCtlEndpoint = "ctl";

// ---- deterministic scenario material (identical in every process) ----

crypto::KeyRing& ring() {
  static crypto::KeyRing r(/*seed=*/2704, /*modulus_bits=*/256);
  return r;
}

std::string webcom_root() {
  return "Authorizer: POLICY\nLicensees: \"" + ring().principal("KWebCom") +
         "\"\nConditions: app_domain == \"WebCom\";\n";
}

keynote::Assertion finance_manager(const std::string& from,
                                   const std::string& to) {
  return keynote::AssertionBuilder()
      .authorizer("\"" + ring().principal(from) + "\"")
      .licensees("\"" + ring().principal(to) + "\"")
      .conditions(
          "app_domain == \"WebCom\" && Domain == \"Finance\" && "
          "Role == \"Manager\"")
      .build_signed(ring().identity(from))
      .take();
}

webcom::Graph one_task_graph() {
  webcom::Graph g;
  webcom::NodeId n = g.add_node("up", "upper", 1);
  g.set_literal(n, 0, "pay").ok();
  webcom::SecurityTarget t;
  t.object_type = "SalariesDB";
  t.permission = "Access";
  g.set_target(n, t).ok();
  g.set_exit(n).ok();
  return g;
}

// ---- role plumbing ----

struct RoleArgs {
  std::string role;
  std::uint16_t listen_port = 0;
  std::uint16_t node_id = 0;
  int index = 0;
  int replicas = 0;
  std::chrono::milliseconds timeout{30000};
  double loss = 0.0;
  std::map<std::string, std::string> routes;  ///< endpoint → "host:port"
};

std::optional<std::string> flag_value(int argc, char** argv,
                                      const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return std::nullopt;
}

/// Build a started TcpTransport for a role from its args (returns null
/// on failure, with the reason on stderr).
std::unique_ptr<net::TcpTransport> role_transport(const RoleArgs& args) {
  net::TcpOptions topts;
  topts.listen_port = args.listen_port;
  topts.fault.node_id = args.node_id;
  topts.fault.seed = 271828u + args.node_id;
  topts.fault.drop_probability = args.loss;
  auto transport = std::make_unique<net::TcpTransport>(topts);
  auto started = transport->start();
  if (!started.ok()) {
    std::fprintf(stderr, "[%s] transport start failed: %s\n",
                 args.role.c_str(), started.error().message.c_str());
    return nullptr;
  }
  for (const auto& [name, addr] : args.routes) {
    const std::size_t colon = addr.rfind(':');
    if (colon == std::string::npos) continue;
    transport->add_route(
        name, addr.substr(0, colon),
        static_cast<std::uint16_t>(std::stoul(addr.substr(colon + 1))));
  }
  // Give merged trace exports per-process span-id uniqueness, mirroring
  // the transport's message-id prefix.
  obs::Tracer::global().set_id_prefix(args.node_id);
  return transport;
}

// ---- the admin role ----

int run_admin(const RoleArgs& args) {
  auto transport = role_transport(args);
  if (transport == nullptr) return 4;

  auto ctl = transport->open(kCtlEndpoint);
  if (!ctl.ok()) return 4;

  keynote::CompiledStore admin_store;
  sync::Authority::Options aopts;
  aopts.poll_interval = 2ms;
  aopts.retransmit_interval = 15ms;
  sync::Authority authority(*transport, "admin", admin_store, aopts);
  if (!authority.start().ok()) return 4;
  if (!authority.publish_policy_text(webcom_root()).ok()) return 4;

  middleware::AuditLog audit;
  middleware::com::Catalogue catalogue("winsrv", "Finance", &audit);
  keycom::Service service(catalogue, &audit);
  if (!service.trust_root().add_policy_text(webcom_root()).ok()) return 4;
  service.set_publisher(&authority);
  service.register_principal("Fred", ring().principal("Kfred"));

  // Commission Fred up front; replicas catch up through anti-entropy
  // whenever they come online.
  keycom::UpdateRequest commission;
  commission.add_assignments.push_back({"Finance", "Manager", "Fred"});
  commission.credentials = finance_manager("KWebCom", "Kclaire").to_text() +
                           "\n" + finance_manager("Kclaire", "Kfred").to_text();
  commission.sign(ring().identity("Kfred"));
  auto report = service.apply(commission);
  if (!report.ok() || !report->fully_applied()) {
    std::fprintf(stderr, "[admin] commission failed\n");
    return 4;
  }

  const auto started = std::chrono::steady_clock::now();
  const auto deadline = started + args.timeout;

  // Barrier: every replica reports its phase over the transport itself.
  auto collect = [&](const std::string& phase) -> bool {
    std::set<std::string> seen;  // dedupe — TCP delivery is at-least-once
    while (static_cast<int>(seen.size()) < args.replicas) {
      if (std::chrono::steady_clock::now() >= deadline) return false;
      auto m = (*ctl)->receive(100ms);
      if (!m.has_value()) continue;
      if (m->subject == phase) seen.insert(m->from);
    }
    return true;
  };

  if (!collect("permit")) {
    std::fprintf(stderr, "[admin] timeout waiting for permits\n");
    return 2;
  }

  // Figure 8's revocation path, now fanning out over real sockets.
  keycom::UpdateRequest withdraw;
  withdraw.remove_assignments.push_back({"Finance", "Manager", "Fred"});
  withdraw.sign(ring().identity("KWebCom"));
  auto wreport = service.apply(withdraw);
  if (!wreport.ok() || wreport->assignments_removed != 1) {
    std::fprintf(stderr, "[admin] withdraw failed\n");
    return 4;
  }

  if (!collect("denied")) {
    std::fprintf(stderr, "[admin] timeout waiting for denials\n");
    return 3;
  }

  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  // The summary line the parent parses into a ScenarioReport.
  std::printf("permits=%d denieds=%d elapsed_ms=%lld\n", args.replicas,
              args.replicas,
              static_cast<long long>(elapsed.count()));
  std::fflush(stdout);
  return 0;
}

// ---- the replica role ----

int run_replica(const RoleArgs& args) {
  auto transport = role_transport(args);
  if (transport == nullptr) return 4;
  const std::string suffix = std::to_string(args.index);

  // The WebCom master whose trust root is a live replica of the admin
  // store, exactly as in the single-process wiring — only the transport
  // under the subscription changed.
  const auto& master_id = ring().identity("KMaster");
  webcom::MasterOptions mopts;
  mopts.task_timeout = 150ms;
  webcom::Master master(*transport, "m" + suffix, master_id, mopts);
  sync::Replica::Options ropts;
  ropts.poll_interval = 2ms;
  ropts.heartbeat_interval = 15ms;
  if (!master.subscribe_policy("admin", ropts).ok()) return 4;

  // Fred's client attaches once and never re-attaches.
  const auto& fred = ring().identity("Kfred");
  webcom::ClientOptions copts;
  copts.domain = "Finance";
  copts.role = "Manager";
  copts.user = "Fred";
  webcom::Client client(*transport, "c" + suffix, fred,
                        webcom::OperationRegistry::with_builtins(), copts);
  if (!client.store()
           .add_policy_text("Authorizer: POLICY\nLicensees: \"" +
                            master_id.principal() +
                            "\"\nConditions: app_domain == \"WebCom\";\n")
           .ok()) {
    return 4;
  }
  if (!client.start().ok()) return 4;
  webcom::ClientInfo info{"c" + suffix, fred.principal(), {}, "Finance",
                          "Manager", "Fred"};
  if (!master.attach_client(info).ok()) return 4;

  auto report = transport->open("r" + suffix);
  if (!report.ok()) return 4;
  const auto deadline = std::chrono::steady_clock::now() + args.timeout;

  // Phase 1: execute until the commissioned membership reaches this
  // process's replica and the task is permitted.
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "[r%s] timeout waiting for permit\n",
                   suffix.c_str());
      return 2;
    }
    auto v = master.execute(one_task_graph());
    if (v.ok()) {
      if (*v != "PAY") {
        std::fprintf(stderr, "[r%s] wrong result: %s\n", suffix.c_str(),
                     v->c_str());
        return 4;
      }
      break;
    }
    std::this_thread::sleep_for(10ms);
  }
  if (!(*report)->send(kCtlEndpoint, "permit", {}).ok()) return 4;

  // Phase 2: the withdrawal flips the same, still-attached client to
  // denied on a subsequent round — revocation liveness across processes.
  for (;;) {
    if (std::chrono::steady_clock::now() >= deadline) {
      std::fprintf(stderr, "[r%s] timeout waiting for denial\n",
                   suffix.c_str());
      return 3;
    }
    auto v = master.execute(one_task_graph());
    if (!v.ok() && v.error().code == "denied") break;
    std::this_thread::sleep_for(10ms);
  }
  if (!(*report)->send(kCtlEndpoint, "denied", {}).ok()) return 4;
  return 0;
}

}  // namespace

std::optional<int> maybe_run_role(int argc, char** argv) {
  auto role = flag_value(argc, argv, "mwsec-role");
  if (!role.has_value()) return std::nullopt;

  RoleArgs args;
  args.role = *role;
  if (auto v = flag_value(argc, argv, "mwsec-listen")) {
    args.listen_port = static_cast<std::uint16_t>(std::stoul(*v));
  }
  if (auto v = flag_value(argc, argv, "mwsec-node")) {
    args.node_id = static_cast<std::uint16_t>(std::stoul(*v));
  }
  if (auto v = flag_value(argc, argv, "mwsec-index")) {
    args.index = std::stoi(*v);
  }
  if (auto v = flag_value(argc, argv, "mwsec-replicas")) {
    args.replicas = std::stoi(*v);
  }
  if (auto v = flag_value(argc, argv, "mwsec-timeout-ms")) {
    args.timeout = std::chrono::milliseconds(std::stol(*v));
  }
  if (auto v = flag_value(argc, argv, "mwsec-loss")) {
    args.loss = std::stod(*v);
  }
  if (auto v = flag_value(argc, argv, "mwsec-routes")) {
    args.routes = decode_routes(*v);
  }

  if (args.role == kRoleAdmin) return run_admin(args);
  if (args.role == kRoleReplica) return run_replica(args);
  std::fprintf(stderr, "unknown --mwsec-role=%s\n", args.role.c_str());
  return 64;
}

mwsec::Result<ScenarioReport> run_revocation_scenario(
    const std::string& exe, const ScenarioOptions& options) {
  if (exe.empty()) {
    return Error::make("orchestrate: no executable to re-exec", "orchestrate");
  }
  const auto started = std::chrono::steady_clock::now();

  // The port plan: every process learns every peer's address up front.
  const std::uint16_t admin_port = pick_unused_port();
  std::vector<std::uint16_t> replica_ports;
  for (int i = 0; i < options.replicas; ++i) {
    replica_ports.push_back(pick_unused_port());
  }
  const std::string admin_addr = "127.0.0.1:" + std::to_string(admin_port);

  const std::string timeout_arg =
      "--mwsec-timeout-ms=" + std::to_string(options.timeout.count());
  const std::string loss_arg =
      "--mwsec-loss=" + std::to_string(options.drop_probability);

  ProcessGroup group;

  // Admin routes: the authority pushes deltas to each process's policy
  // replica, named "m<i>.sync" by webcom::Master::subscribe_policy.
  std::map<std::string, std::string> admin_routes;
  for (int i = 0; i < options.replicas; ++i) {
    admin_routes["m" + std::to_string(i) + ".sync"] =
        "127.0.0.1:" + std::to_string(replica_ports[i]);
  }
  auto admin = group.spawn(
      "admin", exe,
      {std::string("--mwsec-role=") + kRoleAdmin,
       "--mwsec-listen=" + std::to_string(admin_port), "--mwsec-node=1",
       "--mwsec-replicas=" + std::to_string(options.replicas),
       "--mwsec-routes=" + encode_routes(admin_routes), timeout_arg, loss_arg},
      /*capture_stdout=*/true);
  if (!admin.ok()) return admin.error();

  // Replica routes: subscribe to the authority, report to the barrier.
  for (int i = 0; i < options.replicas; ++i) {
    std::map<std::string, std::string> routes;
    routes["admin"] = admin_addr;
    routes[kCtlEndpoint] = admin_addr;
    auto spawned = group.spawn(
        "r" + std::to_string(i), exe,
        {std::string("--mwsec-role=") + kRoleReplica,
         "--mwsec-listen=" + std::to_string(replica_ports[i]),
         "--mwsec-node=" + std::to_string(i + 2),
         "--mwsec-index=" + std::to_string(i),
         "--mwsec-routes=" + encode_routes(routes), timeout_arg, loss_arg});
    if (!spawned.ok()) {
      group.kill_all();
      return spawned.error();
    }
  }

  // Roles deadline themselves at options.timeout; the slack covers
  // process startup and teardown.
  if (!group.wait_all(options.timeout + std::chrono::seconds(10))) {
    group.kill_all();
    return Error::make(
        "orchestrate: scenario timed out: " + group.failure_summary(),
        "orchestrate");
  }
  if (!group.all_succeeded()) {
    return Error::make(
        "orchestrate: scenario failed: " + group.failure_summary(),
        "orchestrate");
  }

  ScenarioReport report;
  report.replicas = options.replicas;
  report.elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - started);
  const std::string summary = group.drain_stdout(*admin);
  auto parse_int = [&](const std::string& key) -> int {
    const std::size_t pos = summary.find(key + "=");
    if (pos == std::string::npos) return 0;
    return std::atoi(summary.c_str() + pos + key.size() + 1);
  };
  report.permits = parse_int("permits");
  report.denieds = parse_int("denieds");
  return report;
}

}  // namespace mwsec::orchestrate
