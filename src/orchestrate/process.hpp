// Process orchestration for multi-process deployments (DESIGN.md §14):
// fork/exec a group of role processes (the same binary re-executed with
// --mwsec-* flags), distribute the listen-port plan to them as routes,
// and supervise the group to a deadline. This is the harness under
// tools/mwsec-orchestrate and the multi-process integration tests — the
// paper's Figure-3 deployment (masters, clients, replicas on separate
// hosts) reduced to separate processes on loopback.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <sys/types.h>
#include <vector>

#include "util/result.hpp"

namespace mwsec::orchestrate {

/// The path of the currently running executable (/proc/self/exe), so a
/// test or tool can respawn itself in a role.
std::string self_exe_path();

/// Bind-and-release an ephemeral loopback port. The tiny window between
/// release and the child's bind is racable in principle; in practice the
/// kernel does not rehand the port out immediately, and the orchestrated
/// scenarios are test rigs, not production deployments.
std::uint16_t pick_unused_port();

/// "name=host:port,name=host:port" — the route-plan codec passed to role
/// processes via --mwsec-routes. Names are endpoint names; each entry
/// becomes a TcpTransport::add_route in the child.
std::string encode_routes(const std::map<std::string, std::string>& routes);
std::map<std::string, std::string> decode_routes(const std::string& encoded);

/// A group of spawned role processes, supervised together. Children that
/// are still alive when the group dies are killed — no orphans.
class ProcessGroup {
 public:
  struct Child {
    std::string name;
    pid_t pid = -1;
    int stdout_fd = -1;  ///< read end of the capture pipe, -1 if inherited
    bool exited = false;
    int exit_code = -1;   ///< valid once exited
    bool signaled = false;  ///< terminated by a signal instead
  };

  ProcessGroup() = default;
  ~ProcessGroup();
  ProcessGroup(const ProcessGroup&) = delete;
  ProcessGroup& operator=(const ProcessGroup&) = delete;

  /// fork/exec `exe` with `args` (argv[0] is derived from `exe`). With
  /// `capture_stdout`, the child's stdout is piped back for
  /// drain_stdout(); stderr is always inherited so failures are visible.
  mwsec::Result<std::size_t> spawn(const std::string& name,
                                   const std::string& exe,
                                   const std::vector<std::string>& args,
                                   bool capture_stdout = false);

  /// Wait until every child exited or the deadline passes. Returns true
  /// when all exited.
  bool wait_all(std::chrono::milliseconds timeout);

  /// SIGKILL every still-running child (idempotent).
  void kill_all();

  /// Everything the child wrote to its captured stdout (empty when the
  /// child was spawned without capture). Call after the child exited.
  std::string drain_stdout(std::size_t index);

  const std::vector<Child>& children() const { return children_; }
  /// True when every child exited with code 0.
  bool all_succeeded() const;
  /// "name exited 3, name killed by signal" — for error messages.
  std::string failure_summary() const;

 private:
  void reap_nonblocking();
  std::vector<Child> children_;
};

}  // namespace mwsec::orchestrate
