#include "load/population.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "load/zipf.hpp"

namespace mwsec::load {

namespace {

constexpr const char* kRoleNames[] = {"Operator", "Manager",  "Auditor",
                                      "Clerk",    "Engineer", "Analyst"};
constexpr const char* kPermissions[] = {"read", "write", "approve", "execute"};

/// Mix the population seed with a principal index into an independent
/// per-principal stream seed (the SplitMix64 increment keeps streams from
/// correlating for adjacent indices).
std::uint64_t principal_seed(std::uint64_t seed, std::size_t i) {
  return seed ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(i) + 1));
}

}  // namespace

Population::Population(PopulationOptions options) : options_(options) {
  assert(options_.principals > 0);
  assert(options_.domains > 0 && options_.roles_per_domain > 0);
  assert(options_.object_types > 0);
  assert(options_.entitlements_per_principal > 0);
  const std::size_t n_perms = std::size(kPermissions);
  for (std::size_t d = 0; d < options_.domains; ++d) {
    for (std::size_t r = 0; r < options_.roles_per_domain; ++r) {
      const std::string domain = domain_name(d);
      const std::string role = role_name(r);
      // Two rows per role: deterministic, collision-free across roles in
      // a domain, never the forbidden permission.
      rbac::PermissionGrant a{domain, role,
                              "T" + std::to_string((d + r) %
                                                   options_.object_types),
                              kPermissions[r % n_perms]};
      rbac::PermissionGrant b{domain, role,
                              "T" + std::to_string((d + 2 * r + 1) %
                                                   options_.object_types),
                              kPermissions[(r + 1) % n_perms]};
      grants_.grant(a).ok();
      grants_.grant(b).ok();
      auto& rows = by_role_[{domain, role}];
      rows.push_back(a);
      if (!(b == a)) rows.push_back(b);
    }
  }
}

std::string Population::user(std::size_t i) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "u%07zu", i);
  return buf;
}

std::string Population::principal(std::size_t i) const {
  return "K" + user(i);
}

std::string Population::domain_name(std::size_t d) const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "Dept%02zu", d);
  return buf;
}

std::string Population::role_name(std::size_t r) const {
  return kRoleNames[r % std::size(kRoleNames)];
}

std::vector<rbac::RoleInstance> Population::entitlements(std::size_t i) const {
  SplitMix64 rng(principal_seed(options_.seed, i));
  std::vector<rbac::RoleInstance> out;
  const std::size_t want = options_.entitlements_per_principal;
  // Distinct (domain, role) pairs, not merely distinct instances: a
  // parameterless credential's conditions pin only Domain/Role, so it
  // would subsume a parameterized sibling instance of the same pair and
  // break the oracle's per-entitlement ground truth. Bounded retries:
  // the role space may be smaller than the request.
  for (std::size_t attempts = 0; out.size() < want && attempts < 4 * want + 8;
       ++attempts) {
    rbac::RoleInstance instance;
    instance.domain = domain_name(rng.next_below(options_.domains));
    instance.role = role_name(rng.next_below(options_.roles_per_domain));
    if (rng.chance(options_.parameterized_fraction)) {
      instance.params.emplace_back(
          "tier", "t" + std::to_string(rng.next_below(4)));
    }
    const bool pair_taken =
        std::any_of(out.begin(), out.end(), [&](const rbac::RoleInstance& e) {
          return e.domain == instance.domain && e.role == instance.role;
        });
    if (!pair_taken) out.push_back(std::move(instance));
  }
  return out;
}

void Population::register_assignments(std::size_t i,
                                      rbac::Policy& policy) const {
  const std::string u = user(i);
  for (const auto& e : entitlements(i)) {
    policy.assign(u, e.domain, e.role).ok();  // set-backed: idempotent
  }
}

const rbac::PermissionGrant& Population::granted_action(
    const rbac::RoleInstance& instance, std::size_t k) const {
  auto it = by_role_.find({instance.domain, instance.role});
  assert(it != by_role_.end() && !it->second.empty());
  return it->second[k % it->second.size()];
}

}  // namespace mwsec::load
