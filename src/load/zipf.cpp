#include "load/zipf.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mwsec::load {

ZipfGenerator::ZipfGenerator(std::size_t n, double s, std::uint64_t seed)
    : s_(s), rng_(seed) {
  assert(n > 0);
  cdf_.resize(n);
  double acc = 0;
  for (std::size_t r = 0; r < n; ++r) {
    acc += std::pow(double(r + 1), -s);
    cdf_[r] = acc;
  }
  const double total = acc;
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding leaving the tail short
}

std::size_t ZipfGenerator::next() {
  const double u = rng_.next_double();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;  // u == 1.0 cannot happen, but stay safe
  return std::size_t(it - cdf_.begin());
}

double ZipfGenerator::probability(std::size_t rank) const {
  if (rank >= cdf_.size()) return 0;
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace mwsec::load
