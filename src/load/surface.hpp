// Decision surfaces: the three places the paper's architecture answers
// an authorisation question, behind one harness-facing interface.
//
//   DirectSurface      — authz::KeyNoteAuthorizer over one CompiledStore,
//                        fronted by the unified decision cache. The
//                        in-process baseline every other surface is
//                        measured against.
//   ReplicatedSurface  — a sync::Authority publishing to R replicas, each
//                        with its own store + cache; decisions route to a
//                        replica by principal hash. Runs over the
//                        InProcessBus or real TCP sockets (the same
//                        full-mesh rig the transport tests use), so the
//                        revocation-storm propagation path is exercised
//                        over loopback TCP in CI.
//   WebComSurface      — a webcom::Master scheduling one-task graphs over
//                        attached clients; the verdict is whether the
//                        scheduler found an authorised placement. Small
//                        population (clients are threads), no param_*
//                        attributes (the scheduler's query vocabulary is
//                        the fixed Figure 5 set).
//
// Each surface exposes its write side as the CredentialSink the
// SessionBridge feeds, and a settle() barrier after which decisions must
// agree with admitted state — the oracle's strictness boundary.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "authz/authz.hpp"
#include "load/population.hpp"
#include "load/session_bridge.hpp"
#include "util/result.hpp"

namespace mwsec::load {

struct SurfaceCaps {
  std::size_t max_principals = 0;  ///< 0 = unbounded
  /// Only entitlement 0 is exercised (one execution identity per client).
  bool single_entitlement = false;
  /// Requests cannot carry param_* attributes; the bridge strips params.
  bool supports_params = true;
  /// decide() resolves arbitrary principals directly (delegation-chain
  /// leaves); false where a decision needs an attached execution context.
  bool supports_chains = true;
  bool supports_flap = false;
  std::size_t replicas = 0;
};

class Surface {
 public:
  virtual ~Surface() = default;

  virtual std::string name() const = 0;
  virtual SurfaceCaps caps() const { return {}; }

  /// The write side the SessionBridge admits/revokes through.
  virtual CredentialSink& sink() = 0;

  virtual authz::Verdict decide(const authz::Request& request) = 0;

  /// Block until every decision point has converged on all admitted
  /// state. Strict oracle sweeps run only after a successful settle.
  virtual mwsec::Status settle(std::chrono::milliseconds timeout) = 0;

  /// Store version at the authority/write side.
  virtual std::uint64_t epoch() const = 0;

  /// First traffic for principal `i` (the WebCom surface attaches a
  /// client here). Default no-op.
  virtual mwsec::Status on_first_touch(std::size_t i) {
    (void)i;
    return {};
  }

  /// Adversary hook: take a replica down / bring it back (alternating).
  virtual mwsec::Status flap(std::size_t round) {
    (void)round;
    return Error::make("surface does not support replica flap", "load");
  }
};

/// In-process store + cache.
class DirectSurface final : public Surface, public CredentialSink {
 public:
  DirectSurface();
  ~DirectSurface() override;

  std::string name() const override { return "direct"; }
  SurfaceCaps caps() const override { return {}; }
  CredentialSink& sink() override { return *this; }
  authz::Verdict decide(const authz::Request& request) override;
  mwsec::Status settle(std::chrono::milliseconds) override { return {}; }
  std::uint64_t epoch() const override;

  mwsec::Status admit_policy_text(const std::string& text) override;
  mwsec::Status admit(keynote::Assertion credential) override;
  std::size_t revoke_matching(const std::string& text) override;
  std::size_t revoke_by_licensee(const std::string& principal) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

struct ReplicatedSurfaceOptions {
  std::size_t replicas = 3;
  /// False = InProcessBus; true = one TcpTransport per node over
  /// loopback, full-mesh routed.
  bool tcp = false;
  std::uint64_t seed = 42;
  /// Fault injection on the transport (loss → retransmit path).
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
};

/// Authority + R replicated stores; decisions route by principal hash.
class ReplicatedSurface final : public Surface, public CredentialSink {
 public:
  explicit ReplicatedSurface(ReplicatedSurfaceOptions options = {});
  ~ReplicatedSurface() override;

  /// Open endpoints, start the authority and subscribe every replica.
  mwsec::Status start();

  std::string name() const override { return options_.tcp ? "replicated-tcp"
                                                          : "replicated"; }
  SurfaceCaps caps() const override;
  CredentialSink& sink() override { return *this; }
  authz::Verdict decide(const authz::Request& request) override;
  mwsec::Status settle(std::chrono::milliseconds timeout) override;
  std::uint64_t epoch() const override;
  mwsec::Status flap(std::size_t round) override;

  mwsec::Status admit_policy_text(const std::string& text) override;
  mwsec::Status admit(keynote::Assertion credential) override;
  std::size_t revoke_matching(const std::string& text) override;
  std::size_t revoke_by_licensee(const std::string& principal) override;

 private:
  struct Impl;
  ReplicatedSurfaceOptions options_;
  std::unique_ptr<Impl> impl_;
};

struct WebComSurfaceOptions {
  /// Clients are real worker threads: keep the population tiny.
  std::size_t max_clients = 8;
};

/// Decisions through the WebCom master's scheduler.
class WebComSurface final : public Surface, public CredentialSink {
 public:
  explicit WebComSurface(const Population& population,
                         WebComSurfaceOptions options = {});
  ~WebComSurface() override;

  mwsec::Status start();

  std::string name() const override { return "webcom"; }
  SurfaceCaps caps() const override;
  CredentialSink& sink() override { return *this; }
  authz::Verdict decide(const authz::Request& request) override;
  mwsec::Status settle(std::chrono::milliseconds timeout) override;
  std::uint64_t epoch() const override;
  mwsec::Status on_first_touch(std::size_t i) override;

  mwsec::Status admit_policy_text(const std::string& text) override;
  mwsec::Status admit(keynote::Assertion credential) override;
  std::size_t revoke_matching(const std::string& text) override;
  std::size_t revoke_by_licensee(const std::string& principal) override;

 private:
  struct Impl;
  const Population& population_;
  WebComSurfaceOptions options_;
  std::unique_ptr<Impl> impl_;
};

}  // namespace mwsec::load
