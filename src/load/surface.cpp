#include "load/surface.hpp"

#include <deque>
#include <functional>
#include <map>
#include <optional>

#include "authz/caching.hpp"
#include "authz/keynote_authorizer.hpp"
#include "crypto/keys.hpp"
#include "keynote/compiled_store.hpp"
#include "net/network.hpp"
#include "net/tcp_transport.hpp"
#include "sync/authority.hpp"
#include "sync/replica.hpp"
#include "webcom/graph.hpp"
#include "webcom/scheduler.hpp"

namespace mwsec::load {

namespace {

constexpr const char* kAuthorityEndpoint = "load.admin";

/// Replication tuned for harness runs: convergence in milliseconds, not
/// the defaults' tens of them.
sync::AuthorityOptions fast_authority() {
  sync::AuthorityOptions o;
  o.poll_interval = std::chrono::milliseconds(2);
  o.retransmit_interval = std::chrono::milliseconds(10);
  // The harness mints unsigned synthetic credentials; admission
  // verification is the signing deployments' concern, not this rig's.
  o.verify_admissions = false;
  return o;
}

sync::ReplicaOptions fast_replica() {
  sync::ReplicaOptions o;
  o.poll_interval = std::chrono::milliseconds(2);
  o.heartbeat_interval = std::chrono::milliseconds(10);
  o.verify_signatures = false;
  return o;
}

std::string replica_endpoint(std::size_t i) {
  return "load.r" + std::to_string(i);
}

}  // namespace

// ---------------------------------------------------------------------------
// DirectSurface

struct DirectSurface::Impl {
  keynote::CompiledStore store;
  authz::KeyNoteAuthorizer backend{store, "load-direct"};
  authz::CachingAuthorizer cache{backend};
};

DirectSurface::DirectSurface() : impl_(std::make_unique<Impl>()) {}
DirectSurface::~DirectSurface() = default;

authz::Verdict DirectSurface::decide(const authz::Request& request) {
  return impl_->cache.decide(request);
}

std::uint64_t DirectSurface::epoch() const { return impl_->store.version(); }

mwsec::Status DirectSurface::admit_policy_text(const std::string& text) {
  return impl_->store.add_policy_text(text);
}

mwsec::Status DirectSurface::admit(keynote::Assertion credential) {
  return impl_->store.add_credential(std::move(credential),
                                     /*verify_signature=*/false);
}

std::size_t DirectSurface::revoke_matching(const std::string& text) {
  return impl_->store.remove_matching(text);
}

std::size_t DirectSurface::revoke_by_licensee(const std::string& principal) {
  return impl_->store.remove_by_licensee(principal);
}

// ---------------------------------------------------------------------------
// ReplicatedSurface

struct ReplicatedSurface::Impl {
  struct Node {
    keynote::CompiledStore store;
    std::unique_ptr<sync::Replica> replica;
    std::unique_ptr<authz::KeyNoteAuthorizer> backend;
    std::unique_ptr<authz::CachingAuthorizer> cache;
    bool down = false;
  };

  std::unique_ptr<net::Network> bus;
  std::vector<std::unique_ptr<net::TcpTransport>> tcp;  ///< [0]=authority
  keynote::CompiledStore authority_store;
  std::unique_ptr<sync::Authority> authority;
  std::deque<Node> nodes;  ///< address-stable
  std::optional<std::size_t> flapped;

  net::Transport& transport_for(std::size_t node_index) {
    // node_index 0 = authority, 1.. = replicas. One shared bus, or one
    // TCP transport per node (the real multi-process shape).
    return bus ? static_cast<net::Transport&>(*bus) : *tcp[node_index];
  }
};

ReplicatedSurface::ReplicatedSurface(ReplicatedSurfaceOptions options)
    : options_(options), impl_(std::make_unique<Impl>()) {
  if (options_.replicas == 0) options_.replicas = 1;
}

ReplicatedSurface::~ReplicatedSurface() = default;

mwsec::Status ReplicatedSurface::start() {
  const std::size_t R = options_.replicas;
  if (options_.tcp) {
    for (std::size_t n = 0; n < R + 1; ++n) {
      net::TcpOptions topts;
      topts.fault.seed = options_.seed + n;
      topts.fault.node_id = static_cast<std::uint16_t>(n + 1);
      topts.fault.drop_probability = options_.drop_probability;
      topts.fault.duplicate_probability = options_.duplicate_probability;
      auto t = std::make_unique<net::TcpTransport>(topts);
      if (auto s = t->start(); !s.ok()) return s;
      impl_->tcp.push_back(std::move(t));
    }
    // Routes: the authority reaches every replica, every replica reaches
    // the authority (replicas never talk to each other).
    for (std::size_t i = 0; i < R; ++i) {
      impl_->tcp[0]->add_route(replica_endpoint(i), impl_->tcp[i + 1]->host(),
                               impl_->tcp[i + 1]->port());
      impl_->tcp[i + 1]->add_route(kAuthorityEndpoint, impl_->tcp[0]->host(),
                                   impl_->tcp[0]->port());
    }
  } else {
    net::Transport::Options bopts;
    bopts.seed = options_.seed;
    bopts.drop_probability = options_.drop_probability;
    bopts.duplicate_probability = options_.duplicate_probability;
    impl_->bus = std::make_unique<net::Network>(bopts);
  }

  impl_->authority = std::make_unique<sync::Authority>(
      impl_->transport_for(0), kAuthorityEndpoint, impl_->authority_store,
      fast_authority());
  if (auto s = impl_->authority->start(); !s.ok()) return s;

  for (std::size_t i = 0; i < R; ++i) {
    auto& node = impl_->nodes.emplace_back();
    node.replica = std::make_unique<sync::Replica>(
        impl_->transport_for(i + 1), replica_endpoint(i), node.store,
        fast_replica());
    if (auto s = node.replica->subscribe(kAuthorityEndpoint); !s.ok()) {
      return s;
    }
    node.backend = std::make_unique<authz::KeyNoteAuthorizer>(
        node.store, "load-replica-" + std::to_string(i));
    node.cache = std::make_unique<authz::CachingAuthorizer>(*node.backend);
  }
  return {};
}

SurfaceCaps ReplicatedSurface::caps() const {
  SurfaceCaps c;
  c.supports_flap = options_.replicas >= 2;
  c.replicas = options_.replicas;
  return c;
}

authz::Verdict ReplicatedSurface::decide(const authz::Request& request) {
  const std::size_t R = impl_->nodes.size();
  std::size_t i = std::hash<std::string>{}(request.principal) % R;
  for (std::size_t probe = 0; probe < R; ++probe) {
    auto& node = impl_->nodes[(i + probe) % R];
    if (!node.down) return node.cache->decide(request);
  }
  // Every replica down: the service is unavailable, which is a deny.
  return authz::Verdict::deny("load-replicated-unavailable");
}

mwsec::Status ReplicatedSurface::settle(std::chrono::milliseconds timeout) {
  const std::uint64_t target = impl_->authority_store.version();
  for (std::size_t i = 0; i < impl_->nodes.size(); ++i) {
    auto& node = impl_->nodes[i];
    if (node.down) continue;
    if (!node.replica->wait_for_epoch(target, timeout)) {
      return Error::make("replica " + std::to_string(i) +
                             " failed to reach epoch " +
                             std::to_string(target),
                         "load");
    }
  }
  return {};
}

std::uint64_t ReplicatedSurface::epoch() const {
  return impl_->authority_store.version();
}

mwsec::Status ReplicatedSurface::flap(std::size_t round) {
  if (impl_->nodes.size() < 2) {
    return Error::make("flap needs at least two replicas", "load");
  }
  if (impl_->flapped.has_value()) {
    // Bring the down replica back: re-subscribe and catch up from the
    // authority (replay or snapshot, whichever the gap demands).
    auto& node = impl_->nodes[*impl_->flapped];
    if (auto s = node.replica->subscribe(kAuthorityEndpoint); !s.ok()) {
      return s;
    }
    node.down = false;
    impl_->flapped.reset();
    return {};
  }
  const std::size_t victim = round % impl_->nodes.size();
  auto& node = impl_->nodes[victim];
  node.replica->stop();
  node.down = true;
  impl_->flapped = victim;
  return {};
}

mwsec::Status ReplicatedSurface::admit_policy_text(const std::string& text) {
  return impl_->authority->publish_policy_text(text);
}

mwsec::Status ReplicatedSurface::admit(keynote::Assertion credential) {
  return impl_->authority->publish_credential(std::move(credential));
}

std::size_t ReplicatedSurface::revoke_matching(const std::string& text) {
  return impl_->authority->revoke_matching(text);
}

std::size_t ReplicatedSurface::revoke_by_licensee(
    const std::string& principal) {
  return impl_->authority->revoke_by_licensee(principal);
}

// ---------------------------------------------------------------------------
// WebComSurface

struct WebComSurface::Impl {
  net::Network bus;
  crypto::KeyRing ring;
  keynote::CompiledStore authority_store;
  std::unique_ptr<sync::Authority> authority;
  std::unique_ptr<webcom::Master> master;
  struct Slot {
    std::unique_ptr<webcom::Client> client;
  };
  std::map<std::string, Slot> clients;  ///< by user name
};

WebComSurface::WebComSurface(const Population& population,
                             WebComSurfaceOptions options)
    : population_(population), options_(options),
      impl_(std::make_unique<Impl>()) {}

WebComSurface::~WebComSurface() {
  // Clients serve on background threads off the master's bus; drop the
  // master (and its replica thread) before the clients it schedules to.
  impl_->master.reset();
  impl_->authority.reset();
}

mwsec::Status WebComSurface::start() {
  impl_->authority = std::make_unique<sync::Authority>(
      impl_->bus, kAuthorityEndpoint, impl_->authority_store,
      fast_authority());
  if (auto s = impl_->authority->start(); !s.ok()) return s;

  webcom::MasterOptions mopts;
  mopts.security_enabled = true;
  impl_->master = std::make_unique<webcom::Master>(
      impl_->bus, "load.master", impl_->ring.identity("loadmaster"), mopts);
  return impl_->master->subscribe_policy(kAuthorityEndpoint, fast_replica());
}

SurfaceCaps WebComSurface::caps() const {
  SurfaceCaps c;
  c.max_principals = options_.max_clients;
  c.single_entitlement = true;   // one execution identity per client
  c.supports_params = false;     // the scheduler speaks fixed Figure 5
  c.supports_chains = false;     // decisions need an attached client
  return c;
}

mwsec::Status WebComSurface::on_first_touch(std::size_t i) {
  const std::string user = population_.user(i);
  if (impl_->clients.count(user) != 0) return {};
  if (impl_->clients.size() >= options_.max_clients) {
    return Error::make("webcom surface is full", "load");
  }
  const auto entitlements = population_.entitlements(i);
  const rbac::RoleInstance& e0 = entitlements.front();

  const std::string endpoint = "load.c" + std::to_string(i);
  webcom::ClientOptions copts;
  // The run measures master-side scheduling decisions; the clients'
  // willingness to serve this master is not under test.
  copts.security_enabled = false;
  copts.domain = e0.domain;
  copts.role = e0.role;
  copts.user = user;
  auto& slot = impl_->clients[user];
  slot.client = std::make_unique<webcom::Client>(
      impl_->bus, endpoint, impl_->ring.identity("c" + user),
      webcom::OperationRegistry::with_builtins(), copts);
  if (auto s = slot.client->start(); !s.ok()) return s;

  webcom::ClientInfo info;
  info.endpoint = endpoint;
  info.principal = population_.principal(i);
  info.domain = e0.domain;
  info.role = e0.role;
  info.user = user;
  return impl_->master->attach_client(std::move(info));
}

authz::Verdict WebComSurface::decide(const authz::Request& request) {
  webcom::Graph g;
  webcom::NodeId n = g.add_node("task", "upper", 1);
  g.set_literal(n, 0, "x").ok();
  webcom::SecurityTarget target;
  target.object_type = request.object_type;
  target.permission = request.permission;
  target.domain = request.domain;
  target.role = request.role;
  target.user = request.user;
  g.set_target(n, target).ok();
  g.set_exit(n).ok();
  auto result = impl_->master->execute(g);
  return result.ok()
             ? authz::Verdict::permit("webcom-master",
                                      impl_->master->store().version())
             : authz::Verdict::deny("webcom-master",
                                    impl_->master->store().version());
}

mwsec::Status WebComSurface::settle(std::chrono::milliseconds timeout) {
  const sync::Replica* replica = impl_->master->policy_replica();
  if (replica == nullptr) {
    return Error::make("master has no policy replica", "load");
  }
  if (!replica->wait_for_epoch(impl_->authority_store.version(), timeout)) {
    return Error::make("master replica failed to settle", "load");
  }
  return {};
}

std::uint64_t WebComSurface::epoch() const {
  return impl_->authority_store.version();
}

mwsec::Status WebComSurface::admit_policy_text(const std::string& text) {
  return impl_->authority->publish_policy_text(text);
}

mwsec::Status WebComSurface::admit(keynote::Assertion credential) {
  return impl_->authority->publish_credential(std::move(credential));
}

std::size_t WebComSurface::revoke_matching(const std::string& text) {
  return impl_->authority->revoke_matching(text);
}

std::size_t WebComSurface::revoke_by_licensee(const std::string& principal) {
  return impl_->authority->revoke_by_licensee(principal);
}

}  // namespace mwsec::load
