#include "load/engine.hpp"

#include <algorithm>
#include <sstream>
#include <thread>

#include "middleware/com/catalogue.hpp"
#include "middleware/ejb/container.hpp"
#include "translate/directory.hpp"
#include "translate/migration.hpp"
#include "translate/rbac_to_keynote.hpp"

namespace mwsec::load {

namespace {

using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Process-wide observability mirror: the same counters per-phase local
/// tallies feed, published through obs:: for anyone watching the run
/// (mwsec-stats, metric snapshots). The run report itself is built from
/// the local tallies so back-to-back runs in one process don't bleed
/// into each other.
struct LoadMetrics {
  obs::Counter& requests;
  obs::Counter& permits;
  obs::Counter& denies;
  obs::Counter& stale;
  obs::Counter& oracle_checks;
  obs::Counter& oracle_violations;
  obs::Counter& activations;
  obs::Counter& deactivations;
  obs::Counter& revocations;
  obs::Histogram& decide_us;

  static LoadMetrics& get() {
    auto& r = obs::Registry::global();
    static LoadMetrics m{
        r.counter("load.requests"),
        r.counter("load.permits"),
        r.counter("load.denies"),
        r.counter("load.stale_verdicts"),
        r.counter("load.oracle_checks"),
        r.counter("load.oracle_violations"),
        r.counter("load.session_activations"),
        r.counter("load.session_deactivations"),
        r.counter("load.revocations"),
        r.histogram("load.decide_us", obs::Histogram::latency_bounds_us()),
    };
    return m;
  }
};

}  // namespace

std::uint64_t RunReport::total_requests() const {
  std::uint64_t n = 0;
  for (const auto& p : phases) n += p.requests;
  return n;
}

std::uint64_t RunReport::total_violations() const {
  std::uint64_t n = 0;
  for (const auto& p : phases) n += p.oracle_violations;
  return n;
}

std::string RunReport::to_json() const {
  std::ostringstream os;
  os << "{\"scenario\":\"" << json_escape(scenario) << "\""
     << ",\"surface\":\"" << json_escape(surface) << "\""
     << ",\"seed\":" << seed << ",\"principals\":" << principals
     << ",\"pass\":" << (pass ? "true" : "false") << ",\"phases\":[";
  for (std::size_t i = 0; i < phases.size(); ++i) {
    const auto& p = phases[i];
    if (i != 0) os << ",";
    os << "{\"name\":\"" << json_escape(p.name) << "\""
       << ",\"completed\":" << (p.completed ? "true" : "false")
       << ",\"requests\":" << p.requests << ",\"permits\":" << p.permits
       << ",\"denies\":" << p.denies << ",\"stale\":" << p.stale
       << ",\"oracle_checks\":" << p.oracle_checks
       << ",\"oracle_violations\":" << p.oracle_violations
       << ",\"activations\":" << p.activations
       << ",\"deactivations\":" << p.deactivations
       << ",\"revocations\":" << p.revocations
       << ",\"migrations\":" << p.migrations << ",\"flaps\":" << p.flaps
       << ",\"chain_queries\":" << p.chain_queries
       << ",\"decide_p50_us\":" << p.decide_p50_us
       << ",\"decide_p99_us\":" << p.decide_p99_us
       << ",\"duration_ms\":" << p.duration_ms << ",\"violation_samples\":[";
    for (std::size_t j = 0; j < p.violation_samples.size(); ++j) {
      if (j != 0) os << ",";
      os << "\"" << json_escape(p.violation_samples[j]) << "\"";
    }
    os << "]}";
  }
  os << "],\"slo\":" << slo.to_json() << "}";
  return os.str();
}

Engine::Engine(Surface& surface, const Population& population,
               EngineOptions options)
    : surface_(surface), population_(population), options_(options),
      caps_(surface.caps()),
      effective_principals_(
          caps_.max_principals == 0
              ? population.size()
              : std::min(population.size(), caps_.max_principals)),
      rng_(options.seed ^ 0xc0ffee),
      overall_(obs::Histogram::latency_bounds_us()) {
  SessionBridgeOptions bopts;
  bopts.strip_params = !caps_.supports_params;
  bopts.max_active_per_session = options_.max_active_per_session;
  bridge_ = std::make_unique<SessionBridge>(population_, surface_.sink(),
                                            bopts);
  zipf_ = std::make_unique<ZipfGenerator>(effective_principals_,
                                          options_.zipf_exponent,
                                          options_.seed);
}

Engine::~Engine() = default;

mwsec::Result<RunReport> Engine::run(const Scenario& scenario) {
  RunReport report;
  report.scenario = scenario.name;
  report.surface = surface_.name();
  report.seed = options_.seed;
  report.principals = effective_principals_;

  if (auto s = bridge_->install_policy_root(); !s.ok()) return s.error();
  if (auto s = surface_.settle(options_.settle_timeout); !s.ok()) {
    return s.error();
  }

  // Replica apply errors are an SLO: snapshot the process-wide counter so
  // earlier runs in this process don't count against this one.
  auto& apply_errors = obs::Registry::global().counter("sync.apply_errors");
  const std::uint64_t apply_errors_before = apply_errors.value();

  // Scale phase durations when the caller asked for a total budget.
  std::chrono::milliseconds total{0};
  for (const auto& p : scenario.phases) total += p.duration;
  const double scale =
      (options_.duration_override.count() > 0 && total.count() > 0)
          ? double(options_.duration_override.count()) / total.count()
          : 1.0;

  for (const auto& phase : scenario.phases) {
    auto duration = std::chrono::milliseconds(
        std::max<std::int64_t>(50, std::int64_t(phase.duration.count() *
                                                scale)));
    report.phases.push_back(run_phase(phase, duration));
  }

  const auto snap = overall_.snapshot();
  const auto c = double(report.total_violations());
  obs::SloReport slo;
  slo.results.push_back({"decide_p99_us",
                         obs::slo_kind_name(
                             obs::SloObjective::Kind::kHistogramP99Max),
                         snap.p99 <= options_.p99_budget_us, snap.p99,
                         options_.p99_budget_us,
                         "overall decision latency"});
  slo.results.push_back({"oracle_violations",
                         obs::slo_kind_name(
                             obs::SloObjective::Kind::kCounterAtMost),
                         c <= 0, c, 0, "denied-correctness oracle"});
  const double requests = double(report.total_requests());
  slo.results.push_back({"requests",
                         obs::slo_kind_name(
                             obs::SloObjective::Kind::kCounterAtLeast),
                         requests >= double(options_.min_requests), requests,
                         double(options_.min_requests),
                         "the run actually ran"});
  const double apply_delta =
      double(apply_errors.value() - apply_errors_before);
  slo.results.push_back({"sync_apply_errors",
                         obs::slo_kind_name(
                             obs::SloObjective::Kind::kCounterAtMost),
                         apply_delta <= 0, apply_delta, 0,
                         "replica delta application errors"});
  report.slo = std::move(slo);

  bool phases_ok = true;
  for (const auto& p : report.phases) phases_ok = phases_ok && p.completed;
  report.pass = report.slo.pass() && phases_ok;
  return report;
}

PhaseReport Engine::run_phase(const Phase& phase,
                              std::chrono::milliseconds duration) {
  PhaseReport rep;
  rep.name = phase.name;
  obs::Histogram hist(obs::Histogram::latency_bounds_us());

  const auto start = Clock::now();
  const auto deadline = start + duration;

  // Adversary ticks at evenly spaced interior points of the phase.
  std::vector<Clock::time_point> ticks;
  if (phase.adversary != Adversary::kNone) {
    for (std::size_t t = 1; t <= phase.adversary_ticks; ++t) {
      ticks.push_back(start + duration * t / (phase.adversary_ticks + 1));
    }
  }
  std::size_t next_tick = 0;

  const bool open_loop = phase.open_rate > 0;
  const auto interval =
      open_loop ? std::chrono::nanoseconds(
                      std::int64_t(1e9 / phase.open_rate))
                : std::chrono::nanoseconds(0);
  auto next_send = start;

  const auto activations0 = bridge_->stats().activations;
  const auto deactivations0 = bridge_->stats().deactivations;
  const auto revocations0 = bridge_->stats().revocations;

  while (Clock::now() < deadline) {
    if (next_tick < ticks.size() && Clock::now() >= ticks[next_tick]) {
      run_adversary(phase, rep, next_tick);
      ++next_tick;
      continue;
    }
    if (open_loop) {
      const auto now = Clock::now();
      if (now < next_send) {
        std::this_thread::sleep_until(std::min(next_send, deadline));
        continue;
      }
      next_send += interval;
    }
    one_request(phase, rep, hist);
  }
  // Fire any adversary ticks the clock ran past (keeps flap down/up
  // pairings and per-seed determinism of the adversary sequence).
  for (; next_tick < ticks.size(); ++next_tick) {
    run_adversary(phase, rep, next_tick);
  }

  rep.activations = bridge_->stats().activations - activations0;
  rep.deactivations = bridge_->stats().deactivations - deactivations0;
  rep.revocations = bridge_->stats().revocations - revocations0;

  if (auto s = surface_.settle(options_.settle_timeout); s.ok()) {
    oracle_sweep(rep);
    rep.completed = true;
  } else {
    record_violation(rep, "phase did not settle: " + s.error().message);
    rep.completed = false;
  }

  const auto snap = hist.snapshot();
  rep.decide_p50_us = snap.p50;
  rep.decide_p99_us = snap.p99;
  rep.duration_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start)
          .count();
  return rep;
}

void Engine::one_request(const Phase& phase, PhaseReport& rep,
                         obs::Histogram& hist) {
  auto& metrics = LoadMetrics::get();
  const std::size_t i = zipf_->next();

  if (!bridge_->touched(i)) {
    if (auto s = surface_.on_first_touch(i); !s.ok()) return;
    bridge_->activate(i, 0).ok();  // fails only for revoked principals
  }

  const std::size_t entitlements =
      caps_.single_entitlement ? 1 : bridge_->entitlement_count(i);

  if (!caps_.single_entitlement && !bridge_->is_revoked(i)) {
    if (rng_.chance(phase.activate_prob)) {
      if (bridge_->activate(i, rng_.next_below(entitlements)).ok()) {
        metrics.activations.inc();
      }
    }
    if (rng_.chance(phase.deactivate_prob)) {
      if (bridge_->deactivate(i, rng_.next_below(entitlements)).ok()) {
        metrics.deactivations.inc();
      }
    }
  }

  const bool forbidden = rng_.chance(phase.forbidden_prob);
  const std::size_t e =
      caps_.single_entitlement ? 0 : rng_.next_below(entitlements);
  const std::size_t k = rng_.next_below(2);
  const authz::Request request = bridge_->request_for(i, e, k, forbidden);
  const bool expected = !forbidden && bridge_->expect_permit(i, e);

  const auto t0 = Clock::now();
  const authz::Verdict verdict = surface_.decide(request);
  const double us = us_since(t0);
  hist.observe(us);
  overall_.observe(us);
  metrics.decide_us.observe(us);

  ++rep.requests;
  metrics.requests.inc();
  if (verdict.permitted()) {
    ++rep.permits;
    metrics.permits.inc();
  } else {
    ++rep.denies;
    metrics.denies.inc();
  }

  if (forbidden) {
    // Strict at any time: no epoch of any store ever granted this.
    ++rep.oracle_checks;
    metrics.oracle_checks.inc();
    if (verdict.permitted()) {
      record_violation(rep, "forbidden probe permitted: " + request.user +
                                " " + request.object_type + "/" +
                                request.permission);
    }
  } else if (verdict.permitted() != expected) {
    ++rep.stale;
    metrics.stale.inc();
  }
}

void Engine::record_violation(PhaseReport& rep, const std::string& what) {
  ++rep.oracle_violations;
  LoadMetrics::get().oracle_violations.inc();
  if (rep.violation_samples.size() < options_.max_violation_samples) {
    rep.violation_samples.push_back(what);
  }
}

void Engine::oracle_sweep(PhaseReport& rep) {
  // Settled: every decision point has converged on all admissions, so
  // ground truth is strict for granted actions too.
  const auto& touched = bridge_->touched_order();
  const std::size_t n = std::min(options_.oracle_sample, touched.size());
  // Stride so the sweep covers cold principals too, not just the Zipf
  // head that was touched first.
  const std::size_t stride = std::max<std::size_t>(1, touched.size() / n);
  auto& metrics = LoadMetrics::get();
  std::size_t swept = 0;
  for (std::size_t idx = 0; idx < touched.size() && swept < n;
       idx += stride, ++swept) {
    const std::size_t i = touched[idx];
    const std::size_t entitlements =
        caps_.single_entitlement ? 1 : bridge_->entitlement_count(i);
    for (std::size_t e = 0; e < entitlements; ++e) {
      const bool expected = bridge_->expect_permit(i, e);
      const authz::Verdict verdict =
          surface_.decide(bridge_->request_for(i, e, 0, false));
      ++rep.oracle_checks;
      metrics.oracle_checks.inc();
      if (verdict.permitted() != expected) {
        record_violation(
            rep, std::string("settled mismatch: ") + population_.user(i) +
                     " entitlement " + std::to_string(e) + " expected " +
                     (expected ? "permit" : "deny") + " got " +
                     (verdict.permitted() ? "permit" : "deny"));
      }
    }
    const authz::Verdict probe =
        surface_.decide(bridge_->request_for(i, 0, 0, true));
    ++rep.oracle_checks;
    metrics.oracle_checks.inc();
    if (probe.permitted()) {
      record_violation(rep, "settled forbidden probe permitted: " +
                                population_.user(i));
    }
  }
}

void Engine::run_adversary(const Phase& phase, PhaseReport& rep,
                           std::size_t tick) {
  switch (phase.adversary) {
    case Adversary::kNone:
      break;
    case Adversary::kRevocationStorm:
      adversary_revocation(phase, rep);
      break;
    case Adversary::kDelegationDepth:
      adversary_chain(phase, rep, tick);
      break;
    case Adversary::kReplicaFlap:
      if (caps_.supports_flap && surface_.flap(tick).ok()) ++rep.flaps;
      break;
    case Adversary::kMigrationStorm:
      adversary_migration(rep, tick);
      break;
  }
}

void Engine::adversary_revocation(const Phase& phase, PhaseReport& rep) {
  (void)rep;  // revocations are tallied from bridge stats at phase end
  auto& metrics = LoadMetrics::get();
  // Snapshot the victim pool: revocation does not extend touched_order,
  // but iterating a stable copy keeps the storm's draw sequence
  // independent of container growth mid-loop.
  const std::vector<std::size_t> pool = bridge_->touched_order();
  for (std::size_t i : pool) {
    if (bridge_->is_revoked(i)) continue;
    if (!rng_.chance(phase.adversary_fraction)) continue;
    bridge_->revoke_principal(i);
    metrics.revocations.inc();
  }
}

void Engine::adversary_chain(const Phase& phase, PhaseReport& rep,
                             std::size_t tick) {
  (void)tick;
  if (!caps_.supports_chains) return;
  const std::size_t round = chain_counter_++;
  const std::size_t depth = std::max<std::size_t>(2, phase.chain_depth);

  // Anchor the chain's authority on a fixed role template's grants.
  rbac::RoleInstance anchor{population_.domain_name(0),
                            population_.role_name(0),
                            {}};
  const std::string conditions =
      translate::render_instance_conditions(anchor);
  const auto quoted = [](const std::string& p) { return "\"" + p + "\""; };
  auto link_name = [&](std::size_t j) {
    return "Kchain" + std::to_string(round) + "_" + std::to_string(j);
  };

  std::vector<std::string> link_texts;
  std::string from = bridge_->admin_principal();
  for (std::size_t j = 0; j < depth; ++j) {
    const std::string to = link_name(j);
    auto credential = keynote::AssertionBuilder()
                          .authorizer(quoted(from))
                          .licensees(quoted(to))
                          .comment("delegation link " + std::to_string(j))
                          .conditions(conditions)
                          .build();
    if (!credential.ok()) {
      record_violation(rep, "chain link " + std::to_string(j) +
                                " failed to build");
      return;
    }
    link_texts.push_back(credential->to_text());
    if (!surface_.sink().admit(std::move(credential).take()).ok()) {
      record_violation(rep, "chain link " + std::to_string(j) +
                                " failed to admit");
      return;
    }
    from = to;
  }

  const rbac::PermissionGrant& action =
      population_.granted_action(anchor, 0);
  authz::Request request;
  request.user = "chain" + std::to_string(round);
  request.principal = link_name(depth - 1);
  request.domain = anchor.domain;
  request.role = anchor.role;
  request.object_type = action.object_type;
  request.permission = action.permission;

  auto& metrics = LoadMetrics::get();
  if (!surface_.settle(options_.settle_timeout).ok()) {
    record_violation(rep, "chain admission did not settle");
    return;
  }
  ++rep.chain_queries;
  ++rep.oracle_checks;
  metrics.oracle_checks.inc();
  if (!surface_.decide(request).permitted()) {
    record_violation(rep, "delegation chain depth " +
                              std::to_string(depth) +
                              " denied at the leaf");
  }

  // Cut a middle link: the whole suffix must lose authority.
  surface_.sink().revoke_matching(link_texts[depth / 2]);
  if (!surface_.settle(options_.settle_timeout).ok()) {
    record_violation(rep, "chain cut did not settle");
    return;
  }
  ++rep.chain_queries;
  ++rep.oracle_checks;
  metrics.oracle_checks.inc();
  if (surface_.decide(request).permitted()) {
    record_violation(rep, "cut delegation chain still permitted at the "
                          "leaf");
  }
}

void Engine::adversary_migration(PhaseReport& rep, std::size_t tick) {
  (void)tick;
  const std::size_t round = migration_counter_++;
  const std::string tag = std::to_string(round);

  // A COM+ catalogue with one application/role/user, migrated into an
  // EJB container through the RBAC interlingua — the paper's
  // heterogeneous-migration path, here run *under load*.
  middleware::com::Catalogue source("winY", "MigDomain" + tag);
  source.register_application({"migapp" + tag, "migration probe", {"m"}})
      .ok();
  source.define_role("Staff").ok();
  source.grant("Staff", "migapp" + tag, middleware::com::kAccess).ok();
  source.add_user_to_role("mig_user" + tag, "Staff").ok();
  middleware::ejb::Server target("hostX", "ejbsrv" + tag);
  auto migration = translate::migrate(source, target, {});
  if (!migration.ok()) {
    record_violation(rep, "migration failed: " + migration.error().message);
    return;
  }
  const rbac::Policy& commissioned = migration->commissioned;
  if (commissioned.grants().empty() ||
      commissioned.assignments().empty()) {
    record_violation(rep, "migration commissioned an empty policy");
    return;
  }

  // Admit the migrated policy as its own KeyNote root + credentials.
  translate::OpaqueDirectory directory;
  const std::string admin = "Kmigadmin" + tag;
  auto compiled = translate::compile_policy(commissioned, admin, directory);
  if (!compiled.ok()) {
    record_violation(rep, "migrated policy failed to compile");
    return;
  }
  std::vector<std::string> admitted;
  admitted.push_back(compiled->policy.to_text());
  if (!surface_.sink().admit_policy_text(admitted.back()).ok()) {
    record_violation(rep, "migrated policy root rejected");
    return;
  }
  for (auto& credential : compiled->membership_credentials) {
    admitted.push_back(credential.to_text());
    surface_.sink().admit(std::move(credential)).ok();
  }
  ++rep.migrations;

  // Strict probe derived from the commissioned rows themselves.
  const rbac::PermissionGrant grant = *commissioned.grants().begin();
  const rbac::RoleAssignment assignment =
      *commissioned.assignments().begin();
  authz::Request request;
  request.user = assignment.user;
  request.principal = directory.principal_of(assignment.user);
  request.domain = grant.domain;
  request.role = grant.role;
  request.object_type = grant.object_type;
  request.permission = grant.permission;

  auto& metrics = LoadMetrics::get();
  if (!surface_.settle(options_.settle_timeout).ok()) {
    record_violation(rep, "migration admission did not settle");
    return;
  }
  if (caps_.supports_chains) {  // principal-direct surfaces only
    ++rep.oracle_checks;
    metrics.oracle_checks.inc();
    if (!surface_.decide(request).permitted()) {
      record_violation(rep, "migrated user denied after settle");
    }
  }

  // Retract the migrated policy; the grant must die with it.
  for (const auto& text : admitted) {
    surface_.sink().revoke_matching(text);
  }
  if (!surface_.settle(options_.settle_timeout).ok()) {
    record_violation(rep, "migration retraction did not settle");
    return;
  }
  if (caps_.supports_chains) {
    ++rep.oracle_checks;
    metrics.oracle_checks.inc();
    if (surface_.decide(request).permitted()) {
      record_violation(rep, "retracted migration still permitted");
    }
  }
}

}  // namespace mwsec::load
