#include "load/session_bridge.hpp"

#include "translate/rbac_to_keynote.hpp"

namespace mwsec::load {

SessionBridge::SessionBridge(const Population& population,
                             CredentialSink& sink,
                             SessionBridgeOptions options)
    : population_(population), sink_(sink), options_(std::move(options)),
      policy_(population_.grants()) {
  if (options_.max_active_per_session > 0) {
    cardinality_.set_max_active(options_.max_active_per_session).ok();
  }
  // The manager reads policy_ by reference; the bridge registers
  // assignments lazily from the same (single) driver thread, so the
  // reference stays valid and unraced.
  manager_ = std::make_unique<rbac::SessionManager>(policy_, &sod_,
                                                    &cardinality_);
}

mwsec::Status SessionBridge::install_policy_root() {
  const std::string conditions =
      translate::render_haspermission_conditions(population_.grants());
  auto policy = keynote::AssertionBuilder()
                    .authorizer("POLICY")
                    .licensees("\"" + admin_principal() + "\"")
                    .comment("load harness root: HasPermission relation")
                    .conditions(conditions)
                    .build();
  if (!policy.ok()) return policy.error();
  return sink_.admit_policy_text(policy->to_text());
}

SessionBridge::PState& SessionBridge::ensure(std::size_t i) {
  auto it = states_.find(i);
  if (it != states_.end()) return it->second;
  PState state;
  state.entitlements = population_.entitlements(i);
  if (options_.strip_params) {
    for (auto& e : state.entitlements) e.params.clear();
  }
  state.active.assign(state.entitlements.size(), false);
  population_.register_assignments(i, policy_);
  state.session = manager_->open(population_.user(i));
  it = states_.emplace(i, std::move(state)).first;
  touched_.push_back(i);
  return it->second;
}

std::size_t SessionBridge::entitlement_count(std::size_t i) {
  return ensure(i).entitlements.size();
}

mwsec::Result<keynote::Assertion> SessionBridge::credential_for(
    PState& state, std::size_t i, std::size_t e) {
  return translate::instance_credential(admin_principal(),
                                        population_.principal(i),
                                        state.entitlements[e]);
}

mwsec::Status SessionBridge::activate(std::size_t i, std::size_t e) {
  PState& state = ensure(i);
  if (state.revoked) {
    return Error::make("principal revoked: " + population_.user(i), "load");
  }
  if (e >= state.entitlements.size()) {
    return Error::make("no such entitlement", "load");
  }
  if (state.active[e]) return {};
  if (auto s = manager_->activate(state.session, state.entitlements[e]);
      !s.ok()) {
    const auto& code = s.error().code;
    if (code == rbac::kSessionSod || code == rbac::kSessionCardinality) {
      ++stats_.constraint_rejections;
    }
    return s;
  }
  auto credential = credential_for(state, i, e);
  if (!credential.ok()) return credential.error();
  if (auto s = sink_.admit(std::move(credential).take()); !s.ok()) {
    // Keep session state and admissions in lock-step: back the
    // activation out rather than let the oracle expect a permit the
    // store never learned about.
    manager_->deactivate(state.session, state.entitlements[e]).ok();
    return s;
  }
  state.active[e] = true;
  ++stats_.activations;
  return {};
}

mwsec::Status SessionBridge::deactivate(std::size_t i, std::size_t e) {
  PState& state = ensure(i);
  if (e >= state.entitlements.size()) {
    return Error::make("no such entitlement", "load");
  }
  if (!state.active[e]) return {};
  if (auto s = manager_->deactivate(state.session, state.entitlements[e]);
      !s.ok()) {
    return s;
  }
  auto credential = credential_for(state, i, e);
  if (!credential.ok()) return credential.error();
  sink_.revoke_matching(credential->to_text());
  state.active[e] = false;
  ++stats_.deactivations;
  return {};
}

void SessionBridge::revoke_principal(std::size_t i) {
  PState& state = ensure(i);
  if (state.revoked) return;
  sink_.revoke_by_licensee(population_.principal(i));
  manager_->close(state.session).ok();
  state.session = 0;
  state.active.assign(state.entitlements.size(), false);
  state.revoked = true;
  ++stats_.revocations;
}

void SessionBridge::forgive(std::size_t i) {
  auto it = states_.find(i);
  if (it == states_.end() || !it->second.revoked) return;
  it->second.revoked = false;
  it->second.session = manager_->open(population_.user(i));
}

bool SessionBridge::is_active(std::size_t i, std::size_t e) const {
  auto it = states_.find(i);
  return it != states_.end() && e < it->second.active.size() &&
         it->second.active[e];
}

bool SessionBridge::is_revoked(std::size_t i) const {
  auto it = states_.find(i);
  return it != states_.end() && it->second.revoked;
}

authz::Request SessionBridge::request_for(std::size_t i, std::size_t e,
                                          std::size_t k,
                                          bool forbidden_probe) {
  PState& state = ensure(i);
  const rbac::RoleInstance& instance =
      state.entitlements[e % state.entitlements.size()];
  const rbac::PermissionGrant& action =
      population_.granted_action(instance, k);
  authz::Request request;
  request.user = population_.user(i);
  request.principal = population_.principal(i);
  request.domain = instance.domain;
  request.role = instance.role;
  request.object_type = action.object_type;
  request.permission =
      forbidden_probe ? Population::kForbiddenPermission : action.permission;
  for (const auto& [name, value] : instance.params) {
    request.attributes.emplace_back(translate::instance_param_attr(name),
                                    value);
  }
  return request;
}

}  // namespace mwsec::load
