// The principal population: who exists, what they are entitled to.
//
// A Population is a *lazy* description of up to millions of principals.
// Nothing is materialised per principal at construction — user names,
// principals and entitlements are pure functions of (seed, index),
// recomputed on demand — so memory is O(principals actually touched),
// which is what lets `mwsec-load --principals 1000000` run in a small
// container. Only the role space (the HasPermission relation) is built
// eagerly; it is bounded by domains × roles, not by population size.
//
// The forbidden permission is the oracle's anchor: it appears in no
// HasPermission row, ever, so a request for it must be denied by every
// surface at every epoch — a strict must-deny check that needs no
// convergence reasoning.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "rbac/model.hpp"
#include "rbac/sessions.hpp"

namespace mwsec::load {

struct PopulationOptions {
  std::size_t principals = 10'000;
  /// Role-space shape (bounded; independent of population size).
  std::size_t domains = 8;
  std::size_t roles_per_domain = 4;
  std::size_t object_types = 8;
  /// Role instances each principal may activate.
  std::size_t entitlements_per_principal = 3;
  /// Fraction of entitlements carrying a parameter binding (exercises the
  /// param_* attribute path through translate/ and the decision caches).
  double parameterized_fraction = 0.5;
  std::uint64_t seed = 42;
};

class Population {
 public:
  /// Never granted to anyone: the strict must-deny probe permission.
  static constexpr const char* kForbiddenPermission = "__forbidden";

  explicit Population(PopulationOptions options = {});

  std::size_t size() const { return options_.principals; }
  const PopulationOptions& options() const { return options_; }

  /// "u0000042" — the middleware user name of principal `i`.
  std::string user(std::size_t i) const;
  /// "Ku0000042" — the opaque key principal (translate::OpaqueDirectory).
  std::string principal(std::size_t i) const;

  std::string domain_name(std::size_t d) const;
  std::string role_name(std::size_t r) const;

  /// Principal `i`'s entitlements: distinct parameterized role instances,
  /// a pure function of (seed, i). Always non-empty.
  std::vector<rbac::RoleInstance> entitlements(std::size_t i) const;

  /// The shared HasPermission relation (no UserRole rows).
  const rbac::Policy& grants() const { return grants_; }

  /// Add principal `i`'s UserRole rows to `policy` (idempotent) — the
  /// lazy-registration half of the million-principal contract.
  void register_assignments(std::size_t i, rbac::Policy& policy) const;

  /// The k-th (object_type, permission) the instance's (domain, role)
  /// holds — the action a request exercising this entitlement performs.
  /// k wraps; every (domain, role) has at least one grant.
  const rbac::PermissionGrant& granted_action(
      const rbac::RoleInstance& instance, std::size_t k) const;

 private:
  PopulationOptions options_;
  rbac::Policy grants_;
  /// (domain, role) -> its grant rows, precomputed for the hot path.
  std::map<std::pair<std::string, std::string>,
           std::vector<rbac::PermissionGrant>>
      by_role_;
};

}  // namespace mwsec::load
