// Sessions → credentials: the bridge between RBAC session churn and the
// KeyNote admission path every decision surface actually consults.
//
// Activating a parameterized role instance in an `rbac::SessionManager`
// is, by itself, invisible to a KeyNote store. The bridge closes the
// loop: each successful activation mints the instance's membership
// credential (translate::instance_credential) and admits it through a
// `CredentialSink` — the surface's write side (a direct store, a
// sync::Authority feeding replicas, the authority behind a WebCom
// master). Each deactivation revokes exactly that credential's text.
// Session churn therefore moves the store version, which is precisely
// the cache-invalidation path the workload engine exists to exercise.
//
// The bridge also keeps the oracle's ground truth: which entitlements of
// which principals are active *as far as admissions go*. A surface is
// only required to agree after it has settled (replicas converged);
// mid-flight disagreement is staleness, not a violation.
//
// Single-writer: the engine's driver thread owns the bridge. Surfaces
// read their stores concurrently from serve/scheduler threads; the
// stores themselves are internally synchronised.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "keynote/assertion.hpp"
#include "load/population.hpp"
#include "rbac/constraints.hpp"
#include "rbac/sessions.hpp"
#include "authz/authz.hpp"
#include "util/result.hpp"

namespace mwsec::load {

/// The write side of a decision surface: where policy roots, minted
/// credentials and revocations go. Implemented by each Surface.
class CredentialSink {
 public:
  virtual ~CredentialSink() = default;
  virtual mwsec::Status admit_policy_text(const std::string& text) = 0;
  /// Admit an (unsigned) credential minted by the harness.
  virtual mwsec::Status admit(keynote::Assertion credential) = 0;
  /// Remove assertions textually equal to `text`; count removed.
  virtual std::size_t revoke_matching(const std::string& text) = 0;
  /// Remove every credential licensed to `principal`; count removed.
  virtual std::size_t revoke_by_licensee(const std::string& principal) = 0;
};

struct SessionBridgeOptions {
  /// The administration user whose principal authors every minted
  /// credential (and whom the POLICY root authorises).
  std::string admin_user = "loadadmin";
  /// Per-session active-instance cap (0 = uncapped). Enforced by the
  /// SessionManager's cardinality constraints.
  std::size_t max_active_per_session = 0;
  /// Drop parameter bindings from entitlements (surfaces whose request
  /// path cannot carry param_* attributes — the WebCom scheduler).
  bool strip_params = false;
};

class SessionBridge {
 public:
  SessionBridge(const Population& population, CredentialSink& sink,
                SessionBridgeOptions options = {});

  /// Install the POLICY root: HasPermission compiled over the population's
  /// grants (Figure 5), authorising the admin principal. Call once before
  /// traffic.
  mwsec::Status install_policy_root();

  std::string admin_principal() const { return "K" + options_.admin_user; }

  std::size_t entitlement_count(std::size_t i);

  /// Open principal `i`'s session if needed and activate entitlement `e`.
  /// A fresh activation admits the instance credential through the sink.
  /// No-op success when already active; error when `i` was revoked.
  mwsec::Status activate(std::size_t i, std::size_t e);

  /// Deactivate entitlement `e`: the session drops the instance and the
  /// sink revokes exactly that credential's text.
  mwsec::Status deactivate(std::size_t i, std::size_t e);

  /// Adversary action: revoke every credential licensed to `i` and close
  /// the session. Subsequent activate() calls fail until forgive().
  void revoke_principal(std::size_t i);
  /// Lift a revocation (recovery phases re-admit principals).
  void forgive(std::size_t i);

  bool touched(std::size_t i) const { return states_.count(i) != 0; }
  /// Principals in first-touch order (the revocation storm's victim pool).
  const std::vector<std::size_t>& touched_order() const { return touched_; }

  bool is_active(std::size_t i, std::size_t e) const;
  bool is_revoked(std::size_t i) const;
  /// Oracle ground truth for (i, e) once the surface has settled.
  bool expect_permit(std::size_t i, std::size_t e) const {
    return !is_revoked(i) && is_active(i, e);
  }

  /// Build the decision request principal `i` makes when exercising
  /// entitlement `e` with its k-th granted action. `forbidden_probe`
  /// swaps the permission for Population::kForbiddenPermission — the
  /// strict must-deny request.
  authz::Request request_for(std::size_t i, std::size_t e, std::size_t k,
                             bool forbidden_probe);

  struct Stats {
    std::uint64_t activations = 0;
    std::uint64_t deactivations = 0;
    std::uint64_t revocations = 0;
    std::uint64_t constraint_rejections = 0;  ///< SoD + cardinality denials
  };
  const Stats& stats() const { return stats_; }

 private:
  struct PState {
    rbac::SessionId session = 0;
    std::vector<rbac::RoleInstance> entitlements;
    std::vector<bool> active;
    bool revoked = false;
  };
  PState& ensure(std::size_t i);
  /// The exact credential text entitlement (i, e) admits/revokes.
  mwsec::Result<keynote::Assertion> credential_for(PState& state,
                                                   std::size_t i,
                                                   std::size_t e);

  const Population& population_;
  CredentialSink& sink_;
  SessionBridgeOptions options_;
  rbac::Policy policy_;  ///< grants + lazily registered assignments
  rbac::SodConstraints sod_;
  rbac::CardinalityConstraints cardinality_;
  std::unique_ptr<rbac::SessionManager> manager_;
  std::unordered_map<std::size_t, PState> states_;
  std::vector<std::size_t> touched_;
  Stats stats_;
};

}  // namespace mwsec::load
