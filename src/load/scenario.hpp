// The scripted workload catalogue: named scenarios composed of phases.
//
// A phase is a traffic shape (open-loop fixed rate or closed-loop
// back-to-back), a session-churn mix, and at most one adversary that
// acts at fixed points inside the phase. Scenarios chain phases:
// "revocation-storm" is warmup → storm-under-traffic → recovery, which
// is how the paper's revocation claim ("a revoked principal flips to
// denied without re-attaching anyone") becomes a measured, gated number
// instead of prose.
#pragma once

#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace mwsec::load {

enum class Adversary {
  kNone,
  /// Revoke a fraction of touched principals mid-phase (every credential
  /// by licensee, sessions closed).
  kRevocationStorm,
  /// Build an admin → k1 → … → kN delegation chain, check the leaf is
  /// permitted, cut a middle link, check the leaf is denied — strict
  /// both ways, each after a settle.
  kDelegationDepth,
  /// Take a replica down, keep the traffic up, bring it back (next tick)
  /// and require catch-up. Needs a surface with supports_flap.
  kReplicaFlap,
  /// Run a COM+ → EJB policy migration and admit/retract the migrated
  /// policy through the sink while the main traffic keeps deciding.
  kMigrationStorm,
};

const char* adversary_name(Adversary a);

struct Phase {
  std::string name;
  std::chrono::milliseconds duration{1000};
  /// Requests per second; 0 = closed loop (back-to-back).
  double open_rate = 0;
  /// Per-request chance of activating / deactivating a further
  /// entitlement of the requesting principal (session churn).
  double activate_prob = 0.05;
  double deactivate_prob = 0.02;
  /// Per-request chance the request is the strict must-deny probe.
  double forbidden_prob = 0.2;
  Adversary adversary = Adversary::kNone;
  /// Fraction of touched principals a revocation storm hits per tick.
  double adversary_fraction = 0.25;
  /// How many times the adversary acts, spread evenly across the phase.
  std::size_t adversary_ticks = 1;
  /// Delegation-chain length for kDelegationDepth.
  std::size_t chain_depth = 8;
};

struct Scenario {
  std::string name;
  std::string summary;
  std::vector<Phase> phases;
};

/// The built-in catalogue (steady, session-churn, revocation-storm,
/// delegation-depth, replica-flap, migration-storm).
const std::vector<Scenario>& scenarios();

/// Lookup by name; nullptr when unknown.
const Scenario* find_scenario(const std::string& name);

}  // namespace mwsec::load
