#include "load/scenario.hpp"

namespace mwsec::load {

const char* adversary_name(Adversary a) {
  switch (a) {
    case Adversary::kNone: return "none";
    case Adversary::kRevocationStorm: return "revocation-storm";
    case Adversary::kDelegationDepth: return "delegation-depth";
    case Adversary::kReplicaFlap: return "replica-flap";
    case Adversary::kMigrationStorm: return "migration-storm";
  }
  return "unknown";
}

namespace {

Phase phase(std::string name, int duration_ms, Adversary adversary,
            std::size_t ticks = 1) {
  Phase p;
  p.name = std::move(name);
  p.duration = std::chrono::milliseconds(duration_ms);
  p.adversary = adversary;
  p.adversary_ticks = ticks;
  return p;
}

std::vector<Scenario> build() {
  std::vector<Scenario> all;

  {
    Scenario s;
    s.name = "steady";
    s.summary = "closed-loop traffic, light session churn, no adversary";
    s.phases.push_back(phase("steady", 2000, Adversary::kNone));
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "session-churn";
    s.summary = "aggressive activate/deactivate churn driving store-version "
                "movement and cache invalidation";
    Phase p = phase("churn", 2000, Adversary::kNone);
    p.activate_prob = 0.25;
    p.deactivate_prob = 0.20;
    s.phases.push_back(std::move(p));
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "revocation-storm";
    s.summary = "warmup, then revoke a quarter of touched principals "
                "mid-traffic, then recover";
    s.phases.push_back(phase("warmup", 600, Adversary::kNone));
    Phase storm = phase("storm", 800, Adversary::kRevocationStorm, 2);
    storm.adversary_fraction = 0.25;
    s.phases.push_back(std::move(storm));
    s.phases.push_back(phase("recovery", 600, Adversary::kNone));
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "delegation-depth";
    s.summary = "deep delegation chains built and cut under traffic; the "
                "leaf's verdict must follow the chain strictly";
    Phase p = phase("chains", 2000, Adversary::kDelegationDepth, 3);
    p.chain_depth = 12;
    s.phases.push_back(std::move(p));
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "replica-flap";
    s.summary = "a sync replica flaps (down, then rejoins and catches up) "
                "while decisions keep routing around it";
    // Even tick count: each down-tick is paired with an up-tick, so the
    // phase ends with every replica live and settle() covers them all.
    s.phases.push_back(phase("flap", 2000, Adversary::kReplicaFlap, 4));
    s.phases.push_back(phase("recovery", 500, Adversary::kNone));
    all.push_back(std::move(s));
  }
  {
    Scenario s;
    s.name = "migration-storm";
    s.summary = "COM+ policies migrate to EJB and the migrated rows are "
                "admitted/retracted through the sink under load";
    s.phases.push_back(phase("migrate", 2000, Adversary::kMigrationStorm, 2));
    all.push_back(std::move(s));
  }
  return all;
}

}  // namespace

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> all = build();
  return all;
}

const Scenario* find_scenario(const std::string& name) {
  for (const auto& s : scenarios()) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

}  // namespace mwsec::load
