// The workload engine: drives a scenario's phases against one decision
// surface and reports what happened — latency percentiles, the
// denied-correctness oracle's verdict, and a machine-gated SLO.
//
// One driver thread generates traffic (Zipfian principal popularity,
// open- or closed-loop arrivals, session churn through the
// SessionBridge) while the surface's own threads — replica serve loops,
// the WebCom scheduler, client workers — run concurrently. Adversaries
// fire at fixed points inside a phase; at each phase end the surface
// settles and a strict oracle sweep checks that every sampled
// principal's verdict matches the bridge's ground truth:
//
//   active entitlement        ⇒ permit
//   deactivated / revoked / never activated ⇒ deny
//   forbidden-permission probe ⇒ deny, at any time, settled or not
//
// Mid-traffic mismatches on *granted* actions are counted as staleness
// (eventual consistency in flight), never as violations; a forbidden
// probe that is permitted is a violation no matter when it happens.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "load/population.hpp"
#include "load/scenario.hpp"
#include "load/session_bridge.hpp"
#include "load/surface.hpp"
#include "load/zipf.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "util/result.hpp"

namespace mwsec::load {

struct EngineOptions {
  std::uint64_t seed = 42;
  /// Zipf exponent over principal popularity (0 = uniform).
  double zipf_exponent = 1.0;
  /// When non-zero, the scenario's phase durations are scaled so the
  /// whole run takes about this long.
  std::chrono::milliseconds duration_override{0};
  /// SLO: p99 decision latency budget, microseconds.
  double p99_budget_us = 50'000;
  /// SLO: the run must have decided at least this many requests.
  std::uint64_t min_requests = 100;
  /// Principals swept by the strict oracle at each phase end.
  std::size_t oracle_sample = 128;
  std::chrono::milliseconds settle_timeout{10'000};
  std::size_t max_violation_samples = 5;
  /// Per-session active-instance cap handed to the bridge (0 = uncapped).
  std::size_t max_active_per_session = 0;
};

struct PhaseReport {
  std::string name;
  /// False when the phase could not finish properly (settle timeout);
  /// bench_report surfaces this as an explicit "incomplete" marker.
  bool completed = false;
  std::uint64_t requests = 0;
  std::uint64_t permits = 0;
  std::uint64_t denies = 0;
  /// Mid-traffic verdicts that disagreed with ground truth (allowed:
  /// convergence in flight).
  std::uint64_t stale = 0;
  std::uint64_t oracle_checks = 0;
  std::uint64_t oracle_violations = 0;
  std::uint64_t activations = 0;
  std::uint64_t deactivations = 0;
  std::uint64_t revocations = 0;
  std::uint64_t migrations = 0;
  std::uint64_t flaps = 0;
  std::uint64_t chain_queries = 0;
  double decide_p50_us = 0;
  double decide_p99_us = 0;
  double duration_ms = 0;
  std::vector<std::string> violation_samples;
};

struct RunReport {
  std::string scenario;
  std::string surface;
  std::uint64_t seed = 0;
  std::size_t principals = 0;
  bool pass = false;
  std::vector<PhaseReport> phases;
  obs::SloReport slo;

  std::uint64_t total_requests() const;
  std::uint64_t total_violations() const;
  /// The bench_report/CI artifact (DESIGN.md §15 for the schema).
  std::string to_json() const;
};

class Engine {
 public:
  /// The surface must be started; the population must outlive the engine.
  Engine(Surface& surface, const Population& population,
         EngineOptions options = {});
  ~Engine();

  /// Run every phase. Infrastructure errors (policy root rejected, the
  /// initial settle failing) are Status errors; oracle/SLO failures are
  /// a returned report with pass == false.
  mwsec::Result<RunReport> run(const Scenario& scenario);

  SessionBridge& bridge() { return *bridge_; }

 private:
  PhaseReport run_phase(const Phase& phase,
                        std::chrono::milliseconds duration);
  void one_request(const Phase& phase, PhaseReport& rep,
                   obs::Histogram& hist);
  void run_adversary(const Phase& phase, PhaseReport& rep, std::size_t tick);
  void oracle_sweep(PhaseReport& rep);
  void record_violation(PhaseReport& rep, const std::string& what);

  void adversary_revocation(const Phase& phase, PhaseReport& rep);
  void adversary_chain(const Phase& phase, PhaseReport& rep,
                       std::size_t tick);
  void adversary_migration(PhaseReport& rep, std::size_t tick);

  Surface& surface_;
  const Population& population_;
  EngineOptions options_;
  SurfaceCaps caps_;
  std::size_t effective_principals_;
  std::unique_ptr<SessionBridge> bridge_;
  SplitMix64 rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  obs::Histogram overall_;
  std::size_t chain_counter_ = 0;
  std::size_t migration_counter_ = 0;
};

}  // namespace mwsec::load
