// Deterministic randomness for the workload engine.
//
// Everything the harness draws — principal popularity, churn decisions,
// request mixes, adversary victim sets — comes from these generators, so
// a scenario is a pure function of (seed, options): the same seed replays
// the same million-request run bit-for-bit, on any platform. That is what
// makes an oracle violation reportable ("seed 42, request 1,048,201")
// instead of a flake.
//
// SplitMix64 is the base generator (64-bit state, passes BigCrush for
// our purposes, trivially portable); ZipfGenerator layers a precomputed
// power-law CDF over it so key/action popularity is skewed the way real
// principal traffic is: a handful of hot users dominate, with a long
// cold tail (s ≈ 1 is the classic web-trace exponent).
#pragma once

#include <cstdint>
#include <vector>

namespace mwsec::load {

/// Deterministic 64-bit generator (Steele et al.'s SplitMix64). Identical
/// output across platforms for a given seed — tests assert exact
/// sequences.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1): the top 53 bits, exactly representable.
  double next_double() {
    return double(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform integer in [0, n). n must be positive. Lemire-style scaling
  /// without the rejection step — a bias below 2^-32 for n < 2^32, which
  /// statistics tests cannot see and which stays deterministic.
  std::uint64_t next_below(std::uint64_t n) {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * n) >> 64);
  }

  /// Bernoulli draw.
  bool chance(double p) { return next_double() < p; }

 private:
  std::uint64_t state_;
};

/// Zipfian rank sampler: rank r in [0, n) is drawn with probability
/// proportional to 1 / (r + 1)^s. The CDF is precomputed (8 bytes per
/// item — 8 MB at the million-principal scale) and sampled by binary
/// search, so next() is O(log n) with no floating-point accumulation
/// drift across platforms beyond the deterministic table itself.
class ZipfGenerator {
 public:
  /// `n` items, exponent `s` >= 0 (s == 0 degenerates to uniform).
  ZipfGenerator(std::size_t n, double s, std::uint64_t seed);

  /// The next rank, hot ranks first: rank 0 is the most popular item.
  std::size_t next();

  std::size_t size() const { return cdf_.size(); }
  double exponent() const { return s_; }

  /// Probability mass of `rank` under the precomputed distribution.
  double probability(std::size_t rank) const;

 private:
  double s_;
  std::vector<double> cdf_;  ///< cumulative, cdf_.back() == 1.0
  SplitMix64 rng_;
};

}  // namespace mwsec::load
