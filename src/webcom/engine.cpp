#include "webcom/engine.hpp"

#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <vector>

namespace mwsec::webcom {

namespace {

/// Fire one node given its resolved inputs. Condensed nodes evaporate:
/// the subgraph's entry ports receive the operands and the subgraph is
/// evaluated (recursively, same mode).
mwsec::Result<Value> fire_node(const Graph& graph, NodeId id,
                               const std::vector<Value>& inputs,
                               const OperationRegistry& registry,
                               FiringMode mode, EvalStats* stats);

/// The set of nodes demanded by the exit (control-driven need).
std::set<NodeId> demanded_set(const Graph& graph) {
  std::set<NodeId> needed;
  if (!graph.exit().has_value()) return needed;
  std::deque<NodeId> frontier{*graph.exit()};
  needed.insert(*graph.exit());
  while (!frontier.empty()) {
    NodeId n = frontier.front();
    frontier.pop_front();
    for (const auto& [port, producer] : graph.producers_of(n)) {
      (void)port;
      if (needed.insert(producer).second) frontier.push_back(producer);
    }
  }
  return needed;
}

mwsec::Result<Value> evaluate_impl(const Graph& graph,
                                   const OperationRegistry& registry,
                                   FiringMode mode, EvalStats* stats) {
  if (auto s = graph.validate(); !s.ok()) return s.error();
  auto order = graph.topological_order().take();

  std::set<NodeId> to_fire;
  switch (mode) {
    case FiringMode::kAvailability:
    case FiringMode::kCoercion:
      // Everything fires; coercion fires the demanded spine first (the
      // ordering below) and the rest opportunistically after.
      for (NodeId i = 0; i < graph.nodes().size(); ++i) to_fire.insert(i);
      break;
    case FiringMode::kControl:
      to_fire = demanded_set(graph);
      break;
  }

  std::vector<NodeId> firing_order;
  std::set<NodeId> speculated;  // coercion: failures here are tolerated
  if (mode == FiringMode::kCoercion) {
    // Demanded nodes first (in topological order), then the speculated
    // remainder (also topological).
    auto demanded = demanded_set(graph);
    for (NodeId n : order) {
      if (demanded.count(n)) firing_order.push_back(n);
    }
    for (NodeId n : order) {
      if (!demanded.count(n)) {
        firing_order.push_back(n);
        speculated.insert(n);
      }
    }
  } else {
    for (NodeId n : order) {
      if (to_fire.count(n)) firing_order.push_back(n);
    }
  }

  std::vector<std::optional<Value>> results(graph.nodes().size());
  for (NodeId id : firing_order) {
    const Node& node = graph.nodes()[id];
    std::vector<Value> inputs(node.arity);
    auto producers = graph.producers_of(id);
    bool operand_missing = false;
    for (std::size_t p = 0; p < node.arity && !operand_missing; ++p) {
      auto lit = node.literals.find(p);
      if (lit != node.literals.end()) {
        inputs[p] = lit->second;
      } else {
        auto prod = producers.find(p);
        if (prod == producers.end() || !results[prod->second].has_value()) {
          operand_missing = true;
        } else {
          inputs[p] = *results[prod->second];
        }
      }
    }
    if (operand_missing) {
      // Downstream of a failed speculation: skip quietly; anywhere else it
      // is a structural error.
      if (speculated.count(id)) continue;
      return Error::make("operand missing for node " + node.name, "engine");
    }
    auto value = fire_node(graph, id, inputs, registry, mode, stats);
    if (!value.ok()) {
      // A speculatively-coerced node failing must not poison the demanded
      // result.
      if (speculated.count(id)) continue;
      return value;
    }
    results[id] = std::move(value).take();
  }

  NodeId exit = *graph.exit();
  if (!results[exit].has_value()) {
    return Error::make("exit node did not fire", "engine");
  }
  return *results[exit];
}

mwsec::Result<Value> fire_node(const Graph& graph, NodeId id,
                               const std::vector<Value>& inputs,
                               const OperationRegistry& registry,
                               FiringMode mode, EvalStats* stats) {
  const Node& node = graph.nodes()[id];
  if (stats != nullptr) ++stats->nodes_fired;
  if (node.condensed != nullptr) {
    if (stats != nullptr) ++stats->condensations_evaporated;
    // Evaporate: bind operands to the subgraph's entry ports, which then
    // stop being entries (they are ordinary literal-fed ports now).
    Graph sub = *node.condensed;
    const auto entries = sub.entries();
    for (std::size_t i = 0; i < entries.size() && i < inputs.size(); ++i) {
      if (auto s = sub.set_literal(entries[i].first, entries[i].second,
                                   inputs[i]);
          !s.ok()) {
        return s.error();
      }
    }
    sub.clear_entries();
    return evaluate_impl(sub, registry, mode, stats);
  }
  return registry.invoke(node.operation, inputs);
}

}  // namespace

mwsec::Result<Value> evaluate(const Graph& graph,
                              const OperationRegistry& registry,
                              FiringMode mode, EvalStats* stats) {
  return evaluate_impl(graph, registry, mode, stats);
}

mwsec::Result<Value> evaluate_parallel(const Graph& graph,
                                       const OperationRegistry& registry,
                                       std::size_t workers,
                                       EvalStats* stats) {
  if (workers == 0) workers = 1;
  if (auto s = graph.validate(); !s.ok()) return s.error();

  const std::size_t n = graph.nodes().size();
  // Dependency bookkeeping: remaining unsatisfied operand arcs per node.
  std::vector<std::size_t> missing(n, 0);
  for (const auto& arc : graph.arcs()) ++missing[arc.to];

  std::mutex mu;
  std::condition_variable cv;
  std::deque<NodeId> ready;
  std::vector<std::optional<Value>> results(n);
  std::size_t fired = 0;
  std::size_t condensations = 0;
  std::optional<Error> failure;
  std::size_t completed = 0;
  bool stop = false;  // guarded by mu; jthread stop_token alone cannot
                      // wake a plain condition_variable without a race

  for (NodeId i = 0; i < n; ++i) {
    if (missing[i] == 0) ready.push_back(i);
  }

  auto worker = [&] {
    while (true) {
      NodeId id;
      {
        std::unique_lock lock(mu);
        cv.wait(lock, [&] {
          return !ready.empty() || completed == n || failure.has_value() ||
                 stop;
        });
        if (ready.empty()) return;  // done, failed or stopping
        id = ready.front();
        ready.pop_front();
      }
      const Node& node = graph.nodes()[id];
      std::vector<Value> inputs(node.arity);
      auto producers = graph.producers_of(id);
      bool input_error = false;
      {
        std::scoped_lock lock(mu);
        for (std::size_t p = 0; p < node.arity && !input_error; ++p) {
          auto lit = node.literals.find(p);
          if (lit != node.literals.end()) {
            inputs[p] = lit->second;
          } else {
            auto prod = producers.find(p);
            if (prod == producers.end() ||
                !results[prod->second].has_value()) {
              failure = Error::make("operand missing for " + node.name,
                                    "engine");
              input_error = true;
            } else {
              inputs[p] = *results[prod->second];
            }
          }
        }
      }
      if (input_error) {
        cv.notify_all();
        return;
      }


      EvalStats local_stats;
      auto value = fire_node(graph, id, inputs, registry,
                             FiringMode::kAvailability, &local_stats);
      {
        std::scoped_lock lock(mu);
        fired += local_stats.nodes_fired;
        condensations += local_stats.condensations_evaporated;
        if (!value.ok()) {
          if (!failure.has_value()) failure = value.error();
        } else {
          results[id] = std::move(value).take();
          ++completed;
          for (NodeId consumer : graph.consumers_of(id)) {
            if (--missing[consumer] == 0) ready.push_back(consumer);
          }
        }
      }
      cv.notify_all();
    }
  };

  {
    std::vector<std::jthread> pool;
    pool.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i) pool.emplace_back(worker);
    // Wait for completion or failure, then stop the pool. The stop flag is
    // flipped under the mutex so no worker can miss the wakeup.
    std::unique_lock lock(mu);
    cv.wait(lock, [&] { return completed == n || failure.has_value(); });
    stop = true;
    cv.notify_all();
  }  // jthreads join here (CP.25)

  if (failure.has_value()) return *failure;
  if (stats != nullptr) {
    stats->nodes_fired = fired;
    stats->condensations_evaporated = condensations;
  }
  NodeId exit = *graph.exit();
  if (!results[exit].has_value()) {
    return Error::make("exit node did not fire", "engine");
  }
  return *results[exit];
}

}  // namespace mwsec::webcom
