#include "webcom/messages.hpp"

namespace mwsec::webcom {

util::Bytes TaskMessage::encode() const {
  util::ByteWriter w;
  w.u64(task_id);
  w.str(node_name);
  w.str(operation);
  w.u32(static_cast<std::uint32_t>(inputs.size()));
  for (const auto& v : inputs) w.str(v);
  w.str(target.object_type);
  w.str(target.permission);
  w.str(target.domain);
  w.str(target.role);
  w.str(target.user);
  w.str(master_principal);
  w.str(master_credentials);
  return w.take();
}

mwsec::Result<TaskMessage> TaskMessage::decode(const util::Bytes& payload) {
  util::ByteReader r(payload);
  TaskMessage m;
  auto id = r.u64();
  if (!id.ok()) return id.error();
  m.task_id = *id;
  auto read_str = [&r](std::string& out) -> mwsec::Status {
    auto s = r.str();
    if (!s.ok()) return s.error();
    out = std::move(s).take();
    return {};
  };
  if (auto s = read_str(m.node_name); !s.ok()) return s.error();
  if (auto s = read_str(m.operation); !s.ok()) return s.error();
  auto count = r.u32();
  if (!count.ok()) return count.error();
  m.inputs.resize(*count);
  for (auto& v : m.inputs) {
    if (auto s = read_str(v); !s.ok()) return s.error();
  }
  if (auto s = read_str(m.target.object_type); !s.ok()) return s.error();
  if (auto s = read_str(m.target.permission); !s.ok()) return s.error();
  if (auto s = read_str(m.target.domain); !s.ok()) return s.error();
  if (auto s = read_str(m.target.role); !s.ok()) return s.error();
  if (auto s = read_str(m.target.user); !s.ok()) return s.error();
  if (auto s = read_str(m.master_principal); !s.ok()) return s.error();
  if (auto s = read_str(m.master_credentials); !s.ok()) return s.error();
  if (!r.exhausted()) return Error::make("trailing bytes in task", "wire");
  return m;
}

util::Bytes TaskResultMessage::encode() const {
  util::ByteWriter w;
  w.u64(task_id);
  w.u8(ok ? 1 : 0);
  w.str(value);
  w.str(code);
  return w.take();
}

mwsec::Result<TaskResultMessage> TaskResultMessage::decode(
    const util::Bytes& payload) {
  util::ByteReader r(payload);
  TaskResultMessage m;
  auto id = r.u64();
  if (!id.ok()) return id.error();
  m.task_id = *id;
  auto ok = r.u8();
  if (!ok.ok()) return ok.error();
  m.ok = *ok != 0;
  auto value = r.str();
  if (!value.ok()) return value.error();
  m.value = std::move(value).take();
  auto code = r.str();
  if (!code.ok()) return code.error();
  m.code = std::move(code).take();
  if (!r.exhausted()) return Error::make("trailing bytes in result", "wire");
  return m;
}

}  // namespace mwsec::webcom
