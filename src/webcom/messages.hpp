// Wire formats for the master <-> client protocol (Figure 3). Tasks carry
// the node's operation, operand values, the Section 6 security context and
// the master's credential bundle so the *client* can, symmetrically,
// decide whether it trusts the master to schedule to it.
#pragma once

#include <string>
#include <vector>

#include "util/byte_buffer.hpp"
#include "util/result.hpp"
#include "webcom/graph.hpp"

namespace mwsec::webcom {

inline constexpr const char* kSubjectTask = "task";
inline constexpr const char* kSubjectTaskResult = "task-result";

struct TaskMessage {
  std::uint64_t task_id = 0;
  std::string node_name;
  std::string operation;
  std::vector<Value> inputs;
  SecurityTarget target;          // ObjectType/Permission/Domain/Role/User
  std::string master_principal;   // who claims to schedule this
  std::string master_credentials; // assertion bundle text (may be empty)

  util::Bytes encode() const;
  static mwsec::Result<TaskMessage> decode(const util::Bytes& payload);
};

struct TaskResultMessage {
  std::uint64_t task_id = 0;
  bool ok = false;
  std::string value;  // result on success, diagnostic on failure
  std::string code;   // error code ("denied", "ops", ...) when !ok

  util::Bytes encode() const;
  static mwsec::Result<TaskResultMessage> decode(const util::Bytes& payload);
};

}  // namespace mwsec::webcom
