// Condensed-graph wire format: serialise a Graph (recursively, including
// condensed subgraphs, literals, security targets, entries and exit) so
// applications can be stored or shipped to a remote WebCom master — the
// paper's applications are *defined* by their condensed graph, so the
// graph is the deployable artefact.
#pragma once

#include "util/byte_buffer.hpp"
#include "util/result.hpp"
#include "webcom/graph.hpp"

namespace mwsec::webcom {

util::Bytes encode_graph(const Graph& graph);
mwsec::Result<Graph> decode_graph(const util::Bytes& payload);

/// Structural equality of two graphs (nodes, arcs, literals, targets,
/// entries, exit — condensed subgraphs compared recursively).
bool graphs_equal(const Graph& a, const Graph& b);

}  // namespace mwsec::webcom
