// Operation registry: maps node operation names to executable functions.
// Each WebCom client owns a registry — this is where middleware components
// (ORB invocations, bean methods, COM calls) are bound as schedulable
// operations. A set of built-in string/arithmetic operations supports the
// examples and benchmarks.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/result.hpp"
#include "webcom/graph.hpp"

namespace mwsec::webcom {

using Operation =
    std::function<mwsec::Result<Value>(const std::vector<Value>& inputs)>;

class OperationRegistry {
 public:
  void add(std::string name, Operation op);
  bool has(const std::string& name) const;
  mwsec::Result<Value> invoke(const std::string& name,
                              const std::vector<Value>& inputs) const;
  std::vector<std::string> names() const;

  /// Registry preloaded with the built-ins:
  ///   const(x)        — identity (constants)
  ///   concat(a,b,...) — string concatenation
  ///   add/sub/mul(a,b)— integer arithmetic
  ///   sum(a,...)      — integer sum
  ///   upper(a)        — ASCII upper-case
  ///   len(a)          — string length
  ///   if(c,t,f)       — c == "true" ? t : f
  ///   sha.hex(a)      — SHA-256 hex digest (a genuinely costly op for
  ///                     benchmarking scheduling overheads)
  static OperationRegistry with_builtins();

 private:
  // Behind unique_ptr so registries are movable (clients take one by
  // value); see the middleware simulators for the same idiom.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::map<std::string, Operation> ops_;
};

}  // namespace mwsec::webcom
