// Condensed graphs (Morrison [21]): the application model WebCom executes.
//
// An application is a directed graph of operator nodes. A node carries an
// operation name and a fixed arity of operand ports; arcs connect node
// results to operand ports. A *condensed* node encapsulates an entire
// subgraph behind an ordinary node interface — evaluating it "evaporates"
// the condensation (Morrison's terminology), binding the operands to the
// subgraph's entry ports. The three firing disciplines the thesis unifies
// are selected at evaluation time (engine.hpp): availability-driven
// (fire when operands arrive), control-driven (fire only what the exit
// node transitively demands) and coercion-driven (demand first, speculate
// on the rest).
//
// Nodes also carry the Section 6 security annotations: the middleware
// component they stand for (ObjectType + Permission) and an optional —
// possibly partial — (Domain, Role, User) placement constraint the secure
// scheduler must honour.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mwsec::webcom {

using Value = std::string;
using NodeId = std::size_t;

/// Section 6 placement constraint. Empty fields are unconstrained
/// ("partial specification is also supported").
struct SecurityTarget {
  std::string object_type;  ///< RBAC ObjectType of the component
  std::string permission;   ///< RBAC Permission required to execute it
  std::string domain;       ///< required execution domain ("" = any)
  std::string role;         ///< required role ("" = any)
  std::string user;         ///< required user ("" = any)

  bool constrained() const {
    return !object_type.empty() || !permission.empty() || !domain.empty() ||
           !role.empty() || !user.empty();
  }
};

class Graph;

struct Node {
  std::string name;
  std::string operation;           ///< operation name, resolved by clients
  std::size_t arity = 0;
  std::optional<SecurityTarget> target;
  /// Literal operand values (port -> value); ports without a literal must
  /// be fed by an arc.
  std::map<std::size_t, Value> literals;
  /// Condensed node: the encapsulated subgraph (operation is ignored).
  std::shared_ptr<const Graph> condensed;
};

struct Arc {
  NodeId from;
  NodeId to;
  std::size_t port;
};

class Graph {
 public:
  /// Add an operator node.
  NodeId add_node(std::string name, std::string operation, std::size_t arity);
  /// Add a 0-ary node producing a constant.
  NodeId add_constant(std::string name, Value value);
  /// Add a condensed node encapsulating `subgraph` (its entry ports are
  /// the subgraph's `entry_nodes`, one port per entry, in order).
  NodeId add_condensed(std::string name, Graph subgraph);

  /// Feed node `to`'s operand `port` from node `from`'s result.
  mwsec::Status connect(NodeId from, NodeId to, std::size_t port);
  /// Bind a literal operand.
  mwsec::Status set_literal(NodeId node, std::size_t port, Value value);
  /// Attach the Section 6 security annotation.
  mwsec::Status set_target(NodeId node, SecurityTarget target);
  /// Designate the node whose value is the graph's result (the X node of
  /// a condensed graph).
  mwsec::Status set_exit(NodeId node);

  /// Entry ports of a condensed graph: `port` of `node` is fed by the
  /// enclosing graph's arc into the condensed node's same-index port.
  mwsec::Status add_entry(NodeId node, std::size_t port);
  /// Forget the entry registrations — used when evaporating a
  /// condensation, after each entry port has been bound to a literal.
  void clear_entries() { entries_.clear(); }

  /// Structural checks: every port bound exactly once, arcs in range,
  /// exit designated, graph acyclic.
  mwsec::Status validate() const;

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Arc>& arcs() const { return arcs_; }
  std::optional<NodeId> exit() const { return exit_; }
  const std::vector<std::pair<NodeId, std::size_t>>& entries() const {
    return entries_;
  }

  /// Arcs feeding each node, grouped: port -> producer.
  std::map<std::size_t, NodeId> producers_of(NodeId node) const;
  /// Nodes consuming a node's result.
  std::vector<NodeId> consumers_of(NodeId node) const;

  /// Topological order; error if cyclic.
  mwsec::Result<std::vector<NodeId>> topological_order() const;

 private:
  std::vector<Node> nodes_;
  std::vector<Arc> arcs_;
  std::optional<NodeId> exit_;
  std::vector<std::pair<NodeId, std::size_t>> entries_;
};

}  // namespace mwsec::webcom
