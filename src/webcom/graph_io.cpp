#include "webcom/graph_io.hpp"

namespace mwsec::webcom {

namespace {

constexpr std::uint8_t kFormatVersion = 1;

void encode_target(util::ByteWriter& w, const SecurityTarget& t) {
  w.str(t.object_type);
  w.str(t.permission);
  w.str(t.domain);
  w.str(t.role);
  w.str(t.user);
}

mwsec::Result<SecurityTarget> decode_target(util::ByteReader& r) {
  SecurityTarget t;
  for (std::string* field :
       {&t.object_type, &t.permission, &t.domain, &t.role, &t.user}) {
    auto s = r.str();
    if (!s.ok()) return s.error();
    *field = std::move(s).take();
  }
  return t;
}

void encode_into(util::ByteWriter& w, const Graph& g) {
  w.u32(static_cast<std::uint32_t>(g.nodes().size()));
  for (const auto& node : g.nodes()) {
    w.str(node.name);
    w.str(node.operation);
    w.u32(static_cast<std::uint32_t>(node.arity));
    w.u8(node.target.has_value() ? 1 : 0);
    if (node.target.has_value()) encode_target(w, *node.target);
    w.u32(static_cast<std::uint32_t>(node.literals.size()));
    for (const auto& [port, value] : node.literals) {
      w.u32(static_cast<std::uint32_t>(port));
      w.str(value);
    }
    w.u8(node.condensed != nullptr ? 1 : 0);
    if (node.condensed != nullptr) encode_into(w, *node.condensed);
  }
  w.u32(static_cast<std::uint32_t>(g.arcs().size()));
  for (const auto& arc : g.arcs()) {
    w.u32(static_cast<std::uint32_t>(arc.from));
    w.u32(static_cast<std::uint32_t>(arc.to));
    w.u32(static_cast<std::uint32_t>(arc.port));
  }
  w.u8(g.exit().has_value() ? 1 : 0);
  if (g.exit().has_value()) w.u32(static_cast<std::uint32_t>(*g.exit()));
  w.u32(static_cast<std::uint32_t>(g.entries().size()));
  for (const auto& [node, port] : g.entries()) {
    w.u32(static_cast<std::uint32_t>(node));
    w.u32(static_cast<std::uint32_t>(port));
  }
}

mwsec::Result<Graph> decode_from(util::ByteReader& r, int depth) {
  if (depth > 32) {
    return Error::make("condensation nesting too deep", "wire");
  }
  Graph g;
  auto node_count = r.u32();
  if (!node_count.ok()) return node_count.error();
  for (std::uint32_t i = 0; i < *node_count; ++i) {
    auto name = r.str();
    if (!name.ok()) return name.error();
    auto operation = r.str();
    if (!operation.ok()) return operation.error();
    auto arity = r.u32();
    if (!arity.ok()) return arity.error();

    auto has_target = r.u8();
    if (!has_target.ok()) return has_target.error();
    std::optional<SecurityTarget> target;
    if (*has_target != 0) {
      auto t = decode_target(r);
      if (!t.ok()) return t.error();
      target = std::move(t).take();
    }

    auto literal_count = r.u32();
    if (!literal_count.ok()) return literal_count.error();
    std::map<std::size_t, Value> literals;
    for (std::uint32_t l = 0; l < *literal_count; ++l) {
      auto port = r.u32();
      if (!port.ok()) return port.error();
      auto value = r.str();
      if (!value.ok()) return value.error();
      literals[*port] = std::move(value).take();
    }

    auto has_condensed = r.u8();
    if (!has_condensed.ok()) return has_condensed.error();

    NodeId id;
    if (*has_condensed != 0) {
      auto sub = decode_from(r, depth + 1);
      if (!sub.ok()) return sub;
      id = g.add_condensed(std::move(name).take(), std::move(sub).take());
      if (g.nodes()[id].arity != *arity) {
        return Error::make("condensed node arity mismatch", "wire");
      }
    } else {
      id = g.add_node(std::move(name).take(), std::move(operation).take(),
                      *arity);
    }
    if (target.has_value()) {
      if (auto s = g.set_target(id, *target); !s.ok()) return s.error();
    }
    for (auto& [port, value] : literals) {
      if (auto s = g.set_literal(id, port, std::move(value)); !s.ok()) {
        return s.error();
      }
    }
  }

  auto arc_count = r.u32();
  if (!arc_count.ok()) return arc_count.error();
  for (std::uint32_t i = 0; i < *arc_count; ++i) {
    auto from = r.u32();
    if (!from.ok()) return from.error();
    auto to = r.u32();
    if (!to.ok()) return to.error();
    auto port = r.u32();
    if (!port.ok()) return port.error();
    if (auto s = g.connect(*from, *to, *port); !s.ok()) return s.error();
  }

  auto has_exit = r.u8();
  if (!has_exit.ok()) return has_exit.error();
  if (*has_exit != 0) {
    auto exit = r.u32();
    if (!exit.ok()) return exit.error();
    if (auto s = g.set_exit(*exit); !s.ok()) return s.error();
  }
  auto entry_count = r.u32();
  if (!entry_count.ok()) return entry_count.error();
  for (std::uint32_t i = 0; i < *entry_count; ++i) {
    auto node = r.u32();
    if (!node.ok()) return node.error();
    auto port = r.u32();
    if (!port.ok()) return port.error();
    if (auto s = g.add_entry(*node, *port); !s.ok()) return s.error();
  }
  return g;
}

}  // namespace

util::Bytes encode_graph(const Graph& graph) {
  util::ByteWriter w;
  w.u8(kFormatVersion);
  encode_into(w, graph);
  return w.take();
}

mwsec::Result<Graph> decode_graph(const util::Bytes& payload) {
  util::ByteReader r(payload);
  auto version = r.u8();
  if (!version.ok()) return version.error();
  if (*version != kFormatVersion) {
    return Error::make("unsupported graph format version " +
                           std::to_string(*version),
                       "wire");
  }
  auto g = decode_from(r, 0);
  if (!g.ok()) return g;
  if (!r.exhausted()) return Error::make("trailing bytes in graph", "wire");
  return g;
}

bool graphs_equal(const Graph& a, const Graph& b) {
  if (a.nodes().size() != b.nodes().size() ||
      a.arcs().size() != b.arcs().size() || a.exit() != b.exit() ||
      a.entries() != b.entries()) {
    return false;
  }
  for (std::size_t i = 0; i < a.nodes().size(); ++i) {
    const Node& na = a.nodes()[i];
    const Node& nb = b.nodes()[i];
    if (na.name != nb.name || na.operation != nb.operation ||
        na.arity != nb.arity || na.literals != nb.literals) {
      return false;
    }
    const bool ta = na.target.has_value(), tb = nb.target.has_value();
    if (ta != tb) return false;
    if (ta && (na.target->object_type != nb.target->object_type ||
               na.target->permission != nb.target->permission ||
               na.target->domain != nb.target->domain ||
               na.target->role != nb.target->role ||
               na.target->user != nb.target->user)) {
      return false;
    }
    const bool ca = na.condensed != nullptr, cb = nb.condensed != nullptr;
    if (ca != cb) return false;
    if (ca && !graphs_equal(*na.condensed, *nb.condensed)) return false;
  }
  for (std::size_t i = 0; i < a.arcs().size(); ++i) {
    if (a.arcs()[i].from != b.arcs()[i].from ||
        a.arcs()[i].to != b.arcs()[i].to ||
        a.arcs()[i].port != b.arcs()[i].port) {
      return false;
    }
  }
  return true;
}

}  // namespace mwsec::webcom
