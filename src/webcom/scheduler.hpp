// The Secure WebCom master/client scheduler (paper §4, Figure 3; §6).
//
// The master walks a condensed graph and farms fireable nodes out to
// attached clients over the simulated network. With security enabled the
// scheduling decision is mediated twice, exactly as Figure 3 draws it:
//
//   master side: the client's credentials must authorise it (via the
//     master's KeyNote store) to execute the component — attributes
//     app_domain/ObjectType/Permission/Domain/Role — and the client's
//     registered (domain, role, user) must match the node's possibly
//     partial Section 6 placement constraint;
//   client side: the client authenticates the master and uses the
//     master's credentials to decide whether it is willing to execute the
//     operation scheduled to it.
//
// Fault tolerance: a task that times out (dead client, partitioned link,
// lost message) is re-scheduled on another eligible client; the dead
// client is quarantined.
//
// Concurrency (DESIGN.md §12): with MasterOptions::workers > 1 the master
// runs `execute` as a sequence of *waves*. Each wave drains the ready
// queue and alternates parallel phases (candidate filtering +
// authorisation against immutable RCU store snapshots; task encoding and
// network sends) with short serial phases (client assignment, inflight
// bookkeeping) on the calling thread. Scheduling semantics are identical
// to the serial path: one decision per (client, target, store version),
// deferral-when-busy still skips authorisation, and denial/quarantine/
// retry behave as in the paper. workers <= 1 is byte-for-byte the serial
// PR-6 scheduler.
#pragma once

#include <atomic>
#include <chrono>
#include <map>
#include <optional>
#include <thread>

#include "authz/caching.hpp"
#include "authz/keynote_authorizer.hpp"
#include "crypto/keys.hpp"
#include "keynote/compiled_store.hpp"
#include "net/transport.hpp"
#include "obs/trace.hpp"
#include "sync/replica.hpp"
#include "util/task_pool.hpp"
#include "webcom/engine.hpp"
#include "webcom/messages.hpp"

namespace mwsec::webcom {

/// What the master knows about an attached client.
struct ClientInfo {
  std::string endpoint;   ///< network name
  std::string principal;  ///< the client's key
  /// Credentials the client presented at attach time (verified and kept
  /// in the master's store for scheduling queries).
  std::vector<keynote::Assertion> credentials;
  /// The (domain, role, user) this client executes as (Section 6).
  std::string domain;
  std::string role;
  std::string user;
};

struct MasterOptions {
  bool security_enabled = true;
  std::chrono::milliseconds task_timeout{200};
  int max_attempts = 3;  ///< per node, across clients
  /// Scheduler worker threads. 0 or 1 = fully serial execute() on the
  /// calling thread (the paper-exact path). N > 1 = an N-thread TaskPool
  /// drives wave-parallel eligibility checks + dispatch and the decision
  /// cache's shared-nothing batch fan-out.
  std::size_t workers = 0;
};

struct MasterStats {
  std::uint64_t tasks_dispatched = 0;
  std::uint64_t tasks_completed = 0;
  std::uint64_t tasks_denied_by_master = 0;  // no eligible client
  std::uint64_t tasks_denied_by_client = 0;
  std::uint64_t tasks_timed_out = 0;
  /// Derived from the unified decision cache (authz::CachingAuthorizer)
  /// rather than counted a second time by the scheduler.
  std::uint64_t keynote_queries = 0;  // actual store queries (cache misses)
  std::uint64_t decision_cache_hits = 0;
};

class Master {
 public:
  /// `identity` signs nothing by itself but is the principal clients see;
  /// `credentials` are shipped with each task so clients can verify the
  /// master's authority.
  Master(net::Transport& network, const std::string& endpoint_name,
         const crypto::Identity& identity, MasterOptions options = {});

  /// The master's trust root: policies trusting client keys. Compiled:
  /// credential signatures are checked once at admission and queries run
  /// against a cached compiled snapshot.
  keynote::CompiledStore& store() { return store_; }
  /// Credentials shipped to clients with every task.
  void set_outbound_credentials(std::string bundle_text);

  /// Turn the master's trust root into a live replica of a
  /// `sync::Authority`: delegations and revocations published there apply
  /// to store() mid-run, the store version moves with each delta, and the
  /// decision cache invalidates — a revoked client flips to denied on the
  /// next scheduling round without re-attaching anyone.
  mwsec::Status subscribe_policy(const std::string& authority_endpoint,
                                 sync::Replica::Options options = {});
  /// The live replica feeding store(), when subscribed.
  const sync::Replica* policy_replica() const { return replica_.get(); }

  mwsec::Status attach_client(ClientInfo info);
  std::size_t client_count() const { return clients_.size(); }

  /// Execute a validated graph across the attached clients. Runs on the
  /// calling thread until the exit value is produced or the graph fails.
  mwsec::Result<Value> execute(const Graph& graph);

  /// Lifecycle counters, with the query/cache columns derived from the
  /// unified decision cache at read time (no double bookkeeping).
  MasterStats stats() const;

  /// The unified decision cache fronting the KeyNote store.
  const authz::CachingAuthorizer& authorizer() const { return authz_; }

  /// Worker threads driving execute(); 0 when the master is serial.
  std::size_t workers() const { return pool_ ? pool_->size() : 0; }

 private:
  struct Pending {
    NodeId node;
    std::string client_endpoint;
    std::chrono::steady_clock::time_point deadline;
    int attempts;
    /// Open span covering this dispatch, finished when the task
    /// completes, is denied, or times out. Inert when tracing is off.
    obs::Span span;
  };

  /// Does `client` satisfy the node's (possibly partial) Section 6
  /// placement constraint?
  bool placement_ok(const ClientInfo& client, const Node& node) const;

  /// Does scheduling `node` require a trust-management decision?
  bool needs_authorisation(const Node& node) const;

  /// The authz request for scheduling `target` onto `client`.
  authz::Request scheduling_request(const ClientInfo& client,
                                    const SecurityTarget& target) const;

  net::Transport& network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  const crypto::Identity& identity_;
  MasterOptions options_;
  keynote::CompiledStore store_;
  /// KeyNote over `store_`, behind the sharded version-keyed decision
  /// cache: a scheduling decision is a pure function of the request
  /// fields and the store version, so `execute` answers repeats from the
  /// cache instead of paying a KeyNote query per (client, node) pair.
  /// Store mutations (attach_client admitting credentials, policy edits
  /// through store()) move the version and invalidate.
  authz::KeyNoteAuthorizer keynote_authz_{store_};
  /// Declared before authz_: the cache's batch fan-out borrows the pool,
  /// so the pool must be constructed first and destroyed last.
  std::unique_ptr<util::TaskPool> pool_;
  authz::CachingAuthorizer authz_;
  std::string outbound_credentials_;
  std::unique_ptr<sync::Replica> replica_;
  std::vector<ClientInfo> clients_;
  std::map<std::string, bool> client_alive_;

  /// Counter twin of MasterStats: relaxed atomics, so the parallel wave
  /// phases (and anything else off the control thread) can bump them
  /// without a lock; stats() snapshots and derives the cache columns.
  struct AtomicMasterStats {
    std::atomic<std::uint64_t> tasks_dispatched{0};
    std::atomic<std::uint64_t> tasks_completed{0};
    std::atomic<std::uint64_t> tasks_denied_by_master{0};
    std::atomic<std::uint64_t> tasks_denied_by_client{0};
    std::atomic<std::uint64_t> tasks_timed_out{0};
  };
  mutable AtomicMasterStats stats_;
  std::atomic<std::uint64_t> next_task_id_{1};
};

struct ClientOptions {
  bool security_enabled = true;
  /// How the client executes: its own (domain, role, user) identity.
  std::string domain;
  std::string role;
  std::string user;
};

struct ClientStats {
  std::uint64_t tasks_executed = 0;
  std::uint64_t tasks_rejected = 0;  // master not authorised
  std::uint64_t tasks_failed = 0;    // operation errors
};

/// A WebCom client: a worker thread serving tasks from its endpoint.
class Client {
 public:
  Client(net::Transport& network, const std::string& endpoint_name,
         const crypto::Identity& identity, OperationRegistry registry,
         ClientOptions options = {});
  ~Client();

  /// The client's trust root: policies trusting master keys to schedule.
  keynote::CompiledStore& store() { return store_; }

  /// Subscribe the client's trust root to a policy authority at attach
  /// time, replacing the one-shot per-task credential bundle: the master
  /// ships no `master_credentials`, and the client's willingness to serve
  /// it follows the replicated store live — including mid-run revocation
  /// of the master's authority.
  mwsec::Status subscribe_policy(const std::string& authority_endpoint,
                                 sync::Replica::Options options = {});
  const sync::Replica* policy_replica() const { return replica_.get(); }

  const std::string& endpoint_name() const { return endpoint_name_; }
  const std::string& principal() const { return identity_.principal(); }

  /// Start serving tasks on a background thread.
  mwsec::Status start();
  void stop();

  ClientStats stats() const;

 private:
  void serve(std::stop_token st);
  /// Would the client execute this task? KeyNote over the client's own
  /// trust root plus the master's presented credentials (verified per
  /// task — presented bundles bypass any cache by design).
  authz::Verdict authorise_master(const TaskMessage& task);

  net::Transport& network_;
  std::string endpoint_name_;
  const crypto::Identity& identity_;
  OperationRegistry registry_;
  ClientOptions options_;
  keynote::CompiledStore store_;
  authz::KeyNoteAuthorizer authz_{store_};
  std::unique_ptr<sync::Replica> replica_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::jthread thread_;
  mutable std::mutex stats_mu_;
  ClientStats stats_;
};

}  // namespace mwsec::webcom
