#include "webcom/flatten.hpp"

namespace mwsec::webcom {

bool has_condensations(const Graph& graph) {
  for (const auto& node : graph.nodes()) {
    if (node.condensed != nullptr) return true;
  }
  return false;
}

namespace {

/// Copy a regular node into `out`, returning its new id.
NodeId copy_node(Graph& out, const Node& node, const std::string& prefix) {
  NodeId id = out.add_node(prefix + node.name, node.operation, node.arity);
  for (const auto& [port, value] : node.literals) {
    out.set_literal(id, port, value).ok();
  }
  if (node.target.has_value()) out.set_target(id, *node.target).ok();
  return id;
}

struct Spliced {
  /// For each source node: the out-node producing its result.
  std::vector<NodeId> result_of;
  /// For each source node: where each of its input ports lands in `out`
  /// (condensed nodes remap ports onto subgraph entries).
  std::vector<std::vector<std::pair<NodeId, std::size_t>>> port_of;
};

mwsec::Result<Spliced> splice(Graph& out, const Graph& src,
                              const std::string& prefix,
                              const std::optional<SecurityTarget>& inherited) {
  Spliced map;
  map.result_of.resize(src.nodes().size());
  map.port_of.resize(src.nodes().size());

  for (NodeId i = 0; i < src.nodes().size(); ++i) {
    const Node& node = src.nodes()[i];
    if (node.condensed == nullptr) {
      NodeId id = copy_node(out, node, prefix);
      // Inherit the enclosing condensation's placement when the node has
      // none of its own.
      if (!node.target.has_value() && inherited.has_value()) {
        out.set_target(id, *inherited).ok();
      }
      map.result_of[i] = id;
      map.port_of[i].reserve(node.arity);
      for (std::size_t p = 0; p < node.arity; ++p) {
        map.port_of[i].emplace_back(id, p);
      }
      continue;
    }

    // Condensed node: splice the subgraph recursively.
    const Graph& sub = *node.condensed;
    std::optional<SecurityTarget> sub_inherited =
        node.target.has_value() ? node.target : inherited;
    auto inner = splice(out, sub, prefix + node.name + "/", sub_inherited);
    if (!inner.ok()) return inner;

    // Internal arcs of the subgraph.
    for (const auto& arc : sub.arcs()) {
      auto [to_node, to_port] = inner->port_of[arc.to][arc.port];
      if (auto s = out.connect(inner->result_of[arc.from], to_node, to_port);
          !s.ok()) {
        return s.error();
      }
    }

    // The condensed node's input ports become the subgraph's entries.
    const auto& entries = sub.entries();
    if (entries.size() != node.arity) {
      return Error::make("condensed node " + node.name + " arity " +
                             std::to_string(node.arity) + " != " +
                             std::to_string(entries.size()) + " entries",
                         "flatten");
    }
    map.port_of[i].reserve(entries.size());
    for (const auto& [entry_node, entry_port] : entries) {
      map.port_of[i].push_back(inner->port_of[entry_node][entry_port]);
    }
    // Literals bound directly on the condensed node's ports feed the
    // entry ports.
    for (const auto& [port, value] : node.literals) {
      auto [to_node, to_port] = map.port_of[i][port];
      if (auto s = out.set_literal(to_node, to_port, value); !s.ok()) {
        return s.error();
      }
    }

    if (!sub.exit().has_value()) {
      return Error::make("condensed node " + node.name + " has no exit",
                         "flatten");
    }
    map.result_of[i] = inner->result_of[*sub.exit()];
  }
  return map;
}

}  // namespace

mwsec::Result<Graph> flatten(const Graph& graph) {
  if (auto s = graph.validate(); !s.ok()) return s.error();

  Graph out;
  auto map = splice(out, graph, "", std::nullopt);
  if (!map.ok()) return map.error();

  for (const auto& arc : graph.arcs()) {
    auto [to_node, to_port] = map->port_of[arc.to][arc.port];
    if (auto s = out.connect(map->result_of[arc.from], to_node, to_port);
        !s.ok()) {
      return s.error();
    }
  }
  if (auto s = out.set_exit(map->result_of[*graph.exit()]); !s.ok()) {
    return s.error();
  }
  for (const auto& [entry_node, entry_port] : graph.entries()) {
    auto [to_node, to_port] = map->port_of[entry_node][entry_port];
    if (auto s = out.add_entry(to_node, to_port); !s.ok()) return s.error();
  }
  if (auto s = out.validate(); !s.ok()) {
    return Error::make("flattening produced an invalid graph: " +
                           s.error().message,
                       "flatten");
  }
  return out;
}

}  // namespace mwsec::webcom
