#include "webcom/scheduler.hpp"

#include "webcom/flatten.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mwsec::webcom {

namespace {

/// Scheduler lifecycle counters. Mirrors MasterStats (which stays per
/// master) as process-wide metrics, plus client-side outcomes.
struct WebcomMetrics {
  obs::Counter& tasks_dispatched;
  obs::Counter& tasks_completed;
  obs::Counter& tasks_timed_out;
  obs::Counter& tasks_denied_by_master;
  obs::Counter& tasks_denied_by_client;
  obs::Counter& retries;        ///< timed-out tasks put back on the queue
  obs::Counter& redispatches;   ///< dispatches beyond a node's first attempt
  obs::Counter& quarantines;
  obs::Counter& client_executed;
  obs::Counter& client_rejected;
  obs::Counter& client_failed;
  obs::Histogram& task_us;      ///< dispatch-to-completion latency

  static WebcomMetrics& get() {
    auto& r = obs::Registry::global();
    static WebcomMetrics m{
        r.counter("webcom.tasks_dispatched"),
        r.counter("webcom.tasks_completed"),
        r.counter("webcom.tasks_timed_out"),
        r.counter("webcom.tasks_denied_by_master"),
        r.counter("webcom.tasks_denied_by_client"),
        r.counter("webcom.retries"),
        r.counter("webcom.redispatches"),
        r.counter("webcom.quarantines"),
        // The decision-cache counters ("webcom.decision_cache_hits"/
        // "_misses") are published by the master's CachingAuthorizer.
        r.counter("webcom.client.tasks_executed"),
        r.counter("webcom.client.tasks_rejected"),
        r.counter("webcom.client.tasks_failed"),
        r.histogram("webcom.task_us"),
    };
    return m;
  }
};

}  // namespace

Master::Master(net::Transport& network, const std::string& endpoint_name,
               const crypto::Identity& identity, MasterOptions options)
    : network_(network), identity_(identity), options_(options),
      pool_(options.workers > 1 ? std::make_unique<util::TaskPool>(
                                      options.workers)
                                : nullptr),
      // Shard count scales with the pool so the shared-nothing batch
      // partition (shard % workers) spreads principals across every
      // worker; serial masters keep the PR-6 default of 8.
      authz_(keynote_authz_,
             {.shards = std::max<std::size_t>(8, options.workers),
              .metric_prefix = "webcom.decision_cache",
              .pool = pool_.get()}) {
  auto ep = network_.open(endpoint_name);
  // An unusable endpoint is a programming error at construction time; the
  // scheduler cannot run without one. attach_client/execute report it as
  // an error, but say why here, while the cause is still known.
  if (ep.ok()) {
    endpoint_ = std::move(ep).take();
  } else {
    MWSEC_LOG(kError, "webcom")
        << "master endpoint '" << endpoint_name
        << "' failed to open: " << ep.error().message;
    endpoint_ = nullptr;
  }
}

void Master::set_outbound_credentials(std::string bundle_text) {
  outbound_credentials_ = std::move(bundle_text);
}

mwsec::Status Master::subscribe_policy(const std::string& authority_endpoint,
                                       sync::Replica::Options options) {
  if (endpoint_ == nullptr) {
    return Error::make("master endpoint failed to open", "webcom");
  }
  if (replica_ == nullptr) {
    // The replica applies deltas to store_ from its own thread; the
    // CachingAuthorizer in front observes the version move per decide.
    replica_ = std::make_unique<sync::Replica>(
        network_, endpoint_->name() + ".sync", store_, options);
    // Close the causal loop: when the replicated epoch moves and a cache
    // shard flushes, the "authz.verdict_flip" span joins the replica's
    // apply span — the revocation fan-out tree ends at the verdict flip.
    authz_.set_epoch_provenance(
        [this] { return replica_->last_applied_context(); });
  }
  return replica_->subscribe(authority_endpoint);
}

mwsec::Status Master::attach_client(ClientInfo info) {
  if (endpoint_ == nullptr) {
    return Error::make("master endpoint failed to open", "webcom");
  }
  if (options_.security_enabled) {
    for (const auto& cred : info.credentials) {
      if (auto s = store_.add_credential(cred); !s.ok()) {
        return Error::make("client " + info.endpoint +
                               " presented a bad credential: " +
                               s.error().message,
                           "webcom");
      }
    }
  }
  client_alive_[info.endpoint] = true;
  clients_.push_back(std::move(info));
  // New credentials can only have been admitted above, which bumps the
  // store version — but invalidate explicitly so a client attaching with
  // no credentials (or with security disabled) can never be answered from
  // decisions cached before it existed.
  authz_.invalidate();
  return {};
}

MasterStats Master::stats() const {
  // One source of truth for the query/cache columns: the unified decision
  // cache. (The scheduler used to count them a second time alongside the
  // obs registry.)
  constexpr auto r = std::memory_order_relaxed;
  MasterStats out;
  out.tasks_dispatched = stats_.tasks_dispatched.load(r);
  out.tasks_completed = stats_.tasks_completed.load(r);
  out.tasks_denied_by_master = stats_.tasks_denied_by_master.load(r);
  out.tasks_denied_by_client = stats_.tasks_denied_by_client.load(r);
  out.tasks_timed_out = stats_.tasks_timed_out.load(r);
  const auto cache = authz_.stats();
  out.keynote_queries = cache.misses + cache.bypasses;
  out.decision_cache_hits = cache.hits;
  return out;
}

bool Master::placement_ok(const ClientInfo& client, const Node& node) const {
  if (!node.target.has_value()) return true;
  const SecurityTarget& t = *node.target;
  // Section 6 placement: every constrained field must match the client's
  // execution identity.
  if (!t.domain.empty() && t.domain != client.domain) return false;
  if (!t.role.empty() && t.role != client.role) return false;
  if (!t.user.empty() && t.user != client.user) return false;
  return true;
}

bool Master::needs_authorisation(const Node& node) const {
  if (!options_.security_enabled) return false;
  if (!node.target.has_value()) return false;
  return !node.target->object_type.empty() ||
         !node.target->permission.empty();
}

authz::Request Master::scheduling_request(const ClientInfo& client,
                                          const SecurityTarget& target) const {
  authz::Request r;
  r.user = client.user;
  r.principal = client.principal;
  r.object_type = target.object_type;
  r.permission = target.permission;
  r.domain = client.domain;
  r.role = client.role;
  return r;
}

mwsec::Result<Value> Master::execute(const Graph& graph) {
  if (endpoint_ == nullptr) {
    return Error::make("master endpoint failed to open", "webcom");
  }
  if (auto s = graph.validate(); !s.ok()) return s.error();
  // The distributed protocol ships leaf operations only; condensations
  // are flattened transparently.
  if (has_condensations(graph)) {
    auto flat = flatten(graph);
    if (!flat.ok()) return flat.error();
    return execute(*flat);
  }

  auto& metrics = WebcomMetrics::get();
  auto run_span = obs::Tracer::global().root("webcom.execute");
  run_span.set_attr(obs::kAttrSystem, "webcom");
  run_span.set_attr("nodes", std::to_string(graph.nodes().size()));

  const std::size_t n = graph.nodes().size();
  std::vector<std::size_t> missing(n, 0);
  for (const auto& arc : graph.arcs()) ++missing[arc.to];
  std::deque<NodeId> ready;
  for (NodeId i = 0; i < n; ++i) {
    if (missing[i] == 0) ready.push_back(i);
  }
  std::vector<std::optional<Value>> results(n);
  std::vector<int> attempts(n, 0);
  std::map<std::uint64_t, Pending> inflight;        // task id -> state
  std::set<std::string> busy;                       // client endpoints
  std::size_t completed = 0;

  auto resolve_inputs = [&](NodeId id,
                            std::vector<Value>& inputs) -> mwsec::Status {
    const Node& node = graph.nodes()[id];
    inputs.assign(node.arity, {});
    auto producers = graph.producers_of(id);
    for (std::size_t p = 0; p < node.arity; ++p) {
      auto lit = node.literals.find(p);
      if (lit != node.literals.end()) {
        inputs[p] = lit->second;
      } else {
        auto prod = producers.find(p);
        if (prod == producers.end() || !results[prod->second].has_value()) {
          return Error::make("operand missing for " + node.name, "webcom");
        }
        inputs[p] = *results[prod->second];
      }
    }
    return {};
  };

  auto dispatch = [&](NodeId id) -> mwsec::Status {
    const Node& node = graph.nodes()[id];
    if (node.condensed != nullptr) {
      return Error::make(
          "distributed execution of condensed nodes requires flattening "
          "(evaluate locally or inline the subgraph)",
          "webcom");
    }
    // Candidates: alive clients satisfying the placement constraint...
    std::vector<const ClientInfo*> candidates;
    candidates.reserve(clients_.size());
    for (const auto& client : clients_) {
      if (!client_alive_[client.endpoint]) continue;
      if (!placement_ok(client, node)) continue;
      candidates.push_back(&client);
    }
    // ...narrowed by one batched authorisation decision over all of them
    // (the unified cache answers repeats without a KeyNote query). When
    // every candidate is busy the outcome cannot matter this attempt —
    // dispatch would defer either way — so authorisation itself is
    // deferred too, keeping the busy-retry path free of decision work.
    if (needs_authorisation(node) && !candidates.empty()) {
      const bool any_idle =
          std::any_of(candidates.begin(), candidates.end(),
                      [&](const ClientInfo* c) {
                        return busy.count(c->endpoint) == 0;
                      });
      if (!any_idle) {
        ready.push_back(id);  // all candidates busy; re-authorise later
        return {};
      }
      std::vector<authz::Request> requests;
      requests.reserve(candidates.size());
      for (const ClientInfo* c : candidates) {
        requests.push_back(scheduling_request(*c, *node.target));
      }
      const auto verdicts = authz_.decide_batch(requests);
      std::size_t kept = 0;
      for (std::size_t i = 0; i < candidates.size(); ++i) {
        if (verdicts[i].permitted()) candidates[kept++] = candidates[i];
      }
      candidates.resize(kept);
    }
    // Pick the first eligible idle client.
    const bool any_eligible = !candidates.empty();
    const ClientInfo* chosen = nullptr;
    for (const ClientInfo* c : candidates) {
      if (busy.count(c->endpoint)) continue;
      chosen = c;
      break;
    }
    if (!any_eligible) {
      stats_.tasks_denied_by_master.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_denied_by_master.inc();
      if (run_span.active()) {
        auto deny = run_span.child("webcom.schedule");
        deny.set_attr("node", node.name);
        deny.set_attr(obs::kAttrDecision, "deny");
        deny.set_attr(obs::kAttrDeniedBy, "master");
        deny.set_attr(obs::kAttrReason,
                      "no attached client is authorised for " + node.name);
        deny.set_status("denied");
      }
      return Error::make("no client is authorised to execute component " +
                             node.name,
                         "denied");
    }
    if (chosen == nullptr) {
      ready.push_back(id);  // all eligible clients busy; retry later
      return {};
    }

    TaskMessage task;
    task.task_id = next_task_id_++;
    task.node_name = node.name;
    task.operation = node.operation;
    if (auto s = resolve_inputs(id, task.inputs); !s.ok()) return s;
    if (node.target.has_value()) task.target = *node.target;
    task.master_principal = identity_.principal();
    task.master_credentials = outbound_credentials_;

    if (attempts[id] > 0) metrics.redispatches.inc();
    ++attempts[id];
    auto task_span = run_span.child("webcom.task");
    if (task_span.active()) {
      task_span.set_attr("node", node.name);
      task_span.set_attr("client", chosen->endpoint);
      task_span.set_attr("attempt", std::to_string(attempts[id]));
    }
    // The envelope carries the task span's context so the client's
    // handling joins this dispatch as a child across the wire.
    auto send = endpoint_->send(chosen->endpoint, kSubjectTask, task.encode(),
                                task_span.context());
    stats_.tasks_dispatched.fetch_add(1, std::memory_order_relaxed);
    metrics.tasks_dispatched.inc();
    // A send error (partition, dead endpoint) is treated like a timed-out
    // task below — but name the unreachable destination in the retry log
    // now, while the cause is still known.
    busy.insert(chosen->endpoint);
    inflight[task.task_id] =
        Pending{id, chosen->endpoint,
                std::chrono::steady_clock::now() + options_.task_timeout,
                attempts[id], std::move(task_span)};
    if (!send.ok()) {
      MWSEC_LOG(kWarn, "webcom")
          << "dispatch of " << node.name << " to " << chosen->endpoint
          << " failed (" << send.error().message << "); will retry after "
          << "timeout";
    }
    return {};
  };

  // Threaded dispatch: drain the ready queue as one wave and alternate
  // parallel phases with short serial ones (see the header comment).
  // clients_/client_alive_/busy/results are read concurrently in the
  // parallel phases and mutated only by the serial phases and the control
  // loop, never while a parallel phase runs.
  auto dispatch_wave = [&]() -> mwsec::Status {
    const std::size_t wave = ready.size();
    if (wave == 0) return {};
    std::vector<NodeId> nodes(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      nodes[i] = ready.front();
      ready.pop_front();
    }

    // Phase A (parallel): per-node candidate filtering + authorisation
    // against the immutable store snapshot. Mirrors `dispatch`, including
    // deferred authorisation when every candidate is busy.
    struct Prepared {
      std::vector<const ClientInfo*> eligible;
      bool defer_busy = false;  ///< all candidates busy; authz deferred
    };
    std::vector<Prepared> prep(wave);
    auto prepare = [&](std::size_t i, bool on_pool) {
      const Node& node = graph.nodes()[nodes[i]];
      Prepared& p = prep[i];
      for (const auto& client : clients_) {
        auto alive = client_alive_.find(client.endpoint);
        if (alive == client_alive_.end() || !alive->second) continue;
        if (!placement_ok(client, node)) continue;
        p.eligible.push_back(&client);
      }
      if (!needs_authorisation(node) || p.eligible.empty()) return;
      const bool any_idle = std::any_of(
          p.eligible.begin(), p.eligible.end(), [&](const ClientInfo* c) {
            return busy.count(c->endpoint) == 0;
          });
      if (!any_idle) {
        p.defer_busy = true;
        return;
      }
      if (on_pool) {
        // Inside a pool task the wave is the unit of parallelism;
        // per-candidate decisions stay on this worker (a nested pooled
        // batch would have workers waiting on each other's queues).
        std::size_t kept = 0;
        for (const ClientInfo* c : p.eligible) {
          if (authz_.decide(scheduling_request(*c, *node.target))
                  .permitted()) {
            p.eligible[kept++] = c;
          }
        }
        p.eligible.resize(kept);
      } else {
        std::vector<authz::Request> requests;
        requests.reserve(p.eligible.size());
        for (const ClientInfo* c : p.eligible) {
          requests.push_back(scheduling_request(*c, *node.target));
        }
        const auto verdicts = authz_.decide_batch(requests);
        std::size_t kept = 0;
        for (std::size_t k = 0; k < p.eligible.size(); ++k) {
          if (verdicts[k].permitted()) p.eligible[kept++] = p.eligible[k];
        }
        p.eligible.resize(kept);
      }
    };
    if (wave == 1) {
      // Single-node wave: prepare on the control thread, where the
      // decision cache's pooled batch fan-out is safe — candidate
      // authorisation still spreads across the workers.
      prepare(0, /*on_pool=*/false);
    } else {
      pool_->parallel_for(wave, [&](std::size_t i) { prepare(i, true); });
    }

    // Phase B (serial): assign clients in wave order. Denial and
    // busy-deferral match the serial path; busy updates here feed later
    // nodes of this wave exactly as sequential dispatch would.
    struct Assignment {
      NodeId node;
      const ClientInfo* client;
      std::uint64_t task_id;
      int attempt;
      TaskMessage task;
      obs::Span span;  ///< created serially (Phase B), sent with the task
      mwsec::Status resolve;
      mwsec::Status send;
    };
    std::vector<Assignment> assigned;
    assigned.reserve(wave);
    for (std::size_t i = 0; i < wave; ++i) {
      const NodeId id = nodes[i];
      const Node& node = graph.nodes()[id];
      if (node.condensed != nullptr) {
        return Error::make(
            "distributed execution of condensed nodes requires flattening "
            "(evaluate locally or inline the subgraph)",
            "webcom");
      }
      Prepared& p = prep[i];
      if (p.defer_busy) {
        ready.push_back(id);  // all candidates busy; re-authorise later
        continue;
      }
      if (p.eligible.empty()) {
        stats_.tasks_denied_by_master.fetch_add(1, std::memory_order_relaxed);
        metrics.tasks_denied_by_master.inc();
        if (run_span.active()) {
          auto deny = run_span.child("webcom.schedule");
          deny.set_attr("node", node.name);
          deny.set_attr(obs::kAttrDecision, "deny");
          deny.set_attr(obs::kAttrDeniedBy, "master");
          deny.set_attr(obs::kAttrReason,
                        "no attached client is authorised for " + node.name);
          deny.set_status("denied");
        }
        return Error::make("no client is authorised to execute component " +
                               node.name,
                           "denied");
      }
      const ClientInfo* chosen = nullptr;
      for (const ClientInfo* c : p.eligible) {
        if (busy.count(c->endpoint)) continue;
        chosen = c;
        break;
      }
      if (chosen == nullptr) {
        ready.push_back(id);  // all eligible clients busy; retry later
        continue;
      }
      busy.insert(chosen->endpoint);
      if (attempts[id] > 0) metrics.redispatches.inc();
      ++attempts[id];
      Assignment a;
      a.node = id;
      a.client = chosen;
      a.task_id = next_task_id_.fetch_add(1, std::memory_order_relaxed);
      a.attempt = attempts[id];
      a.span = run_span.child("webcom.task");
      if (a.span.active()) {
        a.span.set_attr("node", node.name);
        a.span.set_attr("client", chosen->endpoint);
        a.span.set_attr("attempt", std::to_string(attempts[id]));
      }
      assigned.push_back(std::move(a));
    }
    if (assigned.empty()) return {};

    // Phase C (parallel): build, encode and send each task. results[] is
    // stable here (only the control loop writes it, between waves) and
    // Network::send is safe for concurrent senders.
    pool_->parallel_for(assigned.size(), [&](std::size_t i) {
      Assignment& a = assigned[i];
      const Node& node = graph.nodes()[a.node];
      a.task.task_id = a.task_id;
      a.task.node_name = node.name;
      a.task.operation = node.operation;
      a.resolve = resolve_inputs(a.node, a.task.inputs);
      if (!a.resolve.ok()) return;
      if (node.target.has_value()) a.task.target = *node.target;
      a.task.master_principal = identity_.principal();
      a.task.master_credentials = outbound_credentials_;
      a.send = endpoint_->send(a.client->endpoint, kSubjectTask,
                               a.task.encode(), a.span.context());
    });

    // Phase D (serial): inflight bookkeeping and spans.
    const auto deadline =
        std::chrono::steady_clock::now() + options_.task_timeout;
    for (Assignment& a : assigned) {
      if (!a.resolve.ok()) return a.resolve;
      const Node& node = graph.nodes()[a.node];
      stats_.tasks_dispatched.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_dispatched.inc();
      inflight[a.task_id] = Pending{a.node, a.client->endpoint, deadline,
                                    a.attempt, std::move(a.span)};
      if (!a.send.ok()) {
        MWSEC_LOG(kWarn, "webcom")
            << "dispatch of " << node.name << " to " << a.client->endpoint
            << " failed (" << a.send.error().message
            << "); will retry after timeout";
      }
    }
    return {};
  };

  // Process one received message (completion, client denial, failure).
  // Unknown task ids and non-result subjects are ignored, as before.
  auto handle_message = [&](const net::Message& message,
                            std::chrono::steady_clock::time_point now)
      -> mwsec::Status {
    if (message.subject != kSubjectTaskResult) return {};
    auto result = TaskResultMessage::decode(message.payload);
    if (!result.ok()) return {};
    auto it = inflight.find(result->task_id);
    if (it == inflight.end()) return {};
    NodeId id = it->second.node;
    busy.erase(it->second.client_endpoint);
    if (obs::metrics_enabled()) {
      auto dispatched_at = it->second.deadline - options_.task_timeout;
      metrics.task_us.observe(
          std::chrono::duration<double, std::micro>(now - dispatched_at)
              .count());
    }
    Pending pending = std::move(it->second);
    inflight.erase(it);
    if (result->ok) {
      stats_.tasks_completed.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_completed.inc();
      pending.span.set_status("complete");
      pending.span.finish();
      results[id] = result->value;
      ++completed;
      for (NodeId consumer : graph.consumers_of(id)) {
        if (--missing[consumer] == 0) ready.push_back(consumer);
      }
    } else if (result->code == "denied") {
      stats_.tasks_denied_by_client.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_denied_by_client.inc();
      pending.span.set_attr(obs::kAttrDecision, "deny");
      pending.span.set_attr(obs::kAttrDeniedBy, "client");
      pending.span.set_attr(obs::kAttrReason, result->value);
      pending.span.set_status("denied");
      pending.span.finish();
      return Error::make("client refused task " + graph.nodes()[id].name +
                             ": " + result->value,
                         "denied");
    } else {
      pending.span.set_attr(obs::kAttrReason, result->value);
      pending.span.set_status("failed");
      pending.span.finish();
      return Error::make(
          "task " + graph.nodes()[id].name + " failed: " + result->value,
          result->code);
    }
    return {};
  };

  while (completed < n) {
    // Dispatch everything currently ready.
    if (pool_ != nullptr) {
      if (auto s = dispatch_wave(); !s.ok()) return s.error();
    } else {
      std::size_t to_dispatch = ready.size();
      for (std::size_t i = 0; i < to_dispatch; ++i) {
        NodeId id = ready.front();
        ready.pop_front();
        if (auto s = dispatch(id); !s.ok()) return s.error();
      }
    }

    if (inflight.empty()) {
      if (ready.empty()) {
        return Error::make("scheduler stalled: no runnable work", "webcom");
      }
      continue;  // everything ready was requeued; clients were busy
    }

    // Collect results until the earliest deadline.
    auto message = endpoint_->receive(std::chrono::milliseconds(10));
    auto now = std::chrono::steady_clock::now();
    if (message.has_value()) {
      if (auto s = handle_message(*message, now); !s.ok()) return s.error();
      if (pool_ != nullptr) {
        // Threaded mode: drain everything already queued so the next wave
        // sees the full set of newly-ready nodes (bigger waves = more
        // parallelism) instead of one result per loop iteration.
        while (auto more = endpoint_->try_receive()) {
          if (auto s = handle_message(*more, now); !s.ok()) return s.error();
        }
      }
    }

    // Expire timed-out tasks: quarantine the client, retry elsewhere.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->second.deadline > now) {
        ++it;
        continue;
      }
      stats_.tasks_timed_out.fetch_add(1, std::memory_order_relaxed);
      metrics.tasks_timed_out.inc();
      metrics.quarantines.inc();
      // Anomaly: a quarantine is always worth a flight-recorder entry (and
      // a dump, if a kQuarantine threshold is armed) — the ring keeps the
      // decisions and deliveries leading up to it.
      obs::FlightRecorder::global().record(
          obs::FlightKind::kQuarantine,
          static_cast<double>(it->second.attempts),
          it->second.span.trace_id(), it->second.node);
      MWSEC_LOG(kInfo, "webcom")
          << "task on " << it->second.client_endpoint
          << " timed out; quarantining client";
      it->second.span.set_status("timeout");
      it->second.span.finish();
      client_alive_[it->second.client_endpoint] = false;
      busy.erase(it->second.client_endpoint);
      NodeId id = it->second.node;
      it = inflight.erase(it);
      if (attempts[id] >= options_.max_attempts) {
        return Error::make("component " + graph.nodes()[id].name +
                               " failed after " +
                               std::to_string(attempts[id]) + " attempts",
                           "webcom");
      }
      metrics.retries.inc();
      ready.push_back(id);
    }
  }

  NodeId exit = *graph.exit();
  if (!results[exit].has_value()) {
    return Error::make("exit node did not complete", "webcom");
  }
  run_span.set_status("complete");
  return *results[exit];
}

Client::Client(net::Transport& network, const std::string& endpoint_name,
               const crypto::Identity& identity, OperationRegistry registry,
               ClientOptions options)
    : network_(network), endpoint_name_(endpoint_name), identity_(identity),
      registry_(std::move(registry)), options_(std::move(options)) {}

Client::~Client() { stop(); }

mwsec::Status Client::subscribe_policy(const std::string& authority_endpoint,
                                       sync::Replica::Options options) {
  if (replica_ == nullptr) {
    replica_ = std::make_unique<sync::Replica>(
        network_, endpoint_name_ + ".sync", store_, options);
  }
  return replica_->subscribe(authority_endpoint);
}

mwsec::Status Client::start() {
  auto ep = network_.open(endpoint_name_);
  if (!ep.ok()) return ep.error();
  endpoint_ = std::move(ep).take();
  thread_ = std::jthread([this](std::stop_token st) { serve(st); });
  return {};
}

void Client::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

ClientStats Client::stats() const {
  std::scoped_lock lock(stats_mu_);
  return stats_;
}

authz::Verdict Client::authorise_master(const TaskMessage& task) {
  if (!options_.security_enabled) {
    return authz::Verdict::permit("webcom-client");
  }
  authz::Request request;
  request.principal = task.master_principal;
  request.object_type = task.target.object_type;
  request.permission = task.target.permission;
  request.domain = options_.domain;
  request.role = options_.role;
  if (!task.master_credentials.empty()) {
    auto bundle = keynote::Assertion::parse_bundle(task.master_credentials);
    if (!bundle.ok()) {
      auto v = authz::Verdict::deny(authz_.name());
      v.explanation = "bad credential bundle: " + bundle.error().message;
      return v;
    }
    request.credentials = std::move(bundle).take();
  }
  return authz_.decide(request);
}

void Client::serve(std::stop_token st) {
  while (!st.stop_requested()) {
    auto message = endpoint_->receive(std::chrono::milliseconds(50));
    if (!message.has_value()) {
      if (endpoint_->closed()) return;
      continue;
    }
    if (message->subject != kSubjectTask) continue;
    auto task = TaskMessage::decode(message->payload);
    if (!task.ok()) continue;  // malformed: drop, like a real server would

    TaskResultMessage reply;
    reply.task_id = task->task_id;
    auto& metrics = WebcomMetrics::get();
    // The envelope carries the master's task-span context; joining it puts
    // this client's authorise/execute under that dispatch in one causal
    // tree, and the ambient context tags any log line emitted in between.
    auto span =
        obs::Tracer::global().join("webcom.client.task", message->ctx);
    if (span.active()) {
      span.set_attr("node", task->node_name);
      span.set_attr("operation", task->operation);
    }
    obs::ScopedTraceContext ambient(span.context());
    if (const auto verdict = authorise_master(*task); !verdict.permitted()) {
      reply.ok = false;
      reply.code = "denied";
      reply.value = "master " + task->master_principal.substr(0, 16) +
                    "... is not authorised to schedule " + task->node_name;
      metrics.client_rejected.inc();
      if (span.active()) {
        authz::Request request;
        request.principal = task->master_principal;
        request.object_type = task->target.object_type;
        request.permission = task->target.permission;
        auto rec = authz::decision_record(
            "webcom.client.authorise", "webcom-client", request, verdict,
            "master credentials do not authorise scheduling " +
                task->node_name);
        for (const auto& [k, v] : rec.attrs) span.set_attr(k, v);
        span.set_status(rec.status);
      }
      std::scoped_lock lock(stats_mu_);
      ++stats_.tasks_rejected;
    } else {
      auto value = registry_.invoke(task->operation, task->inputs);
      if (value.ok()) {
        reply.ok = true;
        reply.value = std::move(value).take();
        span.set_status("complete");
        metrics.client_executed.inc();
        std::scoped_lock lock(stats_mu_);
        ++stats_.tasks_executed;
      } else {
        reply.ok = false;
        reply.value = value.error().message;
        reply.code = value.error().code.empty() ? "ops" : value.error().code;
        span.set_attr(obs::kAttrReason, reply.value);
        span.set_status("failed");
        metrics.client_failed.inc();
        std::scoped_lock lock(stats_mu_);
        ++stats_.tasks_failed;
      }
    }
    // Best effort: if the master is unreachable the task will time out
    // there and be rescheduled. The reply envelope continues the client
    // span's context so the result delivery is one more traced hop.
    endpoint_->send(message->from, kSubjectTaskResult, reply.encode(),
                    span.context())
        .ok();
  }
}

}  // namespace mwsec::webcom
