#include "webcom/scheduler.hpp"

#include "webcom/flatten.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/logging.hpp"

namespace mwsec::webcom {

namespace {

/// KeyNote action environment for scheduling a node to run as
/// (domain, role): the Figure 5 attribute vocabulary.
keynote::Query scheduling_query(const std::string& requester,
                                const SecurityTarget& target,
                                const std::string& domain,
                                const std::string& role) {
  keynote::Query q;
  q.action_authorizers = {requester};
  q.env.set("app_domain", "WebCom");
  q.env.set("ObjectType", target.object_type);
  q.env.set("Permission", target.permission);
  q.env.set("Domain", domain);
  q.env.set("Role", role);
  return q;
}

}  // namespace

Master::Master(net::Network& network, const std::string& endpoint_name,
               const crypto::Identity& identity, MasterOptions options)
    : network_(network), identity_(identity), options_(options) {
  auto ep = network_.open(endpoint_name);
  // An unusable endpoint is a programming error at construction time; the
  // scheduler cannot run without one. attach_client/execute report it as
  // an error, but say why here, while the cause is still known.
  if (ep.ok()) {
    endpoint_ = std::move(ep).take();
  } else {
    MWSEC_LOG(kError, "webcom")
        << "master endpoint '" << endpoint_name
        << "' failed to open: " << ep.error().message;
    endpoint_ = nullptr;
  }
}

void Master::set_outbound_credentials(std::string bundle_text) {
  outbound_credentials_ = std::move(bundle_text);
}

mwsec::Status Master::attach_client(ClientInfo info) {
  if (endpoint_ == nullptr) {
    return Error::make("master endpoint failed to open", "webcom");
  }
  if (options_.security_enabled) {
    for (const auto& cred : info.credentials) {
      if (auto s = store_.add_credential(cred); !s.ok()) {
        return Error::make("client " + info.endpoint +
                               " presented a bad credential: " +
                               s.error().message,
                           "webcom");
      }
    }
  }
  client_alive_[info.endpoint] = true;
  clients_.push_back(std::move(info));
  // New credentials can only have been admitted above, which bumps the
  // store version — but flush explicitly so a client attaching with no
  // credentials (or with security disabled) can never be answered from
  // decisions cached before it existed.
  decision_cache_.clear();
  decision_cache_version_ = store_.version();
  return {};
}

bool Master::authorised_cached(const ClientInfo& client,
                               const SecurityTarget& t) {
  if (store_.version() != decision_cache_version_) {
    decision_cache_.clear();
    decision_cache_version_ = store_.version();
  }
  DecisionKey key{client.principal, client.domain, client.role, t.object_type,
                  t.permission};
  if (auto it = decision_cache_.find(key); it != decision_cache_.end()) {
    ++stats_.decision_cache_hits;
    return it->second;
  }
  ++stats_.keynote_queries;
  auto q = scheduling_query(client.principal, t, client.domain, client.role);
  auto r = store_.query(q);
  bool verdict = r.ok() && r->authorized();
  decision_cache_.emplace(std::move(key), verdict);
  return verdict;
}

bool Master::eligible(const ClientInfo& client, const Node& node) {
  if (!node.target.has_value()) return true;
  const SecurityTarget& t = *node.target;
  // Section 6 placement: every constrained field must match the client's
  // execution identity.
  if (!t.domain.empty() && t.domain != client.domain) return false;
  if (!t.role.empty() && t.role != client.role) return false;
  if (!t.user.empty() && t.user != client.user) return false;
  if (!options_.security_enabled) return true;
  if (t.object_type.empty() && t.permission.empty()) return true;
  return authorised_cached(client, t);
}

mwsec::Result<Value> Master::execute(const Graph& graph) {
  if (endpoint_ == nullptr) {
    return Error::make("master endpoint failed to open", "webcom");
  }
  if (auto s = graph.validate(); !s.ok()) return s.error();
  // The distributed protocol ships leaf operations only; condensations
  // are flattened transparently.
  if (has_condensations(graph)) {
    auto flat = flatten(graph);
    if (!flat.ok()) return flat.error();
    return execute(*flat);
  }

  const std::size_t n = graph.nodes().size();
  std::vector<std::size_t> missing(n, 0);
  for (const auto& arc : graph.arcs()) ++missing[arc.to];
  std::deque<NodeId> ready;
  for (NodeId i = 0; i < n; ++i) {
    if (missing[i] == 0) ready.push_back(i);
  }
  std::vector<std::optional<Value>> results(n);
  std::vector<int> attempts(n, 0);
  std::map<std::uint64_t, Pending> inflight;        // task id -> state
  std::set<std::string> busy;                       // client endpoints
  std::size_t completed = 0;

  auto resolve_inputs = [&](NodeId id,
                            std::vector<Value>& inputs) -> mwsec::Status {
    const Node& node = graph.nodes()[id];
    inputs.assign(node.arity, {});
    auto producers = graph.producers_of(id);
    for (std::size_t p = 0; p < node.arity; ++p) {
      auto lit = node.literals.find(p);
      if (lit != node.literals.end()) {
        inputs[p] = lit->second;
      } else {
        auto prod = producers.find(p);
        if (prod == producers.end() || !results[prod->second].has_value()) {
          return Error::make("operand missing for " + node.name, "webcom");
        }
        inputs[p] = *results[prod->second];
      }
    }
    return {};
  };

  auto dispatch = [&](NodeId id) -> mwsec::Status {
    const Node& node = graph.nodes()[id];
    if (node.condensed != nullptr) {
      return Error::make(
          "distributed execution of condensed nodes requires flattening "
          "(evaluate locally or inline the subgraph)",
          "webcom");
    }
    // Pick the first eligible, alive, idle client.
    const ClientInfo* chosen = nullptr;
    bool any_eligible = false;
    for (const auto& client : clients_) {
      if (!client_alive_[client.endpoint]) continue;
      if (!eligible(client, node)) continue;
      any_eligible = true;
      if (busy.count(client.endpoint)) continue;
      chosen = &client;
      break;
    }
    if (!any_eligible) {
      ++stats_.tasks_denied_by_master;
      return Error::make("no client is authorised to execute component " +
                             node.name,
                         "denied");
    }
    if (chosen == nullptr) {
      ready.push_back(id);  // all eligible clients busy; retry later
      return {};
    }

    TaskMessage task;
    task.task_id = next_task_id_++;
    task.node_name = node.name;
    task.operation = node.operation;
    if (auto s = resolve_inputs(id, task.inputs); !s.ok()) return s;
    if (node.target.has_value()) task.target = *node.target;
    task.master_principal = identity_.principal();
    task.master_credentials = outbound_credentials_;

    auto send = endpoint_->send(chosen->endpoint, kSubjectTask, task.encode());
    ++stats_.tasks_dispatched;
    ++attempts[id];
    // A send error (partition) is treated like a timed-out task below.
    busy.insert(chosen->endpoint);
    inflight[task.task_id] =
        Pending{id, chosen->endpoint,
                std::chrono::steady_clock::now() + options_.task_timeout,
                attempts[id]};
    (void)send;
    return {};
  };

  while (completed < n) {
    // Dispatch everything currently ready.
    std::size_t to_dispatch = ready.size();
    for (std::size_t i = 0; i < to_dispatch; ++i) {
      NodeId id = ready.front();
      ready.pop_front();
      if (auto s = dispatch(id); !s.ok()) return s.error();
    }

    if (inflight.empty()) {
      if (ready.empty()) {
        return Error::make("scheduler stalled: no runnable work", "webcom");
      }
      continue;  // everything ready was requeued; clients were busy
    }

    // Collect results until the earliest deadline.
    auto message = endpoint_->receive(std::chrono::milliseconds(10));
    auto now = std::chrono::steady_clock::now();
    if (message.has_value() && message->subject == kSubjectTaskResult) {
      auto result = TaskResultMessage::decode(message->payload);
      if (result.ok()) {
        auto it = inflight.find(result->task_id);
        if (it != inflight.end()) {
          NodeId id = it->second.node;
          busy.erase(it->second.client_endpoint);
          inflight.erase(it);
          if (result->ok) {
            ++stats_.tasks_completed;
            results[id] = result->value;
            ++completed;
            for (NodeId consumer : graph.consumers_of(id)) {
              if (--missing[consumer] == 0) ready.push_back(consumer);
            }
          } else if (result->code == "denied") {
            ++stats_.tasks_denied_by_client;
            return Error::make("client refused task " +
                                   graph.nodes()[id].name + ": " +
                                   result->value,
                               "denied");
          } else {
            return Error::make("task " + graph.nodes()[id].name +
                                   " failed: " + result->value,
                               result->code);
          }
        }
      }
    }

    // Expire timed-out tasks: quarantine the client, retry elsewhere.
    for (auto it = inflight.begin(); it != inflight.end();) {
      if (it->second.deadline > now) {
        ++it;
        continue;
      }
      ++stats_.tasks_timed_out;
      MWSEC_LOG(kInfo, "webcom")
          << "task on " << it->second.client_endpoint
          << " timed out; quarantining client";
      client_alive_[it->second.client_endpoint] = false;
      busy.erase(it->second.client_endpoint);
      NodeId id = it->second.node;
      it = inflight.erase(it);
      if (attempts[id] >= options_.max_attempts) {
        return Error::make("component " + graph.nodes()[id].name +
                               " failed after " +
                               std::to_string(attempts[id]) + " attempts",
                           "webcom");
      }
      ready.push_back(id);
    }
  }

  NodeId exit = *graph.exit();
  if (!results[exit].has_value()) {
    return Error::make("exit node did not complete", "webcom");
  }
  return *results[exit];
}

Client::Client(net::Network& network, const std::string& endpoint_name,
               const crypto::Identity& identity, OperationRegistry registry,
               ClientOptions options)
    : network_(network), endpoint_name_(endpoint_name), identity_(identity),
      registry_(std::move(registry)), options_(std::move(options)) {}

Client::~Client() { stop(); }

mwsec::Status Client::start() {
  auto ep = network_.open(endpoint_name_);
  if (!ep.ok()) return ep.error();
  endpoint_ = std::move(ep).take();
  thread_ = std::jthread([this](std::stop_token st) { serve(st); });
  return {};
}

void Client::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

ClientStats Client::stats() const {
  std::scoped_lock lock(stats_mu_);
  return stats_;
}

bool Client::authorise_master(const TaskMessage& task) {
  if (!options_.security_enabled) return true;
  std::vector<keynote::Assertion> presented;
  if (!task.master_credentials.empty()) {
    auto bundle = keynote::Assertion::parse_bundle(task.master_credentials);
    if (!bundle.ok()) return false;
    presented = std::move(bundle).take();
  }
  auto q = scheduling_query(task.master_principal, task.target,
                            options_.domain, options_.role);
  auto r = store_.query(q, presented);
  return r.ok() && r->authorized();
}

void Client::serve(std::stop_token st) {
  while (!st.stop_requested()) {
    auto message = endpoint_->receive(std::chrono::milliseconds(50));
    if (!message.has_value()) {
      if (endpoint_->closed()) return;
      continue;
    }
    if (message->subject != kSubjectTask) continue;
    auto task = TaskMessage::decode(message->payload);
    if (!task.ok()) continue;  // malformed: drop, like a real server would

    TaskResultMessage reply;
    reply.task_id = task->task_id;
    if (!authorise_master(*task)) {
      reply.ok = false;
      reply.code = "denied";
      reply.value = "master " + task->master_principal.substr(0, 16) +
                    "... is not authorised to schedule " + task->node_name;
      std::scoped_lock lock(stats_mu_);
      ++stats_.tasks_rejected;
    } else {
      auto value = registry_.invoke(task->operation, task->inputs);
      if (value.ok()) {
        reply.ok = true;
        reply.value = std::move(value).take();
        std::scoped_lock lock(stats_mu_);
        ++stats_.tasks_executed;
      } else {
        reply.ok = false;
        reply.value = value.error().message;
        reply.code = value.error().code.empty() ? "ops" : value.error().code;
        std::scoped_lock lock(stats_mu_);
        ++stats_.tasks_failed;
      }
    }
    // Best effort: if the master is unreachable the task will time out
    // there and be rescheduled.
    endpoint_->send(message->from, kSubjectTaskResult, reply.encode()).ok();
  }
}

}  // namespace mwsec::webcom
