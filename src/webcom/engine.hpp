// Local condensed-graph evaluation engine.
//
// Three firing disciplines, after Morrison [21]:
//   * kAvailability (eager / availability-driven): every node fires as
//     soon as its operands are present — classic dataflow;
//   * kControl (lazy / control-driven): only nodes the exit transitively
//     demands fire;
//   * kCoercion (demand with speculation): the demanded spine fires, and
//     remaining available nodes are coerced opportunistically.
// All three agree on the exit value for side-effect-free operations;
// they differ in *which* nodes fire — exposed via EvalStats and tested.
//
// evaluate_parallel() runs availability-driven firing on a task executor
// (CP.4: think in tasks): nodes whose operands are ready are submitted to
// a pool of workers, giving real multicore speedup for wide graphs.
#pragma once

#include <cstddef>

#include "util/result.hpp"
#include "webcom/graph.hpp"
#include "webcom/ops.hpp"

namespace mwsec::webcom {

enum class FiringMode { kAvailability, kControl, kCoercion };

struct EvalStats {
  std::size_t nodes_fired = 0;
  std::size_t condensations_evaporated = 0;
};

/// Evaluate a validated graph to its exit value.
mwsec::Result<Value> evaluate(const Graph& graph,
                              const OperationRegistry& registry,
                              FiringMode mode = FiringMode::kAvailability,
                              EvalStats* stats = nullptr);

/// Availability-driven evaluation with `workers` threads.
mwsec::Result<Value> evaluate_parallel(const Graph& graph,
                                       const OperationRegistry& registry,
                                       std::size_t workers,
                                       EvalStats* stats = nullptr);

}  // namespace mwsec::webcom
