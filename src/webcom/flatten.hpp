// Condensation flattening: rewrite a graph with condensed nodes into an
// equivalent flat graph by splicing every subgraph in place of its
// condensed node (recursively). The local engine evaporates condensations
// on the fly; the *distributed* scheduler ships individual operations to
// clients, so graphs are flattened before master execution.
//
// Placement semantics: a SecurityTarget on a condensed node applies to
// every spliced node that does not carry its own — constraining the whole
// sub-workflow, which is what Section 6's component placement means for a
// compound component.
#pragma once

#include "util/result.hpp"
#include "webcom/graph.hpp"

namespace mwsec::webcom {

/// Flatten all condensations, recursively. The input must validate.
/// Spliced node names are prefixed "<condensed-node-name>/".
mwsec::Result<Graph> flatten(const Graph& graph);

/// True if the graph contains at least one condensed node.
bool has_condensations(const Graph& graph);

}  // namespace mwsec::webcom
