#include "webcom/graph.hpp"

#include <algorithm>
#include <deque>

namespace mwsec::webcom {

NodeId Graph::add_node(std::string name, std::string operation,
                       std::size_t arity) {
  Node n;
  n.name = std::move(name);
  n.operation = std::move(operation);
  n.arity = arity;
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

NodeId Graph::add_constant(std::string name, Value value) {
  NodeId id = add_node(std::move(name), "const", 1);
  nodes_[id].literals[0] = std::move(value);
  return id;
}

NodeId Graph::add_condensed(std::string name, Graph subgraph) {
  Node n;
  n.name = std::move(name);
  n.operation = "<condensed>";
  n.arity = subgraph.entries().size();
  n.condensed = std::make_shared<Graph>(std::move(subgraph));
  nodes_.push_back(std::move(n));
  return nodes_.size() - 1;
}

mwsec::Status Graph::connect(NodeId from, NodeId to, std::size_t port) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Error::make("arc endpoint out of range", "graph");
  }
  if (port >= nodes_[to].arity) {
    return Error::make("port " + std::to_string(port) + " out of range for " +
                           nodes_[to].name,
                       "graph");
  }
  arcs_.push_back(Arc{from, to, port});
  return {};
}

mwsec::Status Graph::set_literal(NodeId node, std::size_t port, Value value) {
  if (node >= nodes_.size()) return Error::make("node out of range", "graph");
  if (port >= nodes_[node].arity) {
    return Error::make("port out of range", "graph");
  }
  nodes_[node].literals[port] = std::move(value);
  return {};
}

mwsec::Status Graph::set_target(NodeId node, SecurityTarget target) {
  if (node >= nodes_.size()) return Error::make("node out of range", "graph");
  nodes_[node].target = std::move(target);
  return {};
}

mwsec::Status Graph::set_exit(NodeId node) {
  if (node >= nodes_.size()) return Error::make("node out of range", "graph");
  exit_ = node;
  return {};
}

mwsec::Status Graph::add_entry(NodeId node, std::size_t port) {
  if (node >= nodes_.size()) return Error::make("node out of range", "graph");
  if (port >= nodes_[node].arity) {
    return Error::make("port out of range", "graph");
  }
  entries_.emplace_back(node, port);
  return {};
}

std::map<std::size_t, NodeId> Graph::producers_of(NodeId node) const {
  std::map<std::size_t, NodeId> out;
  for (const auto& arc : arcs_) {
    if (arc.to == node) out[arc.port] = arc.from;
  }
  return out;
}

std::vector<NodeId> Graph::consumers_of(NodeId node) const {
  std::vector<NodeId> out;
  for (const auto& arc : arcs_) {
    if (arc.from == node) out.push_back(arc.to);
  }
  return out;
}

mwsec::Result<std::vector<NodeId>> Graph::topological_order() const {
  std::vector<std::size_t> indegree(nodes_.size(), 0);
  for (const auto& arc : arcs_) ++indegree[arc.to];
  std::deque<NodeId> ready;
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    if (indegree[i] == 0) ready.push_back(i);
  }
  std::vector<NodeId> order;
  order.reserve(nodes_.size());
  while (!ready.empty()) {
    NodeId n = ready.front();
    ready.pop_front();
    order.push_back(n);
    for (const auto& arc : arcs_) {
      if (arc.from == n && --indegree[arc.to] == 0) ready.push_back(arc.to);
    }
  }
  if (order.size() != nodes_.size()) {
    return Error::make("graph contains a cycle", "graph");
  }
  return order;
}

mwsec::Status Graph::validate() const {
  if (nodes_.empty()) return Error::make("graph is empty", "graph");
  if (!exit_.has_value()) {
    return Error::make("graph has no exit node", "graph");
  }
  // Every operand port bound exactly once (arc or literal or entry).
  std::vector<std::map<std::size_t, int>> bound(nodes_.size());
  for (const auto& arc : arcs_) ++bound[arc.to][arc.port];
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (const auto& [port, _] : nodes_[i].literals) ++bound[i][port];
  }
  for (const auto& [node, port] : entries_) ++bound[node][port];
  for (NodeId i = 0; i < nodes_.size(); ++i) {
    for (std::size_t p = 0; p < nodes_[i].arity; ++p) {
      auto it = bound[i].find(p);
      int count = it == bound[i].end() ? 0 : it->second;
      if (count == 0) {
        return Error::make("node " + nodes_[i].name + " port " +
                               std::to_string(p) + " is unbound",
                           "graph");
      }
      if (count > 1) {
        return Error::make("node " + nodes_[i].name + " port " +
                               std::to_string(p) + " is multiply bound",
                           "graph");
      }
    }
    if (nodes_[i].condensed != nullptr) {
      if (auto s = nodes_[i].condensed->validate(); !s.ok()) {
        return Error::make("condensed node " + nodes_[i].name + ": " +
                               s.error().message,
                           "graph");
      }
    }
  }
  auto order = topological_order();
  if (!order.ok()) return order.error();
  return {};
}

}  // namespace mwsec::webcom
