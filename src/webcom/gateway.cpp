#include "webcom/gateway.hpp"

#include "crypto/sha256.hpp"
#include "util/encoding.hpp"

namespace mwsec::webcom {

std::string SubmitRequest::canonical_body() const {
  // The graph bytes are hashed rather than embedded so the signed body
  // stays small and text-safe.
  return "submit\nsubmitter:" + submitter + "\ngraph:" + graph_name +
         "\nsha256:" + crypto::Sha256::hex(util::to_string(graph_bytes)) +
         "\ncredentials:\n" + credentials;
}

void SubmitRequest::sign(const crypto::Identity& identity) {
  submitter = identity.principal();
  signature = identity.sign(canonical_body());
}

mwsec::Status SubmitRequest::verify() const {
  if (signature.empty()) {
    return Error::make("submission is unsigned", "gateway");
  }
  if (!crypto::verify_message(submitter, canonical_body(), signature)) {
    return Error::make("submission signature invalid", "gateway");
  }
  return {};
}

util::Bytes SubmitRequest::encode() const {
  util::ByteWriter w;
  w.str(submitter);
  w.str(graph_name);
  w.blob(graph_bytes);
  w.str(credentials);
  w.str(signature);
  return w.take();
}

mwsec::Result<SubmitRequest> SubmitRequest::decode(
    const util::Bytes& payload) {
  util::ByteReader r(payload);
  SubmitRequest out;
  auto submitter = r.str();
  if (!submitter.ok()) return submitter.error();
  out.submitter = std::move(submitter).take();
  auto name = r.str();
  if (!name.ok()) return name.error();
  out.graph_name = std::move(name).take();
  auto graph = r.blob();
  if (!graph.ok()) return graph.error();
  out.graph_bytes = std::move(graph).take();
  auto creds = r.str();
  if (!creds.ok()) return creds.error();
  out.credentials = std::move(creds).take();
  auto sig = r.str();
  if (!sig.ok()) return sig.error();
  out.signature = std::move(sig).take();
  if (!r.exhausted()) return Error::make("trailing bytes", "wire");
  return out;
}

util::Bytes SubmitReply::encode() const {
  util::ByteWriter w;
  w.u8(ok ? 1 : 0);
  w.str(value);
  w.str(code);
  return w.take();
}

mwsec::Result<SubmitReply> SubmitReply::decode(const util::Bytes& payload) {
  util::ByteReader r(payload);
  SubmitReply out;
  auto ok = r.u8();
  if (!ok.ok()) return ok.error();
  out.ok = *ok != 0;
  auto value = r.str();
  if (!value.ok()) return value.error();
  out.value = std::move(value).take();
  auto code = r.str();
  if (!code.ok()) return code.error();
  out.code = std::move(code).take();
  return out;
}

Gateway::Gateway(net::Transport& network, std::string endpoint_name,
                 Master& master)
    : network_(network), endpoint_name_(std::move(endpoint_name)),
      master_(master) {}

Gateway::~Gateway() { stop(); }

mwsec::Status Gateway::start() {
  auto ep = network_.open(endpoint_name_);
  if (!ep.ok()) return ep.error();
  endpoint_ = std::move(ep).take();
  thread_ = std::jthread([this](std::stop_token st) {
    while (!st.stop_requested()) {
      serve();
      if (endpoint_->closed()) return;
    }
  });
  return {};
}

void Gateway::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

Gateway::Stats Gateway::stats() const {
  std::scoped_lock lock(stats_mu_);
  return stats_;
}

void Gateway::serve() {
  auto message = endpoint_->receive(std::chrono::milliseconds(50));
  if (!message.has_value() || message->subject != kSubjectSubmit) return;

  SubmitReply reply;
  auto respond = [&] {
    endpoint_->send(message->from, kSubjectSubmitResult, reply.encode()).ok();
  };
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.submissions;
  }
  auto reject = [&](const std::string& why, const char* code) {
    reply.ok = false;
    reply.value = why;
    reply.code = code;
    std::scoped_lock lock(stats_mu_);
    ++stats_.rejected;
  };

  auto request = SubmitRequest::decode(message->payload);
  if (!request.ok()) {
    reject(request.error().message, "wire");
    respond();
    return;
  }
  if (auto s = request->verify(); !s.ok()) {
    reject(s.error().message, "gateway");
    respond();
    return;
  }

  // Authorise the submission itself.
  std::vector<keynote::Assertion> presented;
  if (!request->credentials.empty()) {
    auto bundle = keynote::Assertion::parse_bundle(request->credentials);
    if (!bundle.ok()) {
      reject(bundle.error().message, "gateway");
      respond();
      return;
    }
    presented = std::move(bundle).take();
  }
  keynote::Query q;
  q.action_authorizers = {request->submitter};
  q.env.set("app_domain", "WebCom");
  q.env.set("Operation", "submit");
  q.env.set("Graph", request->graph_name);
  auto verdict = store_.query(q, presented);
  if (!verdict.ok() || !verdict->authorized()) {
    reject("submitter is not authorised to run " + request->graph_name,
           "denied");
    respond();
    return;
  }

  auto graph = decode_graph(request->graph_bytes);
  if (!graph.ok()) {
    reject(graph.error().message, "wire");
    respond();
    return;
  }
  auto value = master_.execute(*graph);
  if (!value.ok()) {
    reject(value.error().message,
           value.error().code.empty() ? "webcom" : value.error().code.c_str());
    respond();
    return;
  }
  reply.ok = true;
  reply.value = std::move(value).take();
  {
    std::scoped_lock lock(stats_mu_);
    ++stats_.accepted;
  }
  respond();
}

mwsec::Result<SubmitReply> submit_graph(net::Endpoint& from,
                                        const std::string& gateway_endpoint,
                                        const SubmitRequest& request,
                                        std::chrono::milliseconds timeout) {
  if (auto s = from.send(gateway_endpoint, kSubjectSubmit, request.encode());
      !s.ok()) {
    return s.error();
  }
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    auto message = from.receive(std::chrono::milliseconds(20));
    if (message.has_value() && message->subject == kSubjectSubmitResult) {
      return SubmitReply::decode(message->payload);
    }
  }
  return Error::make("gateway did not reply in time", "gateway");
}

}  // namespace mwsec::webcom
