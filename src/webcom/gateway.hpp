// The WebCom submission gateway: Figure 3's left edge, where *untrusted
// principals* connect and ask a Secure WebCom environment to execute an
// operation. A submitter ships a signed, serialised condensed graph plus
// supporting credentials; the gateway authorises the submission through
// its KeyNote store (attributes: app_domain=WebCom, Operation=submit,
// plus the graph's name), executes it on the attached master, and
// returns the exit value.
#pragma once

#include <thread>

#include "keynote/store.hpp"
#include "net/transport.hpp"
#include "webcom/graph_io.hpp"
#include "webcom/scheduler.hpp"

namespace mwsec::webcom {

inline constexpr const char* kSubjectSubmit = "submit-graph";
inline constexpr const char* kSubjectSubmitResult = "submit-result";

struct SubmitRequest {
  std::string submitter;    ///< principal of the requesting key
  std::string graph_name;   ///< application name (for mediation/audit)
  util::Bytes graph_bytes;  ///< encode_graph() payload
  std::string credentials;  ///< assertion bundle text
  std::string signature;    ///< submitter's signature over canonical body

  std::string canonical_body() const;
  void sign(const crypto::Identity& identity);
  mwsec::Status verify() const;
  util::Bytes encode() const;
  static mwsec::Result<SubmitRequest> decode(const util::Bytes& payload);
};

struct SubmitReply {
  bool ok = false;
  std::string value;  ///< exit value or diagnostic
  std::string code;

  util::Bytes encode() const;
  static mwsec::Result<SubmitReply> decode(const util::Bytes& payload);
};

class Gateway {
 public:
  /// The gateway executes submissions on `master` (which it does not own).
  Gateway(net::Transport& network, std::string endpoint_name, Master& master);
  ~Gateway();

  /// Trust root: who may submit what. Queried with attributes
  /// app_domain="WebCom", Operation="submit", Graph=<graph_name>.
  keynote::CredentialStore& store() { return store_; }

  mwsec::Status start();
  void stop();

  struct Stats {
    std::uint64_t submissions = 0;
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;
  };
  Stats stats() const;

 private:
  void serve();

  net::Transport& network_;
  std::string endpoint_name_;
  Master& master_;
  keynote::CredentialStore store_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::jthread thread_;
  mutable std::mutex stats_mu_;
  Stats stats_;
};

/// Client helper: submit and await the result.
mwsec::Result<SubmitReply> submit_graph(
    net::Endpoint& from, const std::string& gateway_endpoint,
    const SubmitRequest& request,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(2000));

}  // namespace mwsec::webcom
