#include "webcom/ops.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

#include "crypto/sha256.hpp"

namespace mwsec::webcom {

namespace {
mwsec::Result<long long> to_int(const Value& v) {
  long long out = 0;
  auto [ptr, ec] = std::from_chars(v.data(), v.data() + v.size(), out);
  if (ec != std::errc() || ptr != v.data() + v.size()) {
    return Error::make("not an integer: '" + v + "'", "ops");
  }
  return out;
}
}  // namespace

void OperationRegistry::add(std::string name, Operation op) {
  std::scoped_lock lock(*mu_);
  ops_[std::move(name)] = std::move(op);
}

bool OperationRegistry::has(const std::string& name) const {
  std::scoped_lock lock(*mu_);
  return ops_.count(name) > 0;
}

mwsec::Result<Value> OperationRegistry::invoke(
    const std::string& name, const std::vector<Value>& inputs) const {
  Operation op;
  {
    std::scoped_lock lock(*mu_);
    auto it = ops_.find(name);
    if (it == ops_.end()) {
      return Error::make("unknown operation: " + name, "ops");
    }
    op = it->second;
  }
  return op(inputs);
}

std::vector<std::string> OperationRegistry::names() const {
  std::scoped_lock lock(*mu_);
  std::vector<std::string> out;
  for (const auto& [name, _] : ops_) out.push_back(name);
  return out;
}

OperationRegistry OperationRegistry::with_builtins() {
  OperationRegistry r;
  r.add("const", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 1) return Error::make("const takes one input", "ops");
    return in[0];
  });
  r.add("concat", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    Value out;
    for (const auto& v : in) out += v;
    return out;
  });
  r.add("add", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 2) return Error::make("add takes two inputs", "ops");
    auto a = to_int(in[0]);
    if (!a.ok()) return a.error();
    auto b = to_int(in[1]);
    if (!b.ok()) return b.error();
    return std::to_string(*a + *b);
  });
  r.add("sub", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 2) return Error::make("sub takes two inputs", "ops");
    auto a = to_int(in[0]);
    if (!a.ok()) return a.error();
    auto b = to_int(in[1]);
    if (!b.ok()) return b.error();
    return std::to_string(*a - *b);
  });
  r.add("mul", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 2) return Error::make("mul takes two inputs", "ops");
    auto a = to_int(in[0]);
    if (!a.ok()) return a.error();
    auto b = to_int(in[1]);
    if (!b.ok()) return b.error();
    return std::to_string(*a * *b);
  });
  r.add("sum", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    long long total = 0;
    for (const auto& v : in) {
      auto x = to_int(v);
      if (!x.ok()) return x.error();
      total += *x;
    }
    return std::to_string(total);
  });
  r.add("upper", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 1) return Error::make("upper takes one input", "ops");
    Value out = in[0];
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::toupper(c));
    });
    return out;
  });
  r.add("len", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 1) return Error::make("len takes one input", "ops");
    return std::to_string(in[0].size());
  });
  r.add("if", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 3) return Error::make("if takes three inputs", "ops");
    return in[0] == "true" ? in[1] : in[2];
  });
  r.add("sha.hex", [](const std::vector<Value>& in) -> mwsec::Result<Value> {
    if (in.size() != 1) return Error::make("sha.hex takes one input", "ops");
    return crypto::Sha256::hex(in[0]);
  });
  return r;
}

}  // namespace mwsec::webcom
