// RBAC sessions: a user activates a subset of their assigned roles; access
// decisions consider only activated roles. What is activated is a
// *parameterized role instance* — a (domain, role) pair plus optional
// parameter bindings (e.g. Manager in Finance with project=apollo), per
// the parameterized-RBAC service model — so the same role template can be
// held under many bindings and each binding is activated, used and
// deactivated independently. Dynamic separation-of-duty and cardinality
// constraints are enforced at activation time. Thread-safe: WebCom
// schedules components under (domain, role, user) triples from worker
// threads (Section 6), and the load harness churns sessions from its
// driver while surfaces decide concurrently.
//
// Failures carry structured Error codes (the kSession* constants below)
// so callers can distinguish "unknown session" from "role not assigned"
// from a constraint violation without parsing messages.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "rbac/constraints.hpp"
#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::rbac {

using SessionId = std::uint64_t;

/// Machine-readable Error::code values for session operations.
inline constexpr const char* kSessionUnknown = "unknown-session";
inline constexpr const char* kSessionRoleNotAssigned = "role-not-assigned";
inline constexpr const char* kSessionRoleNotActive = "role-not-active";
inline constexpr const char* kSessionSod = "sod";
inline constexpr const char* kSessionCardinality = "cardinality";

/// One parameterized role instance: the unit of activation. `params` are
/// sorted name=value bindings beyond the (domain, role) pair itself; an
/// instance with different bindings is a different instance.
struct RoleInstance {
  std::string domain;
  std::string role;
  std::vector<std::pair<std::string, std::string>> params;

  auto operator<=>(const RoleInstance&) const = default;

  /// "Finance/Manager" or "Finance/Manager{project=apollo,tier=gold}".
  std::string label() const;
};

class SessionManager {
 public:
  explicit SessionManager(const Policy& policy,
                          const SodConstraints* dynamic_sod = nullptr,
                          const CardinalityConstraints* cardinality = nullptr)
      : policy_(policy), dynamic_sod_(dynamic_sod), cardinality_(cardinality) {}

  /// Open a session for `user` with no roles active.
  SessionId open(std::string user);

  /// Activate a role instance: the user must be assigned the instance's
  /// (domain, role), the instance must not clash (dynamic SoD) with an
  /// already-active one, and activation must not exceed a cardinality
  /// cap. Re-activating an already-active instance is an idempotent
  /// success. Error codes: kSessionUnknown, kSessionRoleNotAssigned,
  /// kSessionSod, kSessionCardinality.
  mwsec::Status activate(SessionId id, RoleInstance instance);
  mwsec::Status activate(SessionId id, const std::string& domain,
                         const std::string& role);

  /// Error codes: kSessionUnknown, kSessionRoleNotActive.
  mwsec::Status deactivate(SessionId id, const RoleInstance& instance);
  mwsec::Status deactivate(SessionId id, const std::string& domain,
                           const std::string& role);

  /// Decision over the session's *active* roles only.
  bool check(SessionId id, const std::string& object_type,
             const std::string& permission) const;

  std::vector<RoleAssignment> active_roles(SessionId id) const;
  std::vector<RoleInstance> active_instances(SessionId id) const;
  mwsec::Status close(SessionId id);
  std::size_t open_count() const;

 private:
  struct State {
    std::string user;
    std::set<RoleInstance> active;
  };
  const Policy& policy_;
  const SodConstraints* dynamic_sod_;
  const CardinalityConstraints* cardinality_;
  mutable std::mutex mu_;
  std::map<SessionId, State> sessions_;
  SessionId next_id_ = 1;
};

}  // namespace mwsec::rbac
