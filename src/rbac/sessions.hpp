// RBAC sessions: a user activates a subset of their assigned roles; access
// decisions consider only activated roles. Dynamic separation-of-duty is
// enforced at activation time. Thread-safe: WebCom schedules components
// under (domain, role, user) triples from worker threads (Section 6).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "rbac/constraints.hpp"
#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::rbac {

using SessionId = std::uint64_t;

class SessionManager {
 public:
  explicit SessionManager(const Policy& policy,
                          const SodConstraints* dynamic_sod = nullptr)
      : policy_(policy), dynamic_sod_(dynamic_sod) {}

  /// Open a session for `user` with no roles active.
  SessionId open(std::string user);

  /// Activate (domain, role): the user must be a member, and the role must
  /// not clash (dynamic SoD) with an already-active role.
  mwsec::Status activate(SessionId id, const std::string& domain,
                         const std::string& role);
  mwsec::Status deactivate(SessionId id, const std::string& domain,
                           const std::string& role);

  /// Decision over the session's *active* roles only.
  bool check(SessionId id, const std::string& object_type,
             const std::string& permission) const;

  std::vector<RoleAssignment> active_roles(SessionId id) const;
  mwsec::Status close(SessionId id);
  std::size_t open_count() const;

 private:
  struct State {
    std::string user;
    std::set<std::pair<std::string, std::string>> active;  // (domain, role)
  };
  const Policy& policy_;
  const SodConstraints* dynamic_sod_;
  mutable std::mutex mu_;
  std::map<SessionId, State> sessions_;
  SessionId next_id_ = 1;
};

}  // namespace mwsec::rbac
