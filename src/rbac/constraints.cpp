#include "rbac/constraints.hpp"

#include <tuple>

namespace mwsec::rbac {

namespace {
ExclusionPair canonical(std::string da, std::string ra, std::string db,
                        std::string rb) {
  if (std::tie(db, rb) < std::tie(da, ra)) {
    return ExclusionPair{std::move(db), std::move(rb), std::move(da),
                         std::move(ra)};
  }
  return ExclusionPair{std::move(da), std::move(ra), std::move(db),
                       std::move(rb)};
}
}  // namespace

mwsec::Status SodConstraints::add_exclusion(std::string da, std::string ra,
                                            std::string db, std::string rb) {
  if (da == db && ra == rb) {
    return Error::make("a role cannot exclude itself", "rbac");
  }
  pairs_.insert(canonical(std::move(da), std::move(ra), std::move(db),
                          std::move(rb)));
  return {};
}

bool SodConstraints::excludes(const std::string& da, const std::string& ra,
                              const std::string& db,
                              const std::string& rb) const {
  return pairs_.count(canonical(da, ra, db, rb)) > 0;
}

mwsec::Status SodConstraints::check_assignment(const Policy& policy,
                                               const std::string& user,
                                               const std::string& domain,
                                               const std::string& role) const {
  for (const auto& existing : policy.assignments_of(user)) {
    if (excludes(existing.domain, existing.role, domain, role)) {
      return Error::make("separation of duty: " + user + " already holds " +
                             existing.domain + "/" + existing.role +
                             ", exclusive with " + domain + "/" + role,
                         "sod");
    }
  }
  return {};
}

std::vector<std::string> SodConstraints::violations(
    const Policy& policy) const {
  std::vector<std::string> out;
  for (const auto& user : policy.users()) {
    auto memberships = policy.assignments_of(user);
    for (std::size_t i = 0; i < memberships.size(); ++i) {
      for (std::size_t j = i + 1; j < memberships.size(); ++j) {
        const auto& a = memberships[i];
        const auto& b = memberships[j];
        if (excludes(a.domain, a.role, b.domain, b.role)) {
          out.push_back(user + ": " + a.domain + "/" + a.role + " conflicts " +
                        b.domain + "/" + b.role);
        }
      }
    }
  }
  return out;
}

mwsec::Status CardinalityConstraints::set_max_active(std::size_t n) {
  if (n == 0) {
    return Error::make("max active roles must be positive", "cardinality");
  }
  max_active_ = n;
  return {};
}

mwsec::Status CardinalityConstraints::set_max_active_in(std::string domain,
                                                        std::size_t n) {
  if (domain.empty()) {
    return Error::make("domain must be non-empty", "cardinality");
  }
  if (n == 0) {
    return Error::make("max active roles must be positive", "cardinality");
  }
  per_domain_[std::move(domain)] = n;
  return {};
}

std::optional<std::size_t> CardinalityConstraints::max_active_in(
    const std::string& domain) const {
  auto it = per_domain_.find(domain);
  if (it == per_domain_.end()) return std::nullopt;
  return it->second;
}

mwsec::Status CardinalityConstraints::check_activation(
    const std::string& domain, std::size_t total, std::size_t in_domain) const {
  if (max_active_.has_value() && total >= *max_active_) {
    return Error::make("cardinality: session already has " +
                           std::to_string(total) + " active roles (cap " +
                           std::to_string(*max_active_) + ")",
                       "cardinality");
  }
  if (auto cap = max_active_in(domain);
      cap.has_value() && in_domain >= *cap) {
    return Error::make("cardinality: session already has " +
                           std::to_string(in_domain) + " active roles in " +
                           domain + " (cap " + std::to_string(*cap) + ")",
                       "cardinality");
  }
  return {};
}

}  // namespace mwsec::rbac
