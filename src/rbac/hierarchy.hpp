// Role hierarchies (RBAC1 of Sandhu et al. [26], an extension the paper's
// base model omits but every middleware eventually wants): a senior role
// inherits all permissions of its juniors within the same domain.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::rbac {

class RoleHierarchy {
 public:
  /// Declare that (domain, senior) inherits from (domain, junior).
  /// Rejected if it would create a cycle.
  mwsec::Status add_inheritance(const std::string& domain,
                                const std::string& senior,
                                const std::string& junior);
  bool remove_inheritance(const std::string& domain, const std::string& senior,
                          const std::string& junior);

  /// The junior roles (domain-local) a role inherits from, transitively,
  /// including the role itself.
  std::vector<std::string> reachable_juniors(const std::string& domain,
                                             const std::string& role) const;

  /// Decision with inheritance: user has permission if any role reachable
  /// (downwards) from one of their assigned roles carries it.
  bool check(const Policy& policy, const AccessRequest& request) const;

  /// Flatten: produce an equivalent Policy with inheritance compiled away
  /// (each senior role receives explicit copies of inherited grants).
  /// Used before translating to middlewares that lack hierarchies.
  Policy flatten(const Policy& policy) const;

  bool empty() const { return edges_.empty(); }

 private:
  struct Key {
    std::string domain;
    std::string role;
    auto operator<=>(const Key&) const = default;
  };
  bool reaches(const Key& from, const Key& to) const;

  std::map<Key, std::set<std::string>> edges_;  // senior -> juniors
};

}  // namespace mwsec::rbac
