#include "rbac/model.hpp"

#include <algorithm>
#include <sstream>

namespace mwsec::rbac {

namespace {
mwsec::Status require_nonempty(std::initializer_list<const std::string*> parts,
                               const char* what) {
  for (const std::string* p : parts) {
    if (p->empty()) {
      return Error::make(std::string(what) + " has an empty component",
                         "rbac");
    }
  }
  return {};
}
}  // namespace

mwsec::Status Policy::grant(PermissionGrant g) {
  if (auto s = require_nonempty(
          {&g.domain, &g.role, &g.object_type, &g.permission},
          "permission grant");
      !s.ok()) {
    return s;
  }
  grants_.insert(std::move(g));
  return {};
}

mwsec::Status Policy::grant(std::string domain, std::string role,
                            std::string object_type, std::string permission) {
  return grant(PermissionGrant{std::move(domain), std::move(role),
                               std::move(object_type), std::move(permission)});
}

bool Policy::revoke_grant(const PermissionGrant& g) {
  return grants_.erase(g) > 0;
}

mwsec::Status Policy::assign(RoleAssignment a) {
  if (auto s = require_nonempty({&a.domain, &a.role, &a.user},
                                "role assignment");
      !s.ok()) {
    return s;
  }
  assignments_.insert(std::move(a));
  return {};
}

mwsec::Status Policy::assign(std::string user, std::string domain,
                             std::string role) {
  return assign(RoleAssignment{std::move(domain), std::move(role),
                               std::move(user)});
}

bool Policy::revoke_assignment(const RoleAssignment& a) {
  return assignments_.erase(a) > 0;
}

std::size_t Policy::remove_user(const std::string& user) {
  return std::erase_if(assignments_, [&](const RoleAssignment& a) {
    return a.user == user;
  });
}

std::size_t Policy::remove_role(const std::string& domain,
                                const std::string& role) {
  std::size_t n = std::erase_if(grants_, [&](const PermissionGrant& g) {
    return g.domain == domain && g.role == role;
  });
  n += std::erase_if(assignments_, [&](const RoleAssignment& a) {
    return a.domain == domain && a.role == role;
  });
  return n;
}

bool Policy::has_permission(const std::string& domain, const std::string& role,
                            const std::string& object_type,
                            const std::string& permission) const {
  return grants_.count({domain, role, object_type, permission}) > 0;
}

bool Policy::user_in_role(const std::string& user, const std::string& domain,
                          const std::string& role) const {
  return assignments_.count({domain, role, user}) > 0;
}

bool Policy::check(const AccessRequest& request) const {
  for (const auto& a : assignments_) {
    if (a.user != request.user) continue;
    if (grants_.count(
            {a.domain, a.role, request.object_type, request.permission})) {
      return true;
    }
  }
  return false;
}

std::vector<std::string> Policy::domains() const {
  std::set<std::string> out;
  for (const auto& g : grants_) out.insert(g.domain);
  for (const auto& a : assignments_) out.insert(a.domain);
  return {out.begin(), out.end()};
}

std::vector<std::string> Policy::roles_in(const std::string& domain) const {
  std::set<std::string> out;
  for (const auto& g : grants_) {
    if (g.domain == domain) out.insert(g.role);
  }
  for (const auto& a : assignments_) {
    if (a.domain == domain) out.insert(a.role);
  }
  return {out.begin(), out.end()};
}

std::vector<std::string> Policy::users() const {
  std::set<std::string> out;
  for (const auto& a : assignments_) out.insert(a.user);
  return {out.begin(), out.end()};
}

std::vector<RoleAssignment> Policy::assignments_of(
    const std::string& user) const {
  std::vector<RoleAssignment> out;
  for (const auto& a : assignments_) {
    if (a.user == user) out.push_back(a);
  }
  return out;
}

std::vector<PermissionGrant> Policy::grants_of(const std::string& domain,
                                               const std::string& role) const {
  std::vector<PermissionGrant> out;
  for (const auto& g : grants_) {
    if (g.domain == domain && g.role == role) out.push_back(g);
  }
  return out;
}

std::vector<std::string> Policy::object_types() const {
  std::set<std::string> out;
  for (const auto& g : grants_) out.insert(g.object_type);
  return {out.begin(), out.end()};
}

Policy Policy::merge(const Policy& a, const Policy& b) {
  Policy out = a;
  out.grants_.insert(b.grants_.begin(), b.grants_.end());
  out.assignments_.insert(b.assignments_.begin(), b.assignments_.end());
  return out;
}

Policy::Diff Policy::diff(const Policy& from, const Policy& to) {
  Diff d;
  std::set_difference(to.grants_.begin(), to.grants_.end(),
                      from.grants_.begin(), from.grants_.end(),
                      std::back_inserter(d.grants_added));
  std::set_difference(from.grants_.begin(), from.grants_.end(),
                      to.grants_.begin(), to.grants_.end(),
                      std::back_inserter(d.grants_removed));
  std::set_difference(to.assignments_.begin(), to.assignments_.end(),
                      from.assignments_.begin(), from.assignments_.end(),
                      std::back_inserter(d.assignments_added));
  std::set_difference(from.assignments_.begin(), from.assignments_.end(),
                      to.assignments_.begin(), to.assignments_.end(),
                      std::back_inserter(d.assignments_removed));
  return d;
}

std::string Policy::to_table() const {
  std::ostringstream os;
  os << "HasPermission (Domain, Role, ObjectType, Permission):\n";
  for (const auto& g : grants_) {
    os << "  " << g.domain << " | " << g.role << " | " << g.object_type
       << " | " << g.permission << "\n";
  }
  os << "UserRole (Domain, Role, User):\n";
  for (const auto& a : assignments_) {
    os << "  " << a.domain << " | " << a.role << " | " << a.user << "\n";
  }
  return os.str();
}

mwsec::Result<Policy> Policy::parse_table(std::string_view text) {
  Policy p;
  enum class Section { kNone, kGrants, kAssignments } section = Section::kNone;
  std::size_t line_no = 0;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find('\n', start);
    std::string_view line = text.substr(
        start, end == std::string_view::npos ? std::string_view::npos
                                             : end - start);
    start = end == std::string_view::npos ? text.size() + 1 : end + 1;
    ++line_no;
    std::string_view trimmed = line;
    while (!trimmed.empty() && (trimmed.front() == ' ' || trimmed.front() == '\t')) {
      trimmed.remove_prefix(1);
    }
    while (!trimmed.empty() &&
           (trimmed.back() == ' ' || trimmed.back() == '\r')) {
      trimmed.remove_suffix(1);
    }
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (trimmed.rfind("HasPermission", 0) == 0) {
      section = Section::kGrants;
      continue;
    }
    if (trimmed.rfind("UserRole", 0) == 0) {
      section = Section::kAssignments;
      continue;
    }
    // A data row: fields separated by '|'.
    std::vector<std::string> fields;
    std::size_t fstart = 0;
    std::string row(trimmed);
    while (true) {
      std::size_t bar = row.find('|', fstart);
      std::string field = row.substr(
          fstart, bar == std::string::npos ? std::string::npos : bar - fstart);
      // Trim the field.
      std::size_t b = field.find_first_not_of(" \t");
      std::size_t e = field.find_last_not_of(" \t");
      fields.push_back(b == std::string::npos
                           ? std::string()
                           : field.substr(b, e - b + 1));
      if (bar == std::string::npos) break;
      fstart = bar + 1;
    }
    switch (section) {
      case Section::kNone:
        return Error::make("line " + std::to_string(line_no) +
                               ": data before a section header",
                           "rbac");
      case Section::kGrants: {
        if (fields.size() != 4) {
          return Error::make("line " + std::to_string(line_no) +
                                 ": HasPermission rows need 4 fields",
                             "rbac");
        }
        if (auto s = p.grant(fields[0], fields[1], fields[2], fields[3]);
            !s.ok()) {
          return Error::make("line " + std::to_string(line_no) + ": " +
                                 s.error().message,
                             "rbac");
        }
        break;
      }
      case Section::kAssignments: {
        if (fields.size() != 3) {
          return Error::make("line " + std::to_string(line_no) +
                                 ": UserRole rows need 3 fields",
                             "rbac");
        }
        if (auto s = p.assign(fields[2], fields[0], fields[1]); !s.ok()) {
          return Error::make("line " + std::to_string(line_no) + ": " +
                                 s.error().message,
                             "rbac");
        }
        break;
      }
    }
  }
  return p;
}

}  // namespace mwsec::rbac
