// Separation-of-duty constraints (RBAC2): pairs of roles no single user may
// hold together (static SoD) or activate together in one session (dynamic
// SoD, enforced by rbac::SessionManager).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::rbac {

struct ExclusionPair {
  std::string domain_a;
  std::string role_a;
  std::string domain_b;
  std::string role_b;

  auto operator<=>(const ExclusionPair&) const = default;
};

class SodConstraints {
 public:
  /// Declare (da, ra) and (db, rb) mutually exclusive. Stored in a
  /// canonical order so the pair is symmetric.
  mwsec::Status add_exclusion(std::string da, std::string ra, std::string db,
                              std::string rb);

  bool excludes(const std::string& da, const std::string& ra,
                const std::string& db, const std::string& rb) const;

  /// Would assigning `user` to (domain, role) violate static SoD given the
  /// user's current memberships in `policy`?
  mwsec::Status check_assignment(const Policy& policy, const std::string& user,
                                 const std::string& domain,
                                 const std::string& role) const;

  /// Audit an entire policy: every (user, role-pair) violation found.
  std::vector<std::string> violations(const Policy& policy) const;

  const std::set<ExclusionPair>& exclusions() const { return pairs_; }

 private:
  std::set<ExclusionPair> pairs_;
};

}  // namespace mwsec::rbac
