// Constraints over role assignment and activation (RBAC2): separation of
// duty — pairs of roles no single user may hold together (static SoD) or
// activate together in one session (dynamic SoD) — and per-session
// active-role cardinality caps. Both kinds are enforced at activation
// time by rbac::SessionManager.
#pragma once

#include <cstddef>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::rbac {

struct ExclusionPair {
  std::string domain_a;
  std::string role_a;
  std::string domain_b;
  std::string role_b;

  auto operator<=>(const ExclusionPair&) const = default;
};

class SodConstraints {
 public:
  /// Declare (da, ra) and (db, rb) mutually exclusive. Stored in a
  /// canonical order so the pair is symmetric.
  mwsec::Status add_exclusion(std::string da, std::string ra, std::string db,
                              std::string rb);

  bool excludes(const std::string& da, const std::string& ra,
                const std::string& db, const std::string& rb) const;

  /// Would assigning `user` to (domain, role) violate static SoD given the
  /// user's current memberships in `policy`?
  mwsec::Status check_assignment(const Policy& policy, const std::string& user,
                                 const std::string& domain,
                                 const std::string& role) const;

  /// Audit an entire policy: every (user, role-pair) violation found.
  std::vector<std::string> violations(const Policy& policy) const;

  const std::set<ExclusionPair>& exclusions() const { return pairs_; }

 private:
  std::set<ExclusionPair> pairs_;
};

/// Per-session active-role cardinality (the "least privilege" knob of a
/// parameterized RBAC service): an overall cap on simultaneously active
/// role instances, plus optional tighter caps per domain. Unset = no
/// limit. Enforced by SessionManager at activation time.
class CardinalityConstraints {
 public:
  /// Cap the total number of simultaneously active role instances.
  mwsec::Status set_max_active(std::size_t n);
  /// Cap active instances within one domain.
  mwsec::Status set_max_active_in(std::string domain, std::size_t n);

  std::optional<std::size_t> max_active() const { return max_active_; }
  std::optional<std::size_t> max_active_in(const std::string& domain) const;

  /// Would activating one more instance in `domain` — given `total`
  /// currently-active instances, `in_domain` of them in `domain` —
  /// violate a cap? Error code "cardinality" when it would.
  mwsec::Status check_activation(const std::string& domain, std::size_t total,
                                 std::size_t in_domain) const;

 private:
  std::optional<std::size_t> max_active_;
  std::map<std::string, std::size_t> per_domain_;
};

}  // namespace mwsec::rbac
