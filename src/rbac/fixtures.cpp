#include "rbac/fixtures.hpp"

namespace mwsec::rbac {

Policy salaries_policy() {
  Policy p;
  const char* kObj = "SalariesDB";
  p.grant("Finance", "Clerk", kObj, "write").ok();
  p.grant("Finance", "Manager", kObj, "read").ok();
  p.grant("Finance", "Manager", kObj, "write").ok();
  p.grant("Sales", "Manager", kObj, "read").ok();
  // Sales/Assistant appears only in UserRole: "no access" in Figure 1.
  p.assign("Alice", "Finance", "Clerk").ok();
  p.assign("Bob", "Finance", "Manager").ok();
  p.assign("Claire", "Sales", "Manager").ok();
  p.assign("Dave", "Sales", "Assistant").ok();
  p.assign("Elaine", "Sales", "Manager").ok();
  return p;
}

Policy synthetic_policy(const SyntheticSpec& spec, std::uint64_t seed) {
  util::Rng rng(seed);
  Policy p;
  static const char* kPermissions[] = {"read",   "write", "create",
                                       "delete", "launch", "access"};
  for (std::size_t d = 0; d < spec.domains; ++d) {
    std::string domain = "dom" + std::to_string(d);
    for (std::size_t r = 0; r < spec.roles_per_domain; ++r) {
      std::string role = "role" + std::to_string(r);
      for (std::size_t g = 0; g < spec.permissions_per_role; ++g) {
        std::string object_type =
            "obj" + std::to_string(rng.below(spec.object_types));
        const char* perm = kPermissions[rng.below(std::size(kPermissions))];
        p.grant(domain, role, object_type, perm).ok();
      }
    }
  }
  for (std::size_t u = 0; u < spec.users; ++u) {
    std::string user = "user" + std::to_string(u);
    for (std::size_t r = 0; r < spec.roles_per_user; ++r) {
      std::string domain = "dom" + std::to_string(rng.below(spec.domains));
      std::string role = "role" + std::to_string(rng.below(spec.roles_per_domain));
      p.assign(user, domain, role).ok();
    }
  }
  return p;
}

}  // namespace mwsec::rbac
