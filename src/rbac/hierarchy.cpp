#include "rbac/hierarchy.hpp"

#include <deque>

namespace mwsec::rbac {

bool RoleHierarchy::reaches(const Key& from, const Key& to) const {
  if (from == to) return true;
  std::deque<Key> frontier{from};
  std::set<std::string> visited{from.role};
  while (!frontier.empty()) {
    Key cur = frontier.front();
    frontier.pop_front();
    auto it = edges_.find(cur);
    if (it == edges_.end()) continue;
    for (const auto& junior : it->second) {
      if (junior == to.role && cur.domain == to.domain) return true;
      if (visited.insert(junior).second) {
        frontier.push_back(Key{cur.domain, junior});
      }
    }
  }
  return false;
}

mwsec::Status RoleHierarchy::add_inheritance(const std::string& domain,
                                             const std::string& senior,
                                             const std::string& junior) {
  if (senior == junior) {
    return Error::make("a role cannot inherit from itself", "rbac");
  }
  // Adding senior->junior creates a cycle iff junior already reaches senior.
  if (reaches(Key{domain, junior}, Key{domain, senior})) {
    return Error::make("inheritance would create a cycle: " + domain + "/" +
                           senior + " -> " + junior,
                       "rbac");
  }
  edges_[Key{domain, senior}].insert(junior);
  return {};
}

bool RoleHierarchy::remove_inheritance(const std::string& domain,
                                       const std::string& senior,
                                       const std::string& junior) {
  auto it = edges_.find(Key{domain, senior});
  if (it == edges_.end()) return false;
  bool erased = it->second.erase(junior) > 0;
  if (it->second.empty()) edges_.erase(it);
  return erased;
}

std::vector<std::string> RoleHierarchy::reachable_juniors(
    const std::string& domain, const std::string& role) const {
  std::set<std::string> visited{role};
  std::deque<std::string> frontier{role};
  while (!frontier.empty()) {
    std::string cur = frontier.front();
    frontier.pop_front();
    auto it = edges_.find(Key{domain, cur});
    if (it == edges_.end()) continue;
    for (const auto& junior : it->second) {
      if (visited.insert(junior).second) frontier.push_back(junior);
    }
  }
  return {visited.begin(), visited.end()};
}

bool RoleHierarchy::check(const Policy& policy,
                          const AccessRequest& request) const {
  for (const auto& a : policy.assignments_of(request.user)) {
    for (const auto& role : reachable_juniors(a.domain, a.role)) {
      if (policy.has_permission(a.domain, role, request.object_type,
                                request.permission)) {
        return true;
      }
    }
  }
  return false;
}

Policy RoleHierarchy::flatten(const Policy& policy) const {
  Policy out = policy;
  for (const auto& [senior, _] : edges_) {
    for (const auto& junior : reachable_juniors(senior.domain, senior.role)) {
      for (const auto& g : policy.grants_of(senior.domain, junior)) {
        out.grant(senior.domain, senior.role, g.object_type, g.permission)
            .ok();
      }
    }
  }
  return out;
}

}  // namespace mwsec::rbac
