// The common RBAC model of Section 2 of the paper.
//
// RBAC is defined over Users, Roles and Permissions, extended with Domain
// (a logical grouping of roles — department, NT domain, EJB container...)
// and ObjectType (the kind of object a permission applies to). A policy is
// two relations:
//
//   HasPermission ⊆ Domain × Role × ObjectType × Permission
//   UserRole      ⊆ Domain × Role × User
//
// This is the interlingua every middleware policy is mapped into and out
// of (translate/), and the vocabulary of the KeyNote encoding (Figure 5).
#pragma once

#include <compare>
#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mwsec::rbac {

/// One row of the HasPermission relation: (domain, role) holds
/// `permission` over objects of `object_type`.
struct PermissionGrant {
  std::string domain;
  std::string role;
  std::string object_type;
  std::string permission;

  auto operator<=>(const PermissionGrant&) const = default;
};

/// One row of the UserRole relation: `user` is a member of (domain, role).
struct RoleAssignment {
  std::string domain;
  std::string role;
  std::string user;

  auto operator<=>(const RoleAssignment&) const = default;
};

/// An access request to decide: may `user` exercise `permission` on
/// objects of `object_type`?
struct AccessRequest {
  std::string user;
  std::string object_type;
  std::string permission;
};

class Policy {
 public:
  // --- administration ------------------------------------------------------
  /// Add a HasPermission row. Rejects rows with empty components.
  mwsec::Status grant(PermissionGrant g);
  mwsec::Status grant(std::string domain, std::string role,
                      std::string object_type, std::string permission);
  /// Remove a row; returns false if it was absent.
  bool revoke_grant(const PermissionGrant& g);

  /// Add a UserRole row. The (domain, role) pair need not already appear
  /// in HasPermission — a role may exist with no permissions yet.
  mwsec::Status assign(RoleAssignment a);
  mwsec::Status assign(std::string user, std::string domain, std::string role);
  bool revoke_assignment(const RoleAssignment& a);

  /// Remove a user everywhere (the "revoke an individual's rights without
  /// touching objects" operation RBAC is praised for in Section 2).
  std::size_t remove_user(const std::string& user);
  /// Drop a role: its grants and memberships.
  std::size_t remove_role(const std::string& domain, const std::string& role);

  // --- queries --------------------------------------------------------------
  bool has_permission(const std::string& domain, const std::string& role,
                      const std::string& object_type,
                      const std::string& permission) const;
  bool user_in_role(const std::string& user, const std::string& domain,
                    const std::string& role) const;
  /// Decision for an access request: true iff some role membership of the
  /// user carries the permission.
  bool check(const AccessRequest& request) const;

  std::vector<std::string> domains() const;
  std::vector<std::string> roles_in(const std::string& domain) const;
  std::vector<std::string> users() const;
  std::vector<RoleAssignment> assignments_of(const std::string& user) const;
  std::vector<PermissionGrant> grants_of(const std::string& domain,
                                         const std::string& role) const;
  std::vector<std::string> object_types() const;

  const std::set<PermissionGrant>& grants() const { return grants_; }
  const std::set<RoleAssignment>& assignments() const { return assignments_; }
  bool empty() const { return grants_.empty() && assignments_.empty(); }

  bool operator==(const Policy& o) const = default;

  // --- composition ----------------------------------------------------------
  /// Union of both policies' relations.
  static Policy merge(const Policy& a, const Policy& b);

  struct Diff {
    std::vector<PermissionGrant> grants_added;
    std::vector<PermissionGrant> grants_removed;
    std::vector<RoleAssignment> assignments_added;
    std::vector<RoleAssignment> assignments_removed;
    bool empty() const {
      return grants_added.empty() && grants_removed.empty() &&
             assignments_added.empty() && assignments_removed.empty();
    }
  };
  /// Changes needed to turn `from` into `to`.
  static Diff diff(const Policy& from, const Policy& to);

  // --- presentation ---------------------------------------------------------
  /// Render both relations in the two-table layout of Figure 1.
  std::string to_table() const;
  /// Parse the to_table() format back into a Policy (used by the CLI
  /// tools to read policy files).
  static mwsec::Result<Policy> parse_table(std::string_view text);

 private:
  std::set<PermissionGrant> grants_;
  std::set<RoleAssignment> assignments_;
};

}  // namespace mwsec::rbac
