#include "rbac/sessions.hpp"

namespace mwsec::rbac {

SessionId SessionManager::open(std::string user) {
  std::scoped_lock lock(mu_);
  SessionId id = next_id_++;
  sessions_[id] = State{std::move(user), {}};
  return id;
}

mwsec::Status SessionManager::activate(SessionId id, const std::string& domain,
                                       const std::string& role) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Error::make("unknown session", "session");
  State& st = it->second;
  if (!policy_.user_in_role(st.user, domain, role)) {
    return Error::make(st.user + " is not a member of " + domain + "/" + role,
                       "session");
  }
  if (dynamic_sod_ != nullptr) {
    for (const auto& [ad, ar] : st.active) {
      if (dynamic_sod_->excludes(ad, ar, domain, role)) {
        return Error::make("dynamic separation of duty: " + ad + "/" + ar +
                               " is active and exclusive with " + domain +
                               "/" + role,
                           "sod");
      }
    }
  }
  st.active.emplace(domain, role);
  return {};
}

mwsec::Status SessionManager::deactivate(SessionId id,
                                         const std::string& domain,
                                         const std::string& role) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return Error::make("unknown session", "session");
  if (it->second.active.erase({domain, role}) == 0) {
    return Error::make("role not active", "session");
  }
  return {};
}

bool SessionManager::check(SessionId id, const std::string& object_type,
                           const std::string& permission) const {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  for (const auto& [domain, role] : it->second.active) {
    if (policy_.has_permission(domain, role, object_type, permission)) {
      return true;
    }
  }
  return false;
}

std::vector<RoleAssignment> SessionManager::active_roles(SessionId id) const {
  std::scoped_lock lock(mu_);
  std::vector<RoleAssignment> out;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return out;
  for (const auto& [domain, role] : it->second.active) {
    out.push_back(RoleAssignment{domain, role, it->second.user});
  }
  return out;
}

mwsec::Status SessionManager::close(SessionId id) {
  std::scoped_lock lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Error::make("unknown session", "session");
  }
  return {};
}

std::size_t SessionManager::open_count() const {
  std::scoped_lock lock(mu_);
  return sessions_.size();
}

}  // namespace mwsec::rbac
