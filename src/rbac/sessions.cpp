#include "rbac/sessions.hpp"

#include <algorithm>

namespace mwsec::rbac {

std::string RoleInstance::label() const {
  std::string out = domain + "/" + role;
  if (!params.empty()) {
    out += "{";
    for (std::size_t i = 0; i < params.size(); ++i) {
      if (i != 0) out += ",";
      out += params[i].first + "=" + params[i].second;
    }
    out += "}";
  }
  return out;
}

SessionId SessionManager::open(std::string user) {
  std::scoped_lock lock(mu_);
  SessionId id = next_id_++;
  sessions_[id] = State{std::move(user), {}};
  return id;
}

mwsec::Status SessionManager::activate(SessionId id, RoleInstance instance) {
  // Canonicalise the binding order so {a=1,b=2} and {b=2,a=1} are the
  // same instance.
  std::sort(instance.params.begin(), instance.params.end());
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error::make("unknown session " + std::to_string(id),
                       kSessionUnknown);
  }
  State& st = it->second;
  if (!policy_.user_in_role(st.user, instance.domain, instance.role)) {
    return Error::make(st.user + " is not a member of " + instance.domain +
                           "/" + instance.role,
                       kSessionRoleNotAssigned);
  }
  if (st.active.count(instance) != 0) return {};  // idempotent
  if (dynamic_sod_ != nullptr) {
    for (const auto& act : st.active) {
      if (dynamic_sod_->excludes(act.domain, act.role, instance.domain,
                                 instance.role)) {
        return Error::make("dynamic separation of duty: " + act.label() +
                               " is active and exclusive with " +
                               instance.label(),
                           kSessionSod);
      }
    }
  }
  if (cardinality_ != nullptr) {
    std::size_t in_domain = 0;
    for (const auto& act : st.active) {
      if (act.domain == instance.domain) ++in_domain;
    }
    if (auto s = cardinality_->check_activation(instance.domain,
                                                st.active.size(), in_domain);
        !s.ok()) {
      return s;
    }
  }
  st.active.insert(std::move(instance));
  return {};
}

mwsec::Status SessionManager::activate(SessionId id, const std::string& domain,
                                       const std::string& role) {
  return activate(id, RoleInstance{domain, role, {}});
}

mwsec::Status SessionManager::deactivate(SessionId id,
                                         const RoleInstance& instance) {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Error::make("unknown session " + std::to_string(id),
                       kSessionUnknown);
  }
  RoleInstance key = instance;
  std::sort(key.params.begin(), key.params.end());
  if (it->second.active.erase(key) == 0) {
    return Error::make("role instance not active: " + key.label(),
                       kSessionRoleNotActive);
  }
  return {};
}

mwsec::Status SessionManager::deactivate(SessionId id,
                                         const std::string& domain,
                                         const std::string& role) {
  return deactivate(id, RoleInstance{domain, role, {}});
}

bool SessionManager::check(SessionId id, const std::string& object_type,
                           const std::string& permission) const {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return false;
  for (const auto& instance : it->second.active) {
    if (policy_.has_permission(instance.domain, instance.role, object_type,
                               permission)) {
      return true;
    }
  }
  return false;
}

std::vector<RoleAssignment> SessionManager::active_roles(SessionId id) const {
  std::scoped_lock lock(mu_);
  std::vector<RoleAssignment> out;
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return out;
  for (const auto& instance : it->second.active) {
    RoleAssignment a{instance.domain, instance.role, it->second.user};
    // Distinct bindings of one (domain, role) are one membership row.
    if (std::find(out.begin(), out.end(), a) == out.end()) {
      out.push_back(std::move(a));
    }
  }
  return out;
}

std::vector<RoleInstance> SessionManager::active_instances(
    SessionId id) const {
  std::scoped_lock lock(mu_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) return {};
  return {it->second.active.begin(), it->second.active.end()};
}

mwsec::Status SessionManager::close(SessionId id) {
  std::scoped_lock lock(mu_);
  if (sessions_.erase(id) == 0) {
    return Error::make("unknown session " + std::to_string(id),
                       kSessionUnknown);
  }
  return {};
}

std::size_t SessionManager::open_count() const {
  std::scoped_lock lock(mu_);
  return sessions_.size();
}

}  // namespace mwsec::rbac
