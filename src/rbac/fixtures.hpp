// Shared policy fixtures: the paper's Figure 1 Salaries Database policy
// and a seeded synthetic policy generator for tests and benchmarks.
#pragma once

#include "rbac/model.hpp"
#include "util/rng.hpp"

namespace mwsec::rbac {

/// The exact RBAC relations of Figure 1:
///   HasPermission: Finance/Clerk: write, Finance/Manager: read+write,
///                  Sales/Manager: read   (Sales/Assistant: no access)
///   UserRole:      Alice=Finance/Clerk, Bob=Finance/Manager,
///                  Claire=Sales/Manager, Dave=Sales/Assistant,
///                  Elaine=Sales/Manager
/// All permissions are on ObjectType "SalariesDB".
Policy salaries_policy();

/// Parameters for the synthetic workload generator used by the benches.
struct SyntheticSpec {
  std::size_t domains = 4;
  std::size_t roles_per_domain = 8;
  std::size_t object_types = 4;
  std::size_t permissions_per_role = 3;  // grants drawn per (domain, role)
  std::size_t users = 100;
  std::size_t roles_per_user = 2;
};

/// Deterministic random policy of the given shape.
Policy synthetic_policy(const SyntheticSpec& spec, std::uint64_t seed);

}  // namespace mwsec::rbac
