#include "keycom/service.hpp"

#include "authz/keynote_authorizer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwsec::keycom {

namespace {

struct KeycomMetrics {
  obs::Counter& requests;
  obs::Counter& bad_signatures;
  obs::Counter& rows_applied;
  obs::Counter& rows_rejected;
  obs::Histogram& apply_us;

  static KeycomMetrics& get() {
    auto& r = obs::Registry::global();
    static KeycomMetrics m{
        r.counter("keycom.requests"),      r.counter("keycom.bad_signatures"),
        r.counter("keycom.rows_applied"),  r.counter("keycom.rows_rejected"),
        r.histogram("keycom.apply_us"),
    };
    return m;
  }
};
void write_assignment(util::ByteWriter& w, const rbac::RoleAssignment& a) {
  w.str(a.domain);
  w.str(a.role);
  w.str(a.user);
}

mwsec::Result<rbac::RoleAssignment> read_assignment(util::ByteReader& r) {
  rbac::RoleAssignment a;
  auto d = r.str();
  if (!d.ok()) return d.error();
  a.domain = std::move(d).take();
  auto role = r.str();
  if (!role.ok()) return role.error();
  a.role = std::move(role).take();
  auto u = r.str();
  if (!u.ok()) return u.error();
  a.user = std::move(u).take();
  return a;
}
}  // namespace

std::string UpdateRequest::canonical_body() const {
  std::string out = "requester:" + requester + "\n";
  for (const auto& a : add_assignments) {
    out += "+ur:" + a.domain + "|" + a.role + "|" + a.user + "\n";
  }
  for (const auto& g : add_grants) {
    out += "+hp:" + g.domain + "|" + g.role + "|" + g.object_type + "|" +
           g.permission + "\n";
  }
  for (const auto& a : remove_assignments) {
    out += "-ur:" + a.domain + "|" + a.role + "|" + a.user + "\n";
  }
  out += "credentials:\n" + credentials;
  return out;
}

void UpdateRequest::sign(const crypto::Identity& identity) {
  requester = identity.principal();
  signature = identity.sign(canonical_body());
}

mwsec::Status UpdateRequest::verify() const {
  if (signature.empty()) {
    return Error::make("update request is unsigned", "keycom");
  }
  if (!crypto::verify_message(requester, canonical_body(), signature)) {
    return Error::make("update request signature invalid", "keycom");
  }
  return {};
}

util::Bytes UpdateRequest::encode() const {
  util::ByteWriter w;
  w.str(requester);
  w.u32(static_cast<std::uint32_t>(add_assignments.size()));
  for (const auto& a : add_assignments) write_assignment(w, a);
  w.u32(static_cast<std::uint32_t>(add_grants.size()));
  for (const auto& g : add_grants) {
    w.str(g.domain);
    w.str(g.role);
    w.str(g.object_type);
    w.str(g.permission);
  }
  w.u32(static_cast<std::uint32_t>(remove_assignments.size()));
  for (const auto& a : remove_assignments) write_assignment(w, a);
  w.str(credentials);
  w.str(signature);
  return w.take();
}

mwsec::Result<UpdateRequest> UpdateRequest::decode(
    const util::Bytes& payload) {
  util::ByteReader r(payload);
  UpdateRequest out;
  auto requester = r.str();
  if (!requester.ok()) return requester.error();
  out.requester = std::move(requester).take();

  auto n_assign = r.u32();
  if (!n_assign.ok()) return n_assign.error();
  for (std::uint32_t i = 0; i < *n_assign; ++i) {
    auto a = read_assignment(r);
    if (!a.ok()) return a.error();
    out.add_assignments.push_back(std::move(a).take());
  }
  auto n_grants = r.u32();
  if (!n_grants.ok()) return n_grants.error();
  for (std::uint32_t i = 0; i < *n_grants; ++i) {
    rbac::PermissionGrant g;
    for (std::string* field :
         {&g.domain, &g.role, &g.object_type, &g.permission}) {
      auto s = r.str();
      if (!s.ok()) return s.error();
      *field = std::move(s).take();
    }
    out.add_grants.push_back(std::move(g));
  }
  auto n_remove = r.u32();
  if (!n_remove.ok()) return n_remove.error();
  for (std::uint32_t i = 0; i < *n_remove; ++i) {
    auto a = read_assignment(r);
    if (!a.ok()) return a.error();
    out.remove_assignments.push_back(std::move(a).take());
  }
  auto creds = r.str();
  if (!creds.ok()) return creds.error();
  out.credentials = std::move(creds).take();
  auto sig = r.str();
  if (!sig.ok()) return sig.error();
  out.signature = std::move(sig).take();
  if (!r.exhausted()) {
    return Error::make("trailing bytes in update request", "wire");
  }
  return out;
}

bool Service::authorised(const authz::Authorizer& authorizer,
                         const std::string& requester,
                         const std::string& domain, const std::string& role,
                         const std::string& object_type,
                         const std::string& permission) {
  authz::Request request;
  request.principal = requester;
  request.object_type = object_type;
  request.permission = permission;
  request.domain = domain;
  request.role = role;
  return authorizer.decide(request).permitted();
}

mwsec::Result<UpdateReport> Service::apply(const UpdateRequest& request) {
  auto& metrics = KeycomMetrics::get();
  ++stats_.requests;
  metrics.requests.inc();
  obs::ScopedTimer timer(metrics.apply_us);
  auto span = obs::Tracer::global().root("keycom.apply");
  if (span.active()) {
    span.set_attr(obs::kAttrSystem, "KeyCOM/" + target_.name());
    span.set_attr(obs::kAttrPrincipal, request.requester);
    span.set_attr(obs::kAttrAction, "policy-update");
  }
  // Ambient context for the scope of the apply: a sync::Authority publish
  // triggered by this update (an admin pushing a revocation through
  // KeyCOM) roots its "sync.publish" span under this apply, so the whole
  // propagation tree hangs off the administrative action that caused it.
  obs::ScopedTraceContext ambient(span.context());
  if (auto s = request.verify(); !s.ok()) {
    ++stats_.bad_signatures;
    metrics.bad_signatures.inc();
    if (span.active()) {
      span.set_attr(obs::kAttrDecision, "deny");
      span.set_attr(obs::kAttrDeniedBy, "keycom-signature");
      span.set_attr(obs::kAttrReason, s.error().message);
      span.set_status("deny");
    }
    if (audit_ != nullptr) {
      audit_->record({"KeyCOM/" + target_.name(), request.requester,
                      "policy-update", false, s.error().message});
    }
    return s.error();
  }
  std::vector<keynote::Assertion> presented;
  if (!request.credentials.empty()) {
    auto bundle = keynote::Assertion::parse_bundle(request.credentials);
    if (!bundle.ok()) return bundle.error();
    presented = std::move(bundle).take();
  }
  // Verify and compile the presented bundle once; every row of this
  // request is then authorised against the same snapshot, through a
  // fixed-snapshot KeyNote authoriser — the same Verdict type every other
  // decision surface produces.
  authz::KeyNoteAuthorizer row_authz(store_.snapshot_with(presented),
                                     store_.version(), "keycom-delegation");

  UpdateReport report;
  rbac::Policy additions;
  for (const auto& a : request.add_assignments) {
    if (!authorised(row_authz, request.requester, a.domain, a.role, "", "")) {
      report.rejected.push_back("assignment " + a.domain + "/" + a.role +
                                " for " + a.user + ": requester lacks "
                                "delegated authority");
      continue;
    }
    additions.assign(a).ok();
  }
  for (const auto& g : request.add_grants) {
    if (!authorised(row_authz, request.requester, g.domain, g.role,
                    g.object_type, g.permission)) {
      report.rejected.push_back("grant " + g.domain + "/" + g.role + " " +
                                g.permission + " on " + g.object_type +
                                ": requester lacks delegated authority");
      continue;
    }
    additions.grant(g).ok();
  }

  if (!additions.empty()) {
    auto stats = target_.import_policy(additions);
    if (!stats.ok()) return stats.error();
    report.assignments_applied = stats->assignments_applied;
    report.grants_applied = stats->grants_applied;
    for (const auto& skipped : stats->skipped) {
      report.rejected.push_back("target store: " + skipped);
    }
  }

  // Revocation: withdrawing a membership requires the same authority as
  // granting it.
  std::vector<const rbac::RoleAssignment*> withdrawn;
  for (const auto& a : request.remove_assignments) {
    if (!authorised(row_authz, request.requester, a.domain, a.role, "", "")) {
      report.rejected.push_back("removal " + a.domain + "/" + a.role +
                                " for " + a.user + ": requester lacks "
                                "delegated authority");
      continue;
    }
    auto removed = target_.remove_assignment(a);
    if (removed.ok()) {
      ++report.assignments_removed;
      withdrawn.push_back(&a);
    } else {
      report.rejected.push_back("removal " + a.domain + "/" + a.role +
                                " for " + a.user + ": " +
                                removed.error().message);
    }
  }

  // Figures 7–8 end to end: applied writes propagate through the live
  // replication channel, not just into this service's native store.
  if (publisher_ != nullptr) {
    if (report.assignments_applied + report.grants_applied > 0) {
      // The presented chain proved the delegation; publishing it is what
      // makes the new authority visible to every subscribed store.
      // publish_credential is idempotent, so re-presented chains are
      // silent.
      for (const auto& cred : presented) {
        const auto before = publisher_->epoch();
        publisher_->publish_credential(cred).ok();
        if (publisher_->epoch() != before) ++stats_.credentials_published;
      }
    }
    for (const rbac::RoleAssignment* a : withdrawn) {
      auto principal = principals_.find(a->user);
      if (principal == principals_.end()) continue;
      if (publisher_->revoke_by_licensee(principal->second) != 0) {
        ++stats_.revocations_published;
      }
    }
  }

  stats_.rows_applied +=
      report.assignments_applied + report.grants_applied;
  stats_.rows_rejected += report.rejected.size();
  metrics.rows_applied.inc(report.assignments_applied +
                           report.grants_applied);
  metrics.rows_rejected.inc(report.rejected.size());
  if (span.active()) {
    span.set_attr(obs::kAttrDecision,
                  report.fully_applied() ? "permit" : "deny");
    span.set_attr("rows_applied",
                  std::to_string(report.assignments_applied +
                                 report.grants_applied));
    span.set_attr("rows_rejected", std::to_string(report.rejected.size()));
    if (!report.fully_applied()) {
      span.set_attr(obs::kAttrDeniedBy, row_authz.name());
      span.set_attr(obs::kAttrReason, report.rejected.front());
    }
    span.set_status(report.fully_applied() ? "permit" : "deny");
  }
  if (audit_ != nullptr) {
    audit_->record({"KeyCOM/" + target_.name(), request.requester,
                    "policy-update", report.fully_applied(),
                    std::to_string(report.assignments_applied +
                                   report.grants_applied) +
                        " rows applied, " +
                        std::to_string(report.rejected.size()) + " rejected"});
  }
  return report;
}

}  // namespace mwsec::keycom
