#include "keycom/server.hpp"

namespace mwsec::keycom {

util::Bytes encode_report(const UpdateReport& report, bool accepted,
                          const std::string& error) {
  util::ByteWriter w;
  w.u8(accepted ? 1 : 0);
  w.str(error);
  w.u64(report.assignments_applied);
  w.u64(report.grants_applied);
  w.u64(report.assignments_removed);
  w.u32(static_cast<std::uint32_t>(report.rejected.size()));
  for (const auto& r : report.rejected) w.str(r);
  return w.take();
}

mwsec::Result<DecodedReport> decode_report(const util::Bytes& payload) {
  util::ByteReader r(payload);
  DecodedReport out;
  auto accepted = r.u8();
  if (!accepted.ok()) return accepted.error();
  out.accepted = *accepted != 0;
  auto error = r.str();
  if (!error.ok()) return error.error();
  out.error = std::move(error).take();
  auto a = r.u64();
  if (!a.ok()) return a.error();
  out.report.assignments_applied = *a;
  auto g = r.u64();
  if (!g.ok()) return g.error();
  out.report.grants_applied = *g;
  auto rem = r.u64();
  if (!rem.ok()) return rem.error();
  out.report.assignments_removed = *rem;
  auto n = r.u32();
  if (!n.ok()) return n.error();
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto s = r.str();
    if (!s.ok()) return s.error();
    out.report.rejected.push_back(std::move(s).take());
  }
  return out;
}

Server::Server(net::Transport& network, std::string endpoint_name,
               Service& service)
    : network_(network), endpoint_name_(std::move(endpoint_name)),
      service_(service) {}

Server::~Server() { stop(); }

mwsec::Status Server::start() {
  auto ep = network_.open(endpoint_name_);
  if (!ep.ok()) return ep.error();
  endpoint_ = std::move(ep).take();
  thread_ = std::jthread([this](std::stop_token st) {
    while (!st.stop_requested()) {
      serve();
      if (endpoint_->closed()) return;
    }
  });
  return {};
}

void Server::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

void Server::serve() {
  auto message = endpoint_->receive(std::chrono::milliseconds(50));
  if (!message.has_value() || message->subject != kSubjectUpdate) return;
  auto request = UpdateRequest::decode(message->payload);
  util::Bytes reply;
  if (!request.ok()) {
    reply = encode_report({}, false, request.error().message);
  } else {
    auto report = service_.apply(*request);
    if (!report.ok()) {
      reply = encode_report({}, false, report.error().message);
    } else {
      reply = encode_report(*report, true, "");
    }
  }
  endpoint_->send(message->from, kSubjectReport, std::move(reply)).ok();
}

mwsec::Result<DecodedReport> submit_update(net::Endpoint& from,
                                           const std::string& service_endpoint,
                                           const UpdateRequest& request,
                                           std::chrono::milliseconds timeout) {
  if (auto s = from.send(service_endpoint, kSubjectUpdate, request.encode());
      !s.ok()) {
    return s.error();
  }
  auto deadline = std::chrono::steady_clock::now() + timeout;
  while (std::chrono::steady_clock::now() < deadline) {
    auto message = from.receive(std::chrono::milliseconds(20));
    if (message.has_value() && message->subject == kSubjectReport) {
      return decode_report(message->payload);
    }
  }
  return Error::make("KeyCOM service did not reply in time", "keycom");
}

}  // namespace mwsec::keycom
