// The KeyCOM automated administration service (paper §4.1, Figure 8).
//
// A KeyCOM service fronts one middleware policy store (originally the COM+
// catalogue of a Windows NT domain; here any middleware::SecuritySystem).
// It accepts *policy update requests*: a set of RBAC rows to commission or
// withdraw, signed by the requesting key, accompanied by the KeyNote
// credentials that prove the requester's delegated authority. If KeyNote
// authorises every row, the service updates the native policy — "an
// automated Windows/COM administrator", letting users delegate
// authorisation without a human in the loop.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "authz/authz.hpp"
#include "crypto/keys.hpp"
#include "keynote/compiled_store.hpp"
#include "middleware/common/audit.hpp"
#include "middleware/common/system.hpp"
#include "rbac/model.hpp"
#include "sync/authority.hpp"
#include "util/byte_buffer.hpp"

namespace mwsec::keycom {

struct UpdateRequest {
  std::string requester;  ///< principal (key) making the request
  std::vector<rbac::RoleAssignment> add_assignments;
  std::vector<rbac::PermissionGrant> add_grants;
  std::vector<rbac::RoleAssignment> remove_assignments;  ///< revocation
  /// KeyNote credential bundle proving the requester's authority.
  std::string credentials;
  /// Signature by the requester's key over canonical_body().
  std::string signature;

  /// Deterministic serialisation of everything except the signature.
  std::string canonical_body() const;
  /// Sign with the requester's identity (sets requester + signature).
  void sign(const crypto::Identity& identity);
  /// Check the signature against the requester principal.
  mwsec::Status verify() const;

  util::Bytes encode() const;
  static mwsec::Result<UpdateRequest> decode(const util::Bytes& payload);
};

struct UpdateReport {
  std::size_t assignments_applied = 0;
  std::size_t grants_applied = 0;
  std::size_t assignments_removed = 0;
  /// Rows refused, with reasons (unauthorised, inexpressible...).
  std::vector<std::string> rejected;

  bool fully_applied() const { return rejected.empty(); }
};

class Service {
 public:
  explicit Service(middleware::SecuritySystem& target,
                   middleware::AuditLog* audit = nullptr)
      : target_(target), audit_(audit) {}

  /// The service's local trust root: POLICY assertions saying whose
  /// updates it accepts (typically the WebCom administration key, whose
  /// authority users acquire by delegation).
  keynote::CompiledStore& trust_root() { return store_; }

  /// Route this service's delegation/revocation writes through a live
  /// replication authority (Figures 7–8 end to end): applied updates
  /// publish the presented credential chain, and applied membership
  /// withdrawals publish `revoke_by_licensee` for the revoked user's key
  /// — so every subscribed store (WebCom masters above all) flips the
  /// revoked principal to denied without anyone re-attaching. The
  /// authority must outlive the service.
  void set_publisher(sync::Authority* publisher) { publisher_ = publisher; }

  /// KeyCOM fronts a user directory (originally the NT domain): map an
  /// RBAC user name to its key so revocation rows can be published as
  /// principal revocations. Unmapped users revoke locally only.
  void register_principal(const std::string& user, std::string principal) {
    principals_[user] = std::move(principal);
  }

  /// Validate and apply a request. Per-row authorisation: each row is
  /// granted only if KeyNote derives authority for the requester over
  /// that row's attributes from the trust root plus the presented
  /// credentials. The presented bundle is verified and compiled once per
  /// request; every row then queries that one snapshot. Partial
  /// application is reported, not hidden.
  mwsec::Result<UpdateReport> apply(const UpdateRequest& request);

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t rows_applied = 0;
    std::uint64_t rows_rejected = 0;
    std::uint64_t bad_signatures = 0;
    std::uint64_t credentials_published = 0;
    std::uint64_t revocations_published = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Per-row check through the authz core: `authorizer` is a snapshot-mode
  /// KeyNoteAuthorizer over the store-plus-presented-bundle view.
  static bool authorised(const authz::Authorizer& authorizer,
                         const std::string& requester,
                         const std::string& domain, const std::string& role,
                         const std::string& object_type,
                         const std::string& permission);

  middleware::SecuritySystem& target_;
  middleware::AuditLog* audit_;
  keynote::CompiledStore store_;
  sync::Authority* publisher_ = nullptr;
  std::map<std::string, std::string> principals_;  ///< RBAC user -> key
  Stats stats_;
};

}  // namespace mwsec::keycom
