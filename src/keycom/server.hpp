// Network front-end for the KeyCOM service (Figure 8): a server thread
// accepting "policy-update" messages on an endpoint and a client helper
// that submits a request and awaits the report.
#pragma once

#include <thread>

#include "keycom/service.hpp"
#include "net/transport.hpp"

namespace mwsec::keycom {

inline constexpr const char* kSubjectUpdate = "policy-update";
inline constexpr const char* kSubjectReport = "policy-update-report";

/// Wire form of an UpdateReport.
util::Bytes encode_report(const UpdateReport& report, bool accepted,
                          const std::string& error);
struct DecodedReport {
  bool accepted = false;
  std::string error;
  UpdateReport report;
};
mwsec::Result<DecodedReport> decode_report(const util::Bytes& payload);

class Server {
 public:
  Server(net::Transport& network, std::string endpoint_name, Service& service);
  ~Server();

  mwsec::Status start();
  void stop();

 private:
  void serve();

  net::Transport& network_;
  std::string endpoint_name_;
  Service& service_;
  std::shared_ptr<net::Endpoint> endpoint_;
  std::jthread thread_;
};

/// Submit `request` from `from` to the service at `service_endpoint` and
/// wait up to `timeout` for the report.
mwsec::Result<DecodedReport> submit_update(
    net::Endpoint& from, const std::string& service_endpoint,
    const UpdateRequest& request,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(1000));

}  // namespace mwsec::keycom
