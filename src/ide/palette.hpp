// Middleware interrogation and the IDE component/security palettes
// (paper §6, Figure 11).
//
// The WebCom IDE builds distributed applications from middleware
// components. Interrogation extracts from each middleware (a) the
// components it offers and (b) the security policy governing them, so the
// IDE can show, for a highlighted component, every (domain, role, user)
// combination authorised to execute it — and so the programmer can attach
// a valid (possibly partial) placement to a graph node.
#pragma once

#include <string>
#include <vector>

#include "middleware/common/system.hpp"
#include "rbac/model.hpp"
#include "webcom/graph.hpp"

namespace mwsec::ide {

/// An authorised execution context for a component.
struct AuthorizedContext {
  std::string domain;
  std::string role;
  std::string user;

  auto operator<=>(const AuthorizedContext&) const = default;
};

struct PaletteEntry {
  middleware::Component component;
  std::string system;  ///< which middleware offers it ("COM+ winsrv1/...")
  /// Every (domain, role, user) authorised to execute the component.
  std::vector<AuthorizedContext> authorized;
};

struct Palette {
  std::vector<PaletteEntry> entries;

  const PaletteEntry* find(const std::string& component_id) const;
  /// Human-readable rendering (what Figure 11's panes show).
  std::string to_text() const;
};

class Interrogator {
 public:
  /// Register a middleware to interrogate. The pointer must outlive the
  /// Interrogator.
  void add_system(const middleware::SecuritySystem* system);

  /// Interrogate every registered system: components plus, from the
  /// exported RBAC policy, the authorised (domain, role, user) contexts.
  Palette build() const;

  /// Validate a programmer-chosen placement for a component: accepts any
  /// partial specification consistent with at least one authorised
  /// context (paper: "any valid combination ... a partial specification
  /// is also supported").
  mwsec::Status validate_target(const Palette& palette,
                                const std::string& component_id,
                                const webcom::SecurityTarget& target) const;

  /// Convenience: build the SecurityTarget for a graph node from a
  /// component plus a placement choice.
  static webcom::SecurityTarget make_target(const middleware::Component& c,
                                            std::string domain = {},
                                            std::string role = {},
                                            std::string user = {});

 private:
  std::vector<const middleware::SecuritySystem*> systems_;
};

}  // namespace mwsec::ide
