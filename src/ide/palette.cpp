#include "ide/palette.hpp"

#include <sstream>

namespace mwsec::ide {

const PaletteEntry* Palette::find(const std::string& component_id) const {
  for (const auto& entry : entries) {
    if (entry.component.id == component_id) return &entry;
  }
  return nullptr;
}

std::string Palette::to_text() const {
  std::ostringstream os;
  for (const auto& entry : entries) {
    os << entry.component.id << "  [" << entry.system << "]\n";
    if (entry.authorized.empty()) {
      os << "    (no authorised principals)\n";
    }
    for (const auto& ctx : entry.authorized) {
      os << "    " << ctx.domain << " / " << ctx.role << " / " << ctx.user
         << "\n";
    }
  }
  return os.str();
}

void Interrogator::add_system(const middleware::SecuritySystem* system) {
  systems_.push_back(system);
}

Palette Interrogator::build() const {
  Palette palette;
  for (const auto* system : systems_) {
    rbac::Policy policy = system->export_policy();
    for (const auto& component : system->components()) {
      PaletteEntry entry;
      entry.component = component;
      entry.system = system->kind() + " " + system->name();
      // A (domain, role, user) is authorised when the role both holds the
      // component's permission and has the user as a member.
      for (const auto& g : policy.grants()) {
        if (g.object_type != component.object_type ||
            g.permission != component.operation) {
          continue;
        }
        for (const auto& a : policy.assignments()) {
          if (a.domain == g.domain && a.role == g.role) {
            entry.authorized.push_back(
                AuthorizedContext{a.domain, a.role, a.user});
          }
        }
      }
      palette.entries.push_back(std::move(entry));
    }
  }
  return palette;
}

mwsec::Status Interrogator::validate_target(
    const Palette& palette, const std::string& component_id,
    const webcom::SecurityTarget& target) const {
  const PaletteEntry* entry = palette.find(component_id);
  if (entry == nullptr) {
    return Error::make("unknown component: " + component_id, "ide");
  }
  if (!target.object_type.empty() &&
      target.object_type != entry->component.object_type) {
    return Error::make("target object type does not match the component",
                       "ide");
  }
  if (!target.permission.empty() &&
      target.permission != entry->component.operation) {
    return Error::make("target permission does not match the component",
                       "ide");
  }
  for (const auto& ctx : entry->authorized) {
    if (!target.domain.empty() && target.domain != ctx.domain) continue;
    if (!target.role.empty() && target.role != ctx.role) continue;
    if (!target.user.empty() && target.user != ctx.user) continue;
    return {};  // at least one authorised context is consistent
  }
  return Error::make(
      "no authorised (domain, role, user) matches the requested placement "
      "for " + component_id,
      "ide");
}

webcom::SecurityTarget Interrogator::make_target(
    const middleware::Component& c, std::string domain, std::string role,
    std::string user) {
  webcom::SecurityTarget t;
  t.object_type = c.object_type;
  t.permission = c.operation;
  t.domain = std::move(domain);
  t.role = std::move(role);
  t.user = std::move(user);
  return t;
}

}  // namespace mwsec::ide
