#include "util/logging.hpp"

#include <cstdio>

namespace mwsec::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_level(LogLevel level) {
  std::scoped_lock lock(mu_);
  level_ = level;
}

LogLevel Logger::level() const {
  std::scoped_lock lock(mu_);
  return level_;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  std::scoped_lock lock(mu_);
  if (level > level_ || level_ == LogLevel::kOff) return;
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mwsec::util
