#include "util/logging.hpp"

#include <cstdio>

namespace mwsec::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  sink_.store(sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr,
              std::memory_order_release);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  // Re-check: callers normally come through MWSEC_LOG (already checked),
  // but log() is also a public entry point.
  if (!enabled(level)) return;
  // Snapshot the sink before taking the emit lock: set_sink never waits
  // on an emission in progress, and the shared_ptr keeps the functor this
  // call runs alive even if it is swapped out mid-emission.
  const auto sink = sink_.load(std::memory_order_acquire);
  std::scoped_lock lock(emit_mu_);
  if (sink != nullptr) {
    (*sink)(level, component, msg);
    return;
  }
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mwsec::util
