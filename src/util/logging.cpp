#include "util/logging.hpp"

#include <cstdio>

namespace mwsec::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}
thread_local std::uint64_t t_trace_id = 0;

}  // namespace

std::uint32_t this_thread_tag() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tag =
      next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

void set_current_trace_id(std::uint64_t trace_id) { t_trace_id = trace_id; }

std::uint64_t current_trace_id() { return t_trace_id; }

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  sink_.store(sink ? std::make_shared<const Sink>(std::move(sink)) : nullptr,
              std::memory_order_release);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  // Re-check: callers normally come through MWSEC_LOG (already checked),
  // but log() is also a public entry point.
  if (!enabled(level)) return;
  // Snapshot the sink before taking the emit lock: set_sink never waits
  // on an emission in progress, and the shared_ptr keeps the functor this
  // call runs alive even if it is swapped out mid-emission.
  const auto sink = sink_.load(std::memory_order_acquire);
  // Per-line prefix: thread tag always, the active trace id only while a
  // traced operation is in scope on this thread (so the trace segment
  // appears exactly when tracing is on and correlates lines with spans).
  char prefix[64];
  const std::uint64_t trace = current_trace_id();
  int n = trace != 0
              ? std::snprintf(prefix, sizeof prefix,
                              "[t%u] [trace %llu] ", this_thread_tag(),
                              static_cast<unsigned long long>(trace))
              : std::snprintf(prefix, sizeof prefix, "[t%u] ",
                              this_thread_tag());
  if (n < 0) n = 0;
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + msg.size());
  line.append(prefix, static_cast<std::size_t>(n));
  line.append(msg);
  std::scoped_lock lock(emit_mu_);
  if (sink != nullptr) {
    (*sink)(level, component, line);
    return;
  }
  std::fprintf(stderr, "[%s] [%.*s] %s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               line.c_str());
}

}  // namespace mwsec::util
