#include "util/logging.hpp"

#include <cstdio>

namespace mwsec::util {

namespace {
const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kDebug: return "DEBUG";
    default: return "?";
  }
}
}  // namespace

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::set_sink(Sink sink) {
  std::scoped_lock lock(mu_);
  sink_ = std::move(sink);
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view msg) {
  // Re-check under the lock: callers normally come through MWSEC_LOG
  // (already checked), but log() is also a public entry point.
  if (!enabled(level)) return;
  std::scoped_lock lock(mu_);
  if (sink_) {
    sink_(level, component, msg);
    return;
  }
  std::fprintf(stderr, "[%s] [%.*s] %.*s\n", level_name(level),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace mwsec::util
