// Small string helpers shared by the parsers, policy stores and tools.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mwsec::util {

/// Split `s` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Split `s` on `sep`, dropping empty fields and trimming whitespace.
std::vector<std::string> split_trimmed(std::string_view s, char sep);

/// Join `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lower-casing (policy identifiers are case-preserved but compared
/// case-insensitively in some middleware stores).
std::string to_lower(std::string_view s);

bool iequals(std::string_view a, std::string_view b);
bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Replace all occurrences of `from` in `s` with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// True if `s` parses fully as a decimal integer (optional leading '-').
bool is_integer(std::string_view s);

/// True if `s` parses fully as a floating point number.
bool is_number(std::string_view s);

/// Render a double the way KeyNote does for attribute values: integers
/// without a trailing ".0", otherwise shortest round-trip form.
std::string number_to_string(double v);

/// Levenshtein edit distance; used by the similarity metrics in translate/.
std::size_t edit_distance(std::string_view a, std::string_view b);

}  // namespace mwsec::util
