// A fixed worker pool with per-worker queues and work stealing.
//
// Built for the concurrent WebCom master (DESIGN.md §12): shard-affine
// work — an authz shard's cache entries, a wave of scheduling decisions —
// is submitted to a *specific* worker's queue with `submit_to`, so the
// steady state is shared-nothing (each worker drains its own queue and
// touches only its own shard's data). Stealing exists for balance, not
// for the common case: a worker that runs dry takes from the *back* of a
// victim's queue while the owner pops from the front, so owner and thief
// contend only when a queue is nearly empty.
//
// Tasks must not throw — the pool runs them on bare threads (the
// codebase reports failures through mwsec::Status, not exceptions).
//
// `parallel_for` is the scatter/gather primitive the scheduler and
// `CachingAuthorizer::decide_batch` use: contiguous index chunks are
// pinned one-per-worker and the calling thread executes the first chunk
// itself, so a pool of W workers applies W+1 threads to the loop and a
// 1-worker pool still overlaps the caller with one helper.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mwsec::util {

class TaskPool {
 public:
  using Task = std::function<void()>;

  /// Spawns `workers` threads (at least 1).
  explicit TaskPool(std::size_t workers);
  /// Drains every queued task, then joins the workers.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue on `worker % size()`'s own queue. The owning worker pops its
  /// queue front before thieves see the back — shard affinity holds
  /// whenever the pool keeps up.
  void submit_to(std::size_t worker, Task task);

  /// Enqueue on the next queue round-robin.
  void submit(Task task);

  /// Run fn(i) for every i in [0, n): contiguous chunks, one pinned per
  /// worker, calling thread included. Returns once every index has run.
  /// Do not call from inside a pool task (the worker would wait on work
  /// only it can run).
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Tasks executed by pool workers (not parallel_for chunks run inline
  /// by callers); diagnostics/tests.
  std::uint64_t tasks_executed() const {
    return executed_.load(std::memory_order_relaxed);
  }
  /// Tasks taken from another worker's queue; diagnostics/tests.
  std::uint64_t tasks_stolen() const {
    return stolen_.load(std::memory_order_relaxed);
  }

 private:
  struct Worker {
    std::mutex mu;
    std::deque<Task> queue;
    /// queue.size() mirrored for the lock-free "anything anywhere?" scan
    /// workers do before sleeping.
    std::atomic<std::size_t> depth{0};
  };

  void run(std::size_t me);
  bool try_pop(std::size_t me, Task& task);
  bool any_queued() const;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  /// Guards only the sleep/wake protocol; never held while running tasks.
  std::mutex sleep_mu_;
  std::condition_variable sleep_cv_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> next_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<std::uint64_t> stolen_{0};
};

}  // namespace mwsec::util
