#include "util/task_pool.hpp"

#include <algorithm>

namespace mwsec::util {

TaskPool::TaskPool(std::size_t workers) {
  const std::size_t n = std::max<std::size_t>(1, workers);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { run(i); });
  }
}

TaskPool::~TaskPool() {
  {
    // The lock orders stop_ against the waiters' predicate check: a worker
    // between its predicate and its sleep cannot miss the flag.
    std::scoped_lock lock(sleep_mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  sleep_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void TaskPool::submit_to(std::size_t worker, Task task) {
  Worker& w = *workers_[worker % workers_.size()];
  {
    std::scoped_lock lock(w.mu);
    w.queue.push_back(std::move(task));
    w.depth.store(w.queue.size(), std::memory_order_release);
  }
  // Empty critical section: serialises against a worker that just saw
  // every queue empty and is about to wait — it either sees the depth
  // written above or wakes on the notify.
  { std::scoped_lock lock(sleep_mu_); }
  sleep_cv_.notify_one();
}

void TaskPool::submit(Task task) {
  submit_to(next_.fetch_add(1, std::memory_order_relaxed), std::move(task));
}

bool TaskPool::try_pop(std::size_t me, Task& task) {
  Worker& own = *workers_[me];
  {
    std::scoped_lock lock(own.mu);
    if (!own.queue.empty()) {
      task = std::move(own.queue.front());
      own.queue.pop_front();
      own.depth.store(own.queue.size(), std::memory_order_release);
      return true;
    }
  }
  const std::size_t n = workers_.size();
  for (std::size_t off = 1; off < n; ++off) {
    Worker& victim = *workers_[(me + off) % n];
    if (victim.depth.load(std::memory_order_acquire) == 0) continue;
    std::scoped_lock lock(victim.mu);
    if (victim.queue.empty()) continue;
    task = std::move(victim.queue.back());
    victim.queue.pop_back();
    victim.depth.store(victim.queue.size(), std::memory_order_release);
    stolen_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

bool TaskPool::any_queued() const {
  for (const auto& w : workers_) {
    if (w->depth.load(std::memory_order_acquire) != 0) return true;
  }
  return false;
}

void TaskPool::run(std::size_t me) {
  Task task;
  while (true) {
    if (try_pop(me, task)) {
      task();
      task = nullptr;  // release captures before sleeping
      executed_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    std::unique_lock lock(sleep_mu_);
    sleep_cv_.wait(lock, [&] {
      return stop_.load(std::memory_order_relaxed) || any_queued();
    });
    // Drain-on-stop: keep popping until every queue is empty so a task
    // submitted just before destruction still runs.
    if (stop_.load(std::memory_order_relaxed) && !any_queued()) return;
  }
}

void TaskPool::parallel_for(std::size_t n,
                            const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // The caller runs chunk 0; workers get the rest, pinned one per queue.
  const std::size_t parts = std::min(n, workers_.size() + 1);
  if (parts == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t chunk = (n + parts - 1) / parts;
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } gather{{}, {}, parts - 1};
  for (std::size_t p = 1; p < parts; ++p) {
    const std::size_t lo = p * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    submit_to(p - 1, [lo, hi, &fn, &gather] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
      std::scoped_lock lock(gather.mu);
      if (--gather.remaining == 0) gather.cv.notify_one();
    });
  }
  for (std::size_t i = 0; i < std::min(n, chunk); ++i) fn(i);
  std::unique_lock lock(gather.mu);
  gather.cv.wait(lock, [&] { return gather.remaining == 0; });
}

}  // namespace mwsec::util
