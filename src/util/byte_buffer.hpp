// Length-prefixed binary serialisation used by the simulated network layer
// (mwsec::net) and the credential wire formats. All integers are encoded
// little-endian; strings and blobs carry a u32 length prefix. The Reader is
// bounds-checked and returns Result so malformed messages are rejected, not
// UB — the "untrusted network" in Figure 3 flows through here.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/encoding.hpp"
#include "util/result.hpp"

namespace mwsec::util {

class ByteWriter {
 public:
  void u8(std::uint8_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void str(std::string_view s);
  void blob(const Bytes& b);
  void raw(const Bytes& b);  ///< append without a length prefix

  const Bytes& bytes() const { return buf_; }
  Bytes take() { return std::move(buf_); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<std::uint8_t> u8();
  Result<std::uint32_t> u32();
  Result<std::uint64_t> u64();
  Result<std::string> str();
  Result<Bytes> blob();

  bool exhausted() const { return pos_ == data_.size(); }
  std::size_t remaining() const { return data_.size() - pos_; }

 private:
  Result<void> need(std::size_t n);
  const Bytes& data_;
  std::size_t pos_ = 0;
};

}  // namespace mwsec::util
