// Hex and base64 codecs. KeyNote key and signature material is carried as
// "hex:..." / "base64:..." encoded blobs (RFC 2704 section 6); both codecs
// are implemented here so the crypto and keynote modules share one copy.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace mwsec::util {

using Bytes = std::vector<std::uint8_t>;

std::string hex_encode(const Bytes& data);
std::string hex_encode(const std::uint8_t* data, std::size_t len);
Result<Bytes> hex_decode(std::string_view hex);

std::string base64_encode(const Bytes& data);
Result<Bytes> base64_decode(std::string_view b64);

/// Bytes <-> std::string convenience (no encoding change).
Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);

}  // namespace mwsec::util
