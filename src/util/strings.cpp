#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <numeric>

namespace mwsec::util {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_trimmed(std::string_view s, char sep) {
  std::vector<std::string> out;
  for (const auto& piece : split(s, sep)) {
    auto t = trim(piece);
    if (!t.empty()) out.emplace_back(t);
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  return a.size() == b.size() &&
         std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
           return std::tolower(static_cast<unsigned char>(x)) ==
                  std::tolower(static_cast<unsigned char>(y));
         });
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  if (from.empty()) return std::string(s);
  std::string out;
  out.reserve(s.size());
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

bool is_integer(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  if (s[0] == '-' || s[0] == '+') s.remove_prefix(1);
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](unsigned char c) {
    return std::isdigit(c) != 0;
  });
}

bool is_number(std::string_view s) {
  s = trim(s);
  if (s.empty()) return false;
  double v = 0;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, v);
  return ec == std::errc() && ptr == last;
}

std::string number_to_string(double v) {
  if (v == static_cast<long long>(v) && v >= -1e15 && v <= 1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::size_t edit_distance(std::string_view a, std::string_view b) {
  if (a.size() < b.size()) std::swap(a, b);
  // Single-row dynamic program; O(|b|) space.
  std::vector<std::size_t> row(b.size() + 1);
  std::iota(row.begin(), row.end(), std::size_t{0});
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev_diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      std::size_t prev = row[j];
      std::size_t subst = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      prev_diag = prev;
    }
  }
  return row[b.size()];
}

}  // namespace mwsec::util
