// Minimal leveled, thread-safe logger.
//
// The simulators log mediation decisions and scheduling events; tests set
// the level to kOff to keep output clean, the examples run at kInfo.
//
// MWSEC_LOG(kDebug, "x") << expensive() evaluates nothing — not the
// stream operands, not the LogLine — unless the level is enabled: the
// macro checks `Logger::enabled()` (one relaxed atomic load) first.
// Output goes to a pluggable sink (stderr by default) so tests and
// mwsec-stats can capture lines instead of polluting ctest logs.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mwsec::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

/// Small dense id for the calling thread (1, 2, 3 … in first-log order):
/// readable in log prefixes where std::thread::id is an opaque hash.
std::uint32_t this_thread_tag();

/// The trace id woven into this thread's log-line prefixes. Maintained by
/// obs::ScopedTraceContext (0 = no traced operation active / tracing off);
/// util stores it so the logger can read it without depending on obs.
void set_current_trace_id(std::uint64_t trace_id);
std::uint64_t current_trace_id();

class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  LogLevel level() const { return level_.load(std::memory_order_relaxed); }

  /// Would a line at `level` be emitted? Cheap: one relaxed load. The
  /// MWSEC_LOG macro consults this before building the line.
  bool enabled(LogLevel level) const {
    LogLevel current = this->level();
    return current != LogLevel::kOff && level <= current;
  }

  /// Receives every emitted line. Called with the logger's output lock
  /// held, so lines from concurrent threads never interleave — which also
  /// means a sink must not call back into log()/MWSEC_LOG (self-deadlock).
  using Sink =
      std::function<void(LogLevel, std::string_view component,
                         std::string_view message)>;
  /// Replace the output sink; an empty function restores stderr. Safe to
  /// call while other threads are logging: the sink is published through
  /// an atomic shared_ptr, so a swap never blocks on an in-flight
  /// emission, and an emission mid-call keeps the functor it is running
  /// alive even after it has been swapped out.
  void set_sink(Sink sink);

  /// Emit one line: "[level] [component] [t<n>] [trace <id>] message".
  /// The thread tag is always present; the trace segment only when the
  /// calling thread has an active traced operation (current_trace_id()
  /// != 0). Sinks receive the message with this prefix already applied.
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  mutable std::mutex emit_mu_;  ///< serialises emission only
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<std::shared_ptr<const Sink>> sink_;  // null -> stderr
};

/// Streaming helper: MWSEC_LOG(kInfo, "webcom") << "scheduled " << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

/// Swallows a LogLine in the disabled branch of MWSEC_LOG. operator&
/// binds looser than operator<<, so the whole stream chain is dead code
/// (never evaluated) when the level check fails.
struct LogLineVoidify {
  void operator&(LogLine&) {}
  void operator&(LogLine&&) {}
};

}  // namespace mwsec::util

#define MWSEC_LOG(level, component)                                  \
  !::mwsec::util::Logger::instance().enabled(                        \
      ::mwsec::util::LogLevel::level)                                \
      ? (void)0                                                      \
      : ::mwsec::util::LogLineVoidify() &                            \
            ::mwsec::util::LogLine(::mwsec::util::LogLevel::level, component)
