// Minimal leveled, thread-safe logger.
//
// The simulators log mediation decisions and scheduling events; tests set
// the level to kOff to keep output clean, the examples run at kInfo.
#pragma once

#include <mutex>
#include <sstream>
#include <string>
#include <string_view>

namespace mwsec::util {

enum class LogLevel { kOff = 0, kError, kWarn, kInfo, kDebug };

class Logger {
 public:
  /// Process-wide logger instance.
  static Logger& instance();

  void set_level(LogLevel level);
  LogLevel level() const;

  /// Emit one line: "[level] [component] message".
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  Logger() = default;
  mutable std::mutex mu_;
  LogLevel level_ = LogLevel::kWarn;
};

/// Streaming helper: MWSEC_LOG(kInfo, "webcom") << "scheduled " << n;
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream os_;
};

}  // namespace mwsec::util

#define MWSEC_LOG(level, component) \
  ::mwsec::util::LogLine(::mwsec::util::LogLevel::level, component)
