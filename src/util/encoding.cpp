#include "util/encoding.hpp"

#include <array>
#include <cctype>

namespace mwsec::util {

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";
constexpr char kB64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

int b64_value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}
}  // namespace

std::string hex_encode(const Bytes& data) {
  return hex_encode(data.data(), data.size());
}

std::string hex_encode(const std::uint8_t* data, std::size_t len) {
  std::string out;
  out.reserve(len * 2);
  for (std::size_t i = 0; i < len; ++i) {
    out.push_back(kHexDigits[data[i] >> 4]);
    out.push_back(kHexDigits[data[i] & 0xf]);
  }
  return out;
}

Result<Bytes> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Error::make("hex string has odd length", "encoding");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_nibble(hex[i]);
    int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Error::make("invalid hex digit", "encoding");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string base64_encode(const Bytes& data) {
  std::string out;
  out.reserve((data.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= data.size(); i += 3) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      data[i + 2];
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back(kB64Digits[v & 63]);
  }
  std::size_t rem = data.size() - i;
  if (rem == 1) {
    std::uint32_t v = static_cast<std::uint32_t>(data[i]) << 16;
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.append("==");
  } else if (rem == 2) {
    std::uint32_t v = (static_cast<std::uint32_t>(data[i]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8);
    out.push_back(kB64Digits[(v >> 18) & 63]);
    out.push_back(kB64Digits[(v >> 12) & 63]);
    out.push_back(kB64Digits[(v >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<Bytes> base64_decode(std::string_view b64) {
  Bytes out;
  std::uint32_t acc = 0;
  int bits = 0;
  std::size_t pad = 0;
  for (char c : b64) {
    if (std::isspace(static_cast<unsigned char>(c))) continue;
    if (c == '=') {
      ++pad;
      continue;
    }
    if (pad != 0) return Error::make("base64 data after padding", "encoding");
    int v = b64_value(c);
    if (v < 0) return Error::make("invalid base64 character", "encoding");
    acc = (acc << 6) | static_cast<std::uint32_t>(v);
    bits += 6;
    if (bits >= 8) {
      bits -= 8;
      out.push_back(static_cast<std::uint8_t>((acc >> bits) & 0xff));
    }
  }
  if (pad > 2) return Error::make("too much base64 padding", "encoding");
  return out;
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace mwsec::util
