// Result<T>: a lightweight expected-like type used across the library for
// operations that can fail with a human-readable diagnostic (parse errors,
// signature failures, policy violations). C++23 std::expected is not
// available under the C++20 toolchain, so we carry a minimal equivalent.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace mwsec {

/// Error payload: a message plus an optional machine-readable code.
struct Error {
  std::string message;
  std::string code;  ///< e.g. "parse", "signature", "denied"; optional.

  static Error make(std::string msg, std::string c = {}) {
    return Error{std::move(msg), std::move(c)};
  }
};

/// Result of a fallible operation: either a value or an Error.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Result(Error err) : data_(std::in_place_index<1>, std::move(err)) {}

  bool ok() const { return data_.index() == 0; }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<0>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<0>(data_);
  }
  T&& take() && {
    assert(ok());
    return std::get<0>(std::move(data_));
  }
  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const {
    assert(!ok());
    return std::get<1>(data_);
  }

  /// Value if ok, otherwise the supplied fallback.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Error> data_;
};

/// Result specialisation for operations with no payload.
template <>
class [[nodiscard]] Result<void> {
 public:
  Result() = default;
  Result(Error err) : err_(std::move(err)) {}

  bool ok() const { return !err_.has_value(); }
  explicit operator bool() const { return ok(); }
  const Error& error() const {
    assert(!ok());
    return *err_;
  }

 private:
  std::optional<Error> err_;
};

using Status = Result<void>;

inline Status ok_status() { return Status{}; }

}  // namespace mwsec
