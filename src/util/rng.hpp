// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (workload generators, prime
// search, failure injection, the network latency model) draws from this
// seeded generator so experiments and property tests are reproducible.
// The core is xoshiro256** seeded via splitmix64 (Blackman & Vigna).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mwsec::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  std::uint64_t next();

  /// Uniform in [0, bound) — bound must be nonzero.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double uniform();

  /// Bernoulli trial with probability p.
  bool chance(double p);

  /// Random bytes.
  std::vector<std::uint8_t> bytes(std::size_t n);

  /// Random lower-case identifier of the given length (a-z, digits after
  /// the first character).
  std::string identifier(std::size_t len);

  /// Pick a uniformly random element index for a container of size n.
  std::size_t index(std::size_t n) { return static_cast<std::size_t>(below(n)); }

  /// Fork a stream: derive an independent generator (for per-thread use,
  /// per the hpc guides' advice to avoid shared mutable RNG state).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

}  // namespace mwsec::util
