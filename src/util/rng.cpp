#include "util/rng.hpp"

#include <cassert>

namespace mwsec::util {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  assert(bound != 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  while (true) {
    std::uint64_t v = next();
    if (v >= threshold) return v % bound;
  }
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + below(hi - lo + 1);
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  return uniform() < p;
}

std::vector<std::uint8_t> Rng::bytes(std::size_t n) {
  std::vector<std::uint8_t> out(n);
  std::size_t i = 0;
  while (i < n) {
    std::uint64_t v = next();
    for (int b = 0; b < 8 && i < n; ++b, ++i) {
      out[i] = static_cast<std::uint8_t>(v >> (8 * b));
    }
  }
  return out;
}

std::string Rng::identifier(std::size_t len) {
  static constexpr char kFirst[] = "abcdefghijklmnopqrstuvwxyz";
  static constexpr char kRest[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string out;
  out.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    if (i == 0) {
      out.push_back(kFirst[below(sizeof(kFirst) - 1)]);
    } else {
      out.push_back(kRest[below(sizeof(kRest) - 1)]);
    }
  }
  return out;
}

Rng Rng::fork() {
  return Rng(next());
}

}  // namespace mwsec::util
