#include "util/byte_buffer.hpp"

namespace mwsec::util {

void ByteWriter::u8(std::uint8_t v) { buf_.push_back(v); }

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::blob(const Bytes& b) {
  u32(static_cast<std::uint32_t>(b.size()));
  buf_.insert(buf_.end(), b.begin(), b.end());
}

void ByteWriter::raw(const Bytes& b) {
  buf_.insert(buf_.end(), b.begin(), b.end());
}

Result<void> ByteReader::need(std::size_t n) {
  if (remaining() < n) {
    return Error::make("truncated message", "wire");
  }
  return {};
}

Result<std::uint8_t> ByteReader::u8() {
  if (auto s = need(1); !s.ok()) return s.error();
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::u32() {
  if (auto s = need(4); !s.ok()) return s.error();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<std::uint64_t> ByteReader::u64() {
  if (auto s = need(8); !s.ok()) return s.error();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<std::string> ByteReader::str() {
  auto len = u32();
  if (!len.ok()) return len.error();
  if (auto s = need(*len); !s.ok()) return s.error();
  std::string out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

Result<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len.ok()) return len.error();
  if (auto s = need(*len); !s.ok()) return s.error();
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + *len));
  pos_ += *len;
  return out;
}

}  // namespace mwsec::util
