// Recursive-descent parsers for the Conditions and Licensees languages.
#pragma once

#include <string_view>

#include "keynote/ast.hpp"
#include "util/result.hpp"

namespace mwsec::keynote {

/// Parse a Conditions program. The empty string is a valid (empty) program,
/// which evaluates to _MAX_TRUST.
mwsec::Result<Program> parse_conditions(std::string_view src);

/// Parse a Licensees expression. The empty string yields Kind::kNone.
mwsec::Result<LicenseeExpr> parse_licensees(std::string_view src);

}  // namespace mwsec::keynote
