// The compiled KeyNote query engine.
//
// `evaluate()` re-interprets the assertion set on every call: it rebuilds
// string-keyed maps of authorizers, evaluates every Conditions program up
// front, and sweeps all assertions per Kleene pass. That is faithful to
// RFC 2704 but wasteful on the hot paths this repository cares about — the
// WebCom scheduler and the KeyCOM administration service issue thousands of
// queries against a store that changes rarely.
//
// The compiled engine splits the work by how often it changes:
//
//   per credential-set change  — principal names are interned to dense ids,
//     Licensees expressions are compiled over those ids, and a reverse
//     dependency index (principal -> assertions mentioning it) is built
//     (`CompiledIndex`). Conditions programs are lowered to bytecode
//     (bytecode.hpp/vm.hpp) and deduplicated — assertions sharing one
//     conditions text + local constants share one program. `finalize()`
//     then builds the *inverted assertion index*: each program's guard
//     (action attributes every satisfiable clause pins to literals, e.g.
//     app_domain == "SalariesDB") becomes a posting list
//     (attribute, literal) -> candidate assertion ids. Credential
//     signatures are verified exactly once, at admission
//     (`CompiledStore::add_credential`).
//   per action environment     — each *program's* Conditions value is
//     memoized keyed by a fingerprint of the action environment
//     (`ConditionsCache`), so repeated queries that differ only in e.g.
//     (Domain, Role) pay conditions evaluation once per distinct
//     environment per distinct program. Entries carry a second,
//     independent verifier hash so a fingerprint collision is detected
//     instead of silently returning the wrong compliance value.
//   per query                  — an assertion-driven worklist fixpoint:
//     seeded from the assertions that mention a requester *and* survive
//     the candidate filter (posting-list lookup under the query's
//     attribute values), it traverses only the reachable delegation
//     subgraph, evaluates Conditions lazily, and exits early once POLICY
//     reaches _MAX_TRUST. Cold-query cost therefore scales with the
//     requester's delegation neighbourhood, not with store size.
//
// `CompiledStore` packages this behind the same mutator/query surface as
// `CredentialStore`; queries run against an immutable `Snapshot` that is
// rebuilt lazily when the store's version counter moves.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/bytecode.hpp"
#include "keynote/query.hpp"

namespace mwsec::keynote {

/// Dense interning of principal names. Id 0 is always "POLICY".
class PrincipalTable {
 public:
  PrincipalTable();

  std::uint32_t intern(std::string_view name);
  /// Id of `name` if it has been interned.
  std::optional<std::uint32_t> find(std::string_view name) const;
  std::size_t size() const { return names_.size(); }
  const std::string& name(std::uint32_t id) const { return names_[id]; }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids_;
};

/// A Licensees expression with principals resolved to interned ids, so the
/// fixpoint evaluates it over a flat value vector with no string lookups.
struct CompiledLicensee {
  LicenseeExpr::Kind kind = LicenseeExpr::Kind::kNone;
  std::uint32_t principal = 0;  // for kPrincipal
  std::size_t k = 0;            // for kThreshold
  std::vector<CompiledLicensee> children;
};

struct CompiledAssertion {
  /// Conditions program + local constants live in the source assertion,
  /// which must outlive the index.
  const Assertion* source = nullptr;
  std::uint32_t authorizer = 0;
  /// Index into the deduplicated program table.
  std::uint32_t program = 0;
  CompiledLicensee licensees;
};

/// Cross-query memo of per-*program* Conditions values, keyed by the query
/// environment fingerprint. Each entry also stores the context's verifier
/// hash: a lookup whose fingerprint matches but whose verifier does not is
/// a detected collision and reported as a miss, never a wrong value.
/// Thread-safe; owned by a `Snapshot` so it is discarded whenever the
/// assertion set (and thus program ids) change.
class ConditionsCache {
 public:
  explicit ConditionsCache(std::size_t program_count)
      : memo_(program_count) {}

  std::optional<std::size_t> get(std::size_t program,
                                 std::uint64_t fingerprint,
                                 std::uint64_t verifier) const;
  void put(std::size_t program, std::uint64_t fingerprint,
           std::uint64_t verifier, std::size_t value);

  /// Detected fingerprint collisions since construction.
  std::uint64_t collisions() const;

 private:
  struct Entry {
    std::uint64_t verifier;
    std::size_t value;
  };
  mutable std::mutex mu_;
  std::vector<std::unordered_map<std::uint64_t, Entry>> memo_;
  mutable std::uint64_t collisions_ = 0;
};

/// The compiled, immutable form of one admitted assertion set.
class CompiledIndex {
 public:
  static constexpr std::uint32_t kPolicyId = 0;

  /// Compile and add one admitted assertion. `assertion` must stay valid
  /// (and unmoved) for the life of the index.
  void add(const Assertion& assertion);

  void reserve(std::size_t assertion_count) {
    assertions_.reserve(assertion_count);
  }

  /// Build the inverted assertion index (guard posting lists). Must be
  /// called after the last `add()` and before the first `policy_value()`.
  void finalize();

  /// Compliance value of POLICY for `query`: the worklist fixpoint.
  /// `cache`, when non-null, memoizes Conditions values across queries
  /// under `context.fingerprint()`.
  std::size_t policy_value(const QueryContext& context,
                           ConditionsCache* cache) const;

  std::size_t assertion_count() const { return assertions_.size(); }
  /// Deduplicated bytecode programs (ConditionsCache is sized by this).
  std::size_t program_count() const { return programs_.size(); }

  struct Stats {
    std::size_t assertions = 0;
    std::size_t programs = 0;   // after dedup
    std::size_t guarded = 0;    // assertions reachable only via posting lists
    std::size_t unguarded = 0;  // assertions that are always candidates
    std::size_t never = 0;      // constant-_MIN_TRUST programs, never run
    std::size_t guard_attrs = 0;
    std::size_t attr_slots = 0;
  };
  Stats stats() const;

  /// Number of assertions the candidate filter admits for this query
  /// (assertion_count() when the store is entirely unguarded). Exposed for
  /// index-correctness tests and the revocation-storm bench.
  std::size_t candidate_count(const QueryContext& context) const;

  /// Bytecode listing of every assertion's program (tooling).
  std::string describe() const;

 private:
  struct ProgramEntry {
    CompiledConditions compiled;
    /// Representative assertion: supplies the dynamic lookup chain when
    /// the program needs one (identical local constants by construction).
    const Assertion* rep = nullptr;
  };

  /// Candidate filter under one query. `mask` is empty when every
  /// assertion is a candidate.
  void candidate_mask(const std::vector<std::string_view>& attr_values,
                      std::vector<char>& mask) const;

  /// Epoch-stamped candidate filter: `stamp[i] == epoch` marks assertion
  /// i a candidate, stale stamps from earlier queries are never reset
  /// (incrementing the epoch invalidates them in O(1)). Returns false
  /// when every assertion is a candidate and no stamps were written.
  bool candidate_mask(const std::vector<std::string_view>& attr_values,
                      std::vector<std::uint64_t>& stamp,
                      std::uint64_t epoch) const;

  void resolve_attrs(const QueryContext& context,
                     std::vector<std::string_view>& attr_values) const;

  PrincipalTable principals_;
  AttrTable attrs_;
  std::vector<CompiledAssertion> assertions_;
  std::vector<ProgramEntry> programs_;
  /// conditions_text + local constants -> program id (admission dedup).
  std::unordered_map<std::string, std::uint32_t> program_keys_;
  /// principal id -> assertions whose Licensees mention it (deduplicated).
  std::vector<std::vector<std::uint32_t>> dependents_;

  // finalize() products — the inverted assertion index.
  struct AttrHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  struct GuardPostings {
    std::uint32_t slot = 0;  // attribute slot the assertions are keyed by
    std::unordered_map<std::string, std::vector<std::uint32_t>, AttrHash,
                       std::equal_to<>>
        by_value;
  };
  bool finalized_ = false;
  std::vector<GuardPostings> guards_;
  std::vector<std::uint32_t> unguarded_;
  std::size_t never_count_ = 0;
  /// No guards and no never-programs: skip building the mask entirely.
  bool all_candidates_ = true;
};

/// Drop-in replacement for `CredentialStore` with compiled queries.
/// Mutators mirror `CredentialStore`; every mutation bumps `version()`,
/// which consumers (e.g. the WebCom scheduler's decision cache) use for
/// invalidation.
class CompiledStore {
 public:
  mwsec::Status add_policy(Assertion assertion);
  mwsec::Status add_policy_text(std::string_view text);

  /// Add a credential; its signature is verified here, exactly once —
  /// queries never re-verify stored credentials. A replica applying a
  /// delta from an authority that already verified at admission may pass
  /// `verify_signature = false` (the sync channel vouches for it).
  mwsec::Status add_credential(Assertion assertion,
                               bool verify_signature = true);

  std::size_t remove_matching(const std::string& text);
  std::size_t remove_by_authorizer(const std::string& authorizer);
  /// Remove every credential whose Licensees expression mentions
  /// `principal` — revocation by withdrawal of everything delegated *to*
  /// a key (RFC 2704's credential-removal model; the sync layer's
  /// `revoke_by_licensee` delta).
  std::size_t remove_by_licensee(const std::string& principal);

  std::vector<Assertion> policies() const;
  std::vector<Assertion> credentials() const;
  std::vector<Assertion> credentials_by_authorizer(
      const std::string& authorizer) const;

  std::size_t policy_count() const;
  std::size_t credential_count() const;
  void clear();

  /// Monotone counter, bumped by every successful mutation.
  std::uint64_t version() const;

  /// Raise version() to at least `v`. A replicated store calls this after
  /// applying a delta so its version tracks the authority's epoch exactly;
  /// version never moves backwards (caches key on equality, so a forced
  /// move only ever invalidates).
  void advance_version_to(std::uint64_t v);

  /// Replace the entire contents from a bundle (anti-entropy snapshot
  /// install): atomic — on any parse or verification error the store is
  /// left untouched. On success version() becomes max(`version`,
  /// version()+1), i.e. the authority's epoch when the replica is behind.
  mwsec::Status install_bundle(std::string_view bundle_text,
                               std::uint64_t version,
                               bool verify_signatures = true);

  /// An immutable compiled view of the store (optionally extended with
  /// presented credentials): answers many queries against one admission.
  class Snapshot {
   public:
    mwsec::Result<QueryResult> query(const Query& q) const;

    /// As query(), but bypassing the cross-query Conditions memo: every
    /// Conditions program the fixpoint touches is evaluated cold. This is
    /// the revocation-storm path (version bump -> fresh Snapshot -> cold
    /// memo), made callable on a warm snapshot so it can be benchmarked
    /// in isolation.
    mwsec::Result<QueryResult> query_uncached(const Query& q) const;

    /// The compiled index (stats and candidate sets for tests/tools).
    const CompiledIndex& index() const { return index_; }

    /// Detected Conditions-memo fingerprint collisions.
    std::uint64_t memo_collisions() const {
      return cond_cache_->collisions();
    }

   private:
    friend class CompiledStore;
    mwsec::Result<QueryResult> query_impl(const Query& q,
                                          ConditionsCache* cache) const;
    std::vector<Assertion> assertions_;  // owned; index points into this
    CompiledIndex index_;
    std::unique_ptr<ConditionsCache> cond_cache_;
    std::vector<std::string> dropped_;  // presented credentials not admitted
  };

  /// An epoch-stamped immutable view: the compiled snapshot plus the
  /// version it was built at, captured as one consistent unit. This is the
  /// RCU read-side handle (DESIGN.md §12): handles are published through
  /// an atomic shared_ptr, so `acquire()` on an unchanged store is
  /// lock-free — readers never block writers and a reader that races a
  /// mutation simply keeps the pre-mutation view, correctly labelled with
  /// the pre-mutation version (decision caches key on that version, so a
  /// stale verdict can never be filed under the new epoch).
  struct StoreHandle {
    std::shared_ptr<const Snapshot> snapshot;
    std::uint64_t version = 0;
  };

  /// The current published handle. Lock-free while the store is
  /// unchanged; a version moved by a writer sends exactly one reader per
  /// epoch through the locked rebuild-and-republish slow path.
  StoreHandle acquire() const;

  /// Compiled view of the stored assertions alone (`acquire().snapshot`).
  /// Cached; rebuilt only when the store has changed since the last call.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Compiled view of the store plus `presented` credentials, each
  /// verified once here (unless `options.verify_signatures` is false).
  /// Use this to answer many queries for one request — e.g. KeyCOM
  /// authorising every row of an update against the same presented bundle.
  std::shared_ptr<const Snapshot> snapshot_with(
      const std::vector<Assertion>& presented,
      const QueryOptions& options = {}) const;

  /// One-shot convenience: `snapshot_with(presented, options)->query(q)`.
  mwsec::Result<QueryResult> query(const Query& q,
                                   const std::vector<Assertion>& presented = {},
                                   const QueryOptions& options = {}) const;

  /// Serialise the full store as a parseable bundle.
  std::string to_bundle_text() const;

 private:
  std::shared_ptr<const Snapshot> base_snapshot_locked() const;

  mutable std::mutex mu_;
  std::vector<Assertion> policies_;
  std::vector<Assertion> credentials_;
  /// Atomic so version()/acquire() fast paths never take mu_; writers
  /// only move it while holding mu_.
  std::atomic<std::uint64_t> version_{1};
  mutable std::shared_ptr<const Snapshot> cached_;
  mutable std::uint64_t cached_version_ = 0;
  /// RCU publication point: the last handle handed out. Readers load it
  /// wait-free; the locked slow path swaps in a fresh one after a rebuild.
  mutable std::atomic<std::shared_ptr<const StoreHandle>> published_;
};

}  // namespace mwsec::keynote
