// The compiled KeyNote query engine.
//
// `evaluate()` re-interprets the assertion set on every call: it rebuilds
// string-keyed maps of authorizers, evaluates every Conditions program up
// front, and sweeps all assertions per Kleene pass. That is faithful to
// RFC 2704 but wasteful on the hot paths this repository cares about — the
// WebCom scheduler and the KeyCOM administration service issue thousands of
// queries against a store that changes rarely.
//
// The compiled engine splits the work by how often it changes:
//
//   per credential-set change  — principal names are interned to dense ids,
//     Licensees expressions are compiled over those ids, and a reverse
//     dependency index (principal -> assertions mentioning it) is built
//     (`CompiledIndex`). Credential signatures are verified exactly once,
//     at admission (`CompiledStore::add_credential`).
//   per action environment     — each assertion's Conditions value is
//     memoized keyed by a fingerprint of the action environment
//     (`ConditionsCache`), so repeated queries that differ only in e.g.
//     (Domain, Role) pay conditions evaluation once per distinct
//     environment.
//   per query                  — a worklist fixpoint over
//     `std::vector<std::size_t>` principal values that only revisits
//     assertions whose licensees changed value, evaluates Conditions
//     lazily (an assertion whose licensee value is _MIN_TRUST never needs
//     its conditions), and exits early once POLICY reaches _MAX_TRUST.
//
// `CompiledStore` packages this behind the same mutator/query surface as
// `CredentialStore`; queries run against an immutable `Snapshot` that is
// rebuilt lazily when the store's version counter moves.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/query.hpp"

namespace mwsec::keynote {

/// Dense interning of principal names. Id 0 is always "POLICY".
class PrincipalTable {
 public:
  PrincipalTable();

  std::uint32_t intern(std::string_view name);
  /// Id of `name` if it has been interned.
  std::optional<std::uint32_t> find(std::string_view name) const;
  std::size_t size() const { return names_.size(); }
  const std::string& name(std::uint32_t id) const { return names_[id]; }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };

  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids_;
};

/// A Licensees expression with principals resolved to interned ids, so the
/// fixpoint evaluates it over a flat value vector with no string lookups.
struct CompiledLicensee {
  LicenseeExpr::Kind kind = LicenseeExpr::Kind::kNone;
  std::uint32_t principal = 0;  // for kPrincipal
  std::size_t k = 0;            // for kThreshold
  std::vector<CompiledLicensee> children;
};

struct CompiledAssertion {
  /// Conditions program + local constants live in the source assertion,
  /// which must outlive the index.
  const Assertion* source = nullptr;
  std::uint32_t authorizer = 0;
  CompiledLicensee licensees;
};

/// Cross-query memo of per-assertion Conditions values, keyed by the query
/// environment fingerprint. Thread-safe; owned by a `Snapshot` so it is
/// discarded whenever the assertion set (and thus assertion indices) change.
class ConditionsCache {
 public:
  explicit ConditionsCache(std::size_t assertion_count)
      : memo_(assertion_count) {}

  std::optional<std::size_t> get(std::size_t assertion,
                                 std::uint64_t fingerprint) const;
  void put(std::size_t assertion, std::uint64_t fingerprint, std::size_t value);

 private:
  mutable std::mutex mu_;
  std::vector<std::unordered_map<std::uint64_t, std::size_t>> memo_;
};

/// The compiled, immutable form of one admitted assertion set.
class CompiledIndex {
 public:
  static constexpr std::uint32_t kPolicyId = 0;

  /// Compile and add one admitted assertion. `assertion` must stay valid
  /// (and unmoved) for the life of the index.
  void add(const Assertion& assertion);

  void reserve(std::size_t assertion_count) {
    assertions_.reserve(assertion_count);
  }

  /// Compliance value of POLICY for `query`: the worklist fixpoint.
  /// `cache`, when non-null, memoizes Conditions values across queries
  /// under `context.fingerprint()`.
  std::size_t policy_value(const QueryContext& context,
                           ConditionsCache* cache) const;

  std::size_t assertion_count() const { return assertions_.size(); }

 private:
  std::size_t conditions_value(std::size_t assertion,
                               const QueryContext& context) const;

  PrincipalTable principals_;
  std::vector<CompiledAssertion> assertions_;
  /// principal id -> assertions it authored.
  std::vector<std::vector<std::uint32_t>> by_authorizer_;
  /// principal id -> assertions whose Licensees mention it (deduplicated).
  std::vector<std::vector<std::uint32_t>> dependents_;
};

/// Drop-in replacement for `CredentialStore` with compiled queries.
/// Mutators mirror `CredentialStore`; every mutation bumps `version()`,
/// which consumers (e.g. the WebCom scheduler's decision cache) use for
/// invalidation.
class CompiledStore {
 public:
  mwsec::Status add_policy(Assertion assertion);
  mwsec::Status add_policy_text(std::string_view text);

  /// Add a credential; its signature is verified here, exactly once —
  /// queries never re-verify stored credentials. A replica applying a
  /// delta from an authority that already verified at admission may pass
  /// `verify_signature = false` (the sync channel vouches for it).
  mwsec::Status add_credential(Assertion assertion,
                               bool verify_signature = true);

  std::size_t remove_matching(const std::string& text);
  std::size_t remove_by_authorizer(const std::string& authorizer);
  /// Remove every credential whose Licensees expression mentions
  /// `principal` — revocation by withdrawal of everything delegated *to*
  /// a key (RFC 2704's credential-removal model; the sync layer's
  /// `revoke_by_licensee` delta).
  std::size_t remove_by_licensee(const std::string& principal);

  std::vector<Assertion> policies() const;
  std::vector<Assertion> credentials() const;
  std::vector<Assertion> credentials_by_authorizer(
      const std::string& authorizer) const;

  std::size_t policy_count() const;
  std::size_t credential_count() const;
  void clear();

  /// Monotone counter, bumped by every successful mutation.
  std::uint64_t version() const;

  /// Raise version() to at least `v`. A replicated store calls this after
  /// applying a delta so its version tracks the authority's epoch exactly;
  /// version never moves backwards (caches key on equality, so a forced
  /// move only ever invalidates).
  void advance_version_to(std::uint64_t v);

  /// Replace the entire contents from a bundle (anti-entropy snapshot
  /// install): atomic — on any parse or verification error the store is
  /// left untouched. On success version() becomes max(`version`,
  /// version()+1), i.e. the authority's epoch when the replica is behind.
  mwsec::Status install_bundle(std::string_view bundle_text,
                               std::uint64_t version,
                               bool verify_signatures = true);

  /// An immutable compiled view of the store (optionally extended with
  /// presented credentials): answers many queries against one admission.
  class Snapshot {
   public:
    mwsec::Result<QueryResult> query(const Query& q) const;

   private:
    friend class CompiledStore;
    std::vector<Assertion> assertions_;  // owned; index points into this
    CompiledIndex index_;
    std::unique_ptr<ConditionsCache> cond_cache_;
    std::vector<std::string> dropped_;  // presented credentials not admitted
  };

  /// Compiled view of the stored assertions alone. Cached; rebuilt only
  /// when the store has changed since the last call.
  std::shared_ptr<const Snapshot> snapshot() const;

  /// Compiled view of the store plus `presented` credentials, each
  /// verified once here (unless `options.verify_signatures` is false).
  /// Use this to answer many queries for one request — e.g. KeyCOM
  /// authorising every row of an update against the same presented bundle.
  std::shared_ptr<const Snapshot> snapshot_with(
      const std::vector<Assertion>& presented,
      const QueryOptions& options = {}) const;

  /// One-shot convenience: `snapshot_with(presented, options)->query(q)`.
  mwsec::Result<QueryResult> query(const Query& q,
                                   const std::vector<Assertion>& presented = {},
                                   const QueryOptions& options = {}) const;

  /// Serialise the full store as a parseable bundle.
  std::string to_bundle_text() const;

 private:
  std::shared_ptr<const Snapshot> base_snapshot_locked() const;

  mutable std::mutex mu_;
  std::vector<Assertion> policies_;
  std::vector<Assertion> credentials_;
  std::uint64_t version_ = 1;
  mutable std::shared_ptr<const Snapshot> cached_;
  mutable std::uint64_t cached_version_ = 0;
};

}  // namespace mwsec::keynote
