#include "keynote/values.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace mwsec::keynote {

ComplianceValueSet::ComplianceValueSet() : ordered_{"false", "true"} {}

mwsec::Result<ComplianceValueSet> ComplianceValueSet::make(
    std::vector<std::string> ordered) {
  if (ordered.empty()) {
    return Error::make("compliance value set must be non-empty", "values");
  }
  for (std::size_t i = 0; i < ordered.size(); ++i) {
    for (std::size_t j = i + 1; j < ordered.size(); ++j) {
      if (ordered[i] == ordered[j]) {
        return Error::make("duplicate compliance value: " + ordered[i],
                           "values");
      }
    }
  }
  ComplianceValueSet out;
  out.ordered_ = std::move(ordered);
  return out;
}

mwsec::Result<std::size_t> ComplianceValueSet::index_of(
    std::string_view name) const {
  for (std::size_t i = 0; i < ordered_.size(); ++i) {
    if (ordered_[i] == name) return i;
  }
  return Error::make("unknown compliance value: " + std::string(name),
                     "values");
}

std::string ComplianceValueSet::joined() const {
  return util::join(ordered_, ", ");
}

const std::string& ActionEnvironment::get(std::string_view name) const {
  static const std::string kEmpty;
  auto it = attrs_.find(name);
  return it == attrs_.end() ? kEmpty : it->second;
}

bool ActionEnvironment::has(std::string_view name) const {
  return attrs_.find(name) != attrs_.end();
}

}  // namespace mwsec::keynote
