#include "keynote/query.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "keynote/compiled_store.hpp"
#include "keynote/eval.hpp"
#include "util/strings.hpp"

namespace mwsec::keynote {

namespace {

constexpr std::string_view kPolicyPrincipal = "POLICY";

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Field separator, so {"ab","c"} and {"a","bc"} fingerprint differently.
  h ^= 0x1f;
  h *= 0x100000001b3ULL;
  return h;
}

/// The verifier hash: xorshift-multiply mixing, structurally unlike FNV-1a
/// so the two hashes do not collide together for related inputs.
std::uint64_t mix64(std::uint64_t h, std::string_view s) {
  for (unsigned char c : s) {
    h = (h ^ c) * 0x2545F4914F6CDD1DULL;
    h ^= h >> 29;
  }
  h = (h ^ 0x9E3779B97F4A7C15ULL) * 0x2545F4914F6CDD1DULL;
  h ^= h >> 32;
  return h;
}

/// Screen `credentials` for admission: POLICY assertions are never
/// credentials, and signatures must verify unless checking is disabled.
/// Admitted credentials are appended to `admitted`; the rest are reported
/// in `dropped`.
void admit_credentials(const std::vector<Assertion>& credentials,
                       const QueryOptions& options,
                       std::vector<const Assertion*>& admitted,
                       std::vector<std::string>& dropped) {
  admitted.reserve(admitted.size() + credentials.size());
  for (const auto& c : credentials) {
    if (c.is_policy()) {
      dropped.push_back("POLICY assertion offered as credential");
      continue;
    }
    if (options.verify_signatures) {
      if (auto v = c.verify(); !v.ok()) {
        dropped.push_back(v.error().message);
        continue;
      }
    }
    admitted.push_back(&c);
  }
}

mwsec::Status check_policies(const std::vector<Assertion>& policies) {
  for (const auto& p : policies) {
    if (!p.is_policy()) {
      return Error::make(
          "non-POLICY assertion supplied as policy (authorizer=" +
              p.authorizer() + ")",
          "query");
    }
  }
  return {};
}

}  // namespace

QueryContext::QueryContext(const Query& query)
    : query_(&query),
      values_joined_(query.values.joined()),
      authorizers_joined_(util::join(query.action_authorizers, ",")) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  std::uint64_t v = 0x9E3779B97F4A7C15ULL;
  h = fnv1a(h, values_joined_);
  v = mix64(v, values_joined_);
  h = fnv1a(h, authorizers_joined_);
  v = mix64(v, authorizers_joined_);
  for (const auto& [name, value] : query.env.attrs()) {
    h = fnv1a(h, name);
    v = mix64(v, name);
    h = fnv1a(h, value);
    v = mix64(v, value);
  }
  fingerprint_ = h;
  verifier_ = v;
}

std::string_view QueryContext::reserved_or_env(std::string_view name) const {
  if (name == "_MIN_TRUST") return query_->values.min_name();
  if (name == "_MAX_TRUST") return query_->values.max_name();
  if (name == "_VALUES") return values_joined_;
  if (name == "_ACTION_AUTHORIZERS") return authorizers_joined_;
  return query_->env.get(name);
}

AttrLookup QueryContext::lookup(const Assertion& assertion) const {
  return [this, &assertion](std::string_view name) -> std::string_view {
    if (name == "_MIN_TRUST") return query_->values.min_name();
    if (name == "_MAX_TRUST") return query_->values.max_name();
    if (name == "_VALUES") return values_joined_;
    if (name == "_ACTION_AUTHORIZERS") return authorizers_joined_;
    if (const std::string* c = assertion.find_constant(name)) return *c;
    return query_->env.get(name);
  };
}

mwsec::Result<QueryResult> evaluate(const std::vector<Assertion>& policies,
                                    const std::vector<Assertion>& credentials,
                                    const Query& query,
                                    const QueryOptions& options) {
  if (auto s = check_policies(policies); !s.ok()) return s.error();

  QueryResult result;
  std::vector<const Assertion*> admitted;
  admit_credentials(credentials, options, admitted,
                    result.dropped_credentials);

  CompiledIndex index;
  index.reserve(policies.size() + admitted.size());
  for (const auto& p : policies) index.add(p);
  for (const Assertion* c : admitted) index.add(*c);
  index.finalize();

  QueryContext context(query);
  result.value_index = index.policy_value(context, /*cache=*/nullptr);
  result.value_name = query.values.name(result.value_index);
  return result;
}

mwsec::Result<QueryResult> evaluate_reference(
    const std::vector<Assertion>& policies,
    const std::vector<Assertion>& credentials, const Query& query,
    const QueryOptions& options) {
  if (auto s = check_policies(policies); !s.ok()) return s.error();

  QueryResult result;
  std::vector<const Assertion*> admitted;
  admit_credentials(credentials, options, admitted,
                    result.dropped_credentials);

  QueryContext context(query);

  // Assertion list with POLICY assertions included; per-assertion
  // conditions value is fixed for the whole fixpoint computation.
  struct Entry {
    const Assertion* assertion;
    std::size_t conditions_value;
  };
  std::map<std::string, std::vector<Entry>> by_authorizer;
  for (const auto& p : policies) {
    by_authorizer[std::string(kPolicyPrincipal)].push_back(
        {&p, eval_conditions(p.conditions(), query.values, context.lookup(p))});
  }
  for (const Assertion* c : admitted) {
    by_authorizer[c->authorizer()].push_back(
        {c,
         eval_conditions(c->conditions(), query.values, context.lookup(*c))});
  }

  // Principal values: requesters at _MAX_TRUST, everyone else _MIN_TRUST.
  std::map<std::string, std::size_t> value;
  const std::size_t vmin = query.values.min_index();
  const std::size_t vmax = query.values.max_index();
  std::set<std::string> requesters(query.action_authorizers.begin(),
                                   query.action_authorizers.end());

  auto principal_value = [&](const std::string& p) -> std::size_t {
    if (requesters.count(p)) return vmax;
    auto it = value.find(p);
    return it == value.end() ? vmin : it->second;
  };

  // Kleene iteration to the least fixpoint. Each pass can only raise
  // values; with V compliance values and N authorizers it terminates in
  // at most N*V passes.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [authorizer, entries] : by_authorizer) {
      if (requesters.count(authorizer)) continue;  // already maximal
      std::size_t best = vmin;
      for (const auto& entry : entries) {
        std::size_t lic = eval_licensees(entry.assertion->licensees(),
                                         query.values, principal_value);
        best = std::max(best, std::min(lic, entry.conditions_value));
        if (best == vmax) break;
      }
      auto it = value.find(authorizer);
      std::size_t current = it == value.end() ? vmin : it->second;
      if (best > current) {
        value[authorizer] = best;
        changed = true;
      }
    }
  }

  result.value_index = principal_value(std::string(kPolicyPrincipal));
  result.value_name = query.values.name(result.value_index);
  return result;
}

mwsec::Status Session::add_policy(const Assertion& assertion) {
  if (!assertion.is_policy()) {
    return Error::make("assertion is not a POLICY assertion", "query");
  }
  policies_.push_back(assertion);
  return {};
}

mwsec::Status Session::add_policy_text(std::string_view text) {
  auto bundle = Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (auto s = add_policy(a); !s.ok()) return s;
  }
  return {};
}

mwsec::Status Session::add_credential(const Assertion& assertion) {
  if (assertion.is_policy()) {
    return Error::make("POLICY assertion cannot be a credential", "query");
  }
  credentials_.push_back(assertion);
  return {};
}

mwsec::Status Session::add_credential_text(std::string_view text) {
  auto bundle = Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (auto s = add_credential(a); !s.ok()) return s;
  }
  return {};
}

void Session::add_action_attribute(std::string name, std::string value) {
  query_.env.set(std::move(name), std::move(value));
}

void Session::add_action_authorizer(std::string principal) {
  query_.action_authorizers.push_back(std::move(principal));
}

mwsec::Status Session::set_compliance_values(std::vector<std::string> ordered) {
  auto v = ComplianceValueSet::make(std::move(ordered));
  if (!v.ok()) return v.error();
  query_.values = std::move(v).take();
  return {};
}

mwsec::Result<QueryResult> Session::query(const QueryOptions& options) const {
  return evaluate(policies_, credentials_, query_, options);
}

void Session::clear_action() {
  query_.action_authorizers.clear();
  query_.env = ActionEnvironment();
}

}  // namespace mwsec::keynote
