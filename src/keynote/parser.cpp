#include "keynote/parser.hpp"

#include <charconv>

#include "keynote/lexer.hpp"
#include "util/strings.hpp"

namespace mwsec::keynote {

namespace {

// A term is either string-typed or numeric-typed; the parser tracks which.
struct Term {
  std::shared_ptr<StringExpr> str;
  std::shared_ptr<NumExpr> num;
  bool is_string() const { return str != nullptr; }
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

  mwsec::Result<Program> conditions() {
    auto prog = program();
    if (!prog.ok()) return prog;
    if (!at(TokenKind::kEnd)) return err("trailing input after conditions");
    return prog;
  }

  mwsec::Result<LicenseeExpr> licensees() {
    if (at(TokenKind::kEnd)) {
      return LicenseeExpr{};  // empty: Kind::kNone
    }
    auto e = lic_or();
    if (!e.ok()) return e;
    if (!at(TokenKind::kEnd)) return err("trailing input after licensees");
    return e;
  }

 private:
  // --- token plumbing ------------------------------------------------------
  const Token& peek() const { return toks_[pos_]; }
  bool at(TokenKind k) const { return peek().kind == k; }
  Token take() { return toks_[pos_++]; }
  bool accept(TokenKind k) {
    if (!at(k)) return false;
    ++pos_;
    return true;
  }
  mwsec::Error err(std::string_view msg) const {
    return mwsec::Error::make(std::string(msg) + " (near '" + peek().text +
                                  "' offset " + std::to_string(peek().pos) + ")",
                              "parse");
  }

  // --- conditions program --------------------------------------------------
  mwsec::Result<Program> program() {
    Program prog;
    // Clauses separated/terminated by ';'. Stop at '}' or end.
    while (!at(TokenKind::kEnd) && !at(TokenKind::kRBrace)) {
      if (accept(TokenKind::kSemicolon)) continue;  // stray / trailing ';'
      auto clause = parse_clause();
      if (!clause.ok()) return clause.error();
      prog.clauses.push_back(std::move(clause).take());
      if (!at(TokenKind::kEnd) && !at(TokenKind::kRBrace)) {
        if (!accept(TokenKind::kSemicolon)) return err("expected ';'");
      }
    }
    return prog;
  }

  mwsec::Result<Clause> parse_clause() {
    auto test = parse_test();
    if (!test.ok()) return test.error();
    Clause clause;
    clause.test = std::move(test).take();
    if (accept(TokenKind::kArrow)) {
      if (accept(TokenKind::kLBrace)) {
        auto sub = program();
        if (!sub.ok()) return sub.error();
        if (!accept(TokenKind::kRBrace)) return err("expected '}'");
        clause.outcome = Clause::Outcome::kProgram;
        clause.program = std::make_shared<Program>(std::move(sub).take());
      } else if (at(TokenKind::kString) || at(TokenKind::kIdent)) {
        clause.outcome = Clause::Outcome::kValue;
        clause.value = take().text;
      } else {
        return err("expected value or '{' after '->'");
      }
    }
    return clause;
  }

  // --- boolean tests -------------------------------------------------------
  mwsec::Result<std::shared_ptr<Test>> parse_test() { return test_or(); }

  mwsec::Result<std::shared_ptr<Test>> test_or() {
    auto lhs = test_and();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kOrOr)) {
      auto rhs = test_and();
      if (!rhs.ok()) return rhs;
      auto node = std::make_shared<Test>();
      node->kind = Test::Kind::kOr;
      node->ta = std::move(lhs).take();
      node->tb = std::move(rhs).take();
      lhs = std::move(node);
    }
    return lhs;
  }

  mwsec::Result<std::shared_ptr<Test>> test_and() {
    auto lhs = test_not();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kAndAnd)) {
      auto rhs = test_not();
      if (!rhs.ok()) return rhs;
      auto node = std::make_shared<Test>();
      node->kind = Test::Kind::kAnd;
      node->ta = std::move(lhs).take();
      node->tb = std::move(rhs).take();
      lhs = std::move(node);
    }
    return lhs;
  }

  mwsec::Result<std::shared_ptr<Test>> test_not() {
    if (accept(TokenKind::kNot)) {
      auto inner = test_not();
      if (!inner.ok()) return inner;
      auto node = std::make_shared<Test>();
      node->kind = Test::Kind::kNot;
      node->ta = std::move(inner).take();
      return node;
    }
    return test_primary();
  }

  mwsec::Result<std::shared_ptr<Test>> test_primary() {
    // Literal true/false.
    if (at(TokenKind::kIdent) &&
        (peek().text == "true" || peek().text == "false")) {
      // Only a literal when not followed by a comparison or string operator
      // (so an attribute actually named "true" can still be compared).
      TokenKind next = toks_[pos_ + 1].kind;
      if (!is_relop(next) && next != TokenKind::kDot &&
          next != TokenKind::kRegexMatch) {
        auto node = std::make_shared<Test>();
        node->kind = take().text == "true" ? Test::Kind::kTrue : Test::Kind::kFalse;
        return node;
      }
    }

    // '(' is ambiguous: parenthesised test or parenthesised term. Try the
    // test reading first with backtracking.
    if (at(TokenKind::kLParen)) {
      const std::size_t save = pos_;
      ++pos_;
      auto inner = parse_test();
      if (inner.ok() && accept(TokenKind::kRParen)) {
        // A parenthesised test must not be followed by a term operator;
        // e.g. "(a) == (b)" must re-parse as a term comparison.
        TokenKind next = peek().kind;
        if (!is_relop(next) && next != TokenKind::kDot &&
            next != TokenKind::kRegexMatch && !is_arith(next)) {
          return std::move(inner).take();
        }
      }
      pos_ = save;  // fall through to the comparison reading
    }

    return comparison();
  }

  static bool is_relop(TokenKind k) {
    return k == TokenKind::kEq || k == TokenKind::kNe || k == TokenKind::kLt ||
           k == TokenKind::kGt || k == TokenKind::kLe || k == TokenKind::kGe;
  }
  static bool is_arith(TokenKind k) {
    return k == TokenKind::kPlus || k == TokenKind::kMinus ||
           k == TokenKind::kStar || k == TokenKind::kSlash ||
           k == TokenKind::kPercent || k == TokenKind::kCaret;
  }

  mwsec::Result<std::shared_ptr<Test>> comparison() {
    auto lhs = term();
    if (!lhs.ok()) return lhs.error();

    if (accept(TokenKind::kRegexMatch)) {
      if (!lhs.value().is_string()) return err("~= requires string operands");
      auto rhs = term();
      if (!rhs.ok()) return rhs.error();
      if (!rhs.value().is_string()) return err("~= requires string pattern");
      auto node = std::make_shared<Test>();
      node->kind = Test::Kind::kRegex;
      node->sl = std::move(lhs.value().str);
      node->sr = std::move(rhs.value().str);
      return node;
    }

    CmpOp op;
    if (accept(TokenKind::kEq)) op = CmpOp::kEq;
    else if (accept(TokenKind::kNe)) op = CmpOp::kNe;
    else if (accept(TokenKind::kLe)) op = CmpOp::kLe;
    else if (accept(TokenKind::kGe)) op = CmpOp::kGe;
    else if (accept(TokenKind::kLt)) op = CmpOp::kLt;
    else if (accept(TokenKind::kGt)) op = CmpOp::kGt;
    else return err("expected comparison operator");

    auto rhs = term();
    if (!rhs.ok()) return rhs.error();
    if (lhs.value().is_string() != rhs.value().is_string()) {
      return err("comparison mixes string and numeric operands");
    }
    auto node = std::make_shared<Test>();
    node->op = op;
    if (lhs.value().is_string()) {
      node->kind = Test::Kind::kStrCmp;
      node->sl = std::move(lhs.value().str);
      node->sr = std::move(rhs.value().str);
    } else {
      node->kind = Test::Kind::kNumCmp;
      node->nl = std::move(lhs.value().num);
      node->nr = std::move(rhs.value().num);
    }
    return node;
  }

  // --- terms ---------------------------------------------------------------
  // Precedence (tightest first): unary -, ^ (right-assoc), * / %, + -,
  // . (string concatenation, lowest — it only applies to strings anyway).
  mwsec::Result<Term> term() { return term_concat(); }

  mwsec::Result<Term> term_concat() {
    auto lhs = term_add();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kDot)) {
      if (!lhs.value().is_string()) return err("'.' requires string operands");
      auto rhs = term_add();
      if (!rhs.ok()) return rhs;
      if (!rhs.value().is_string()) return err("'.' requires string operands");
      auto node = std::make_shared<StringExpr>();
      node->kind = StringExpr::Kind::kConcat;
      node->a = std::move(lhs.value().str);
      node->b = std::move(rhs.value().str);
      Term t;
      t.str = std::move(node);
      lhs = std::move(t);
    }
    return lhs;
  }

  mwsec::Result<Term> term_add() {
    auto lhs = term_mul();
    if (!lhs.ok()) return lhs;
    while (at(TokenKind::kPlus) || at(TokenKind::kMinus)) {
      auto op = take().kind == TokenKind::kPlus ? NumExpr::Kind::kAdd
                                                : NumExpr::Kind::kSub;
      auto rhs = term_mul();
      if (!rhs.ok()) return rhs;
      auto combined = num_binary(op, std::move(lhs.value()), std::move(rhs.value()));
      if (!combined.ok()) return combined.error();
      lhs = std::move(combined).take();
    }
    return lhs;
  }

  mwsec::Result<Term> term_mul() {
    auto lhs = term_pow();
    if (!lhs.ok()) return lhs;
    while (at(TokenKind::kStar) || at(TokenKind::kSlash) ||
           at(TokenKind::kPercent)) {
      NumExpr::Kind op;
      switch (take().kind) {
        case TokenKind::kStar: op = NumExpr::Kind::kMul; break;
        case TokenKind::kSlash: op = NumExpr::Kind::kDiv; break;
        default: op = NumExpr::Kind::kMod; break;
      }
      auto rhs = term_pow();
      if (!rhs.ok()) return rhs;
      auto combined = num_binary(op, std::move(lhs.value()), std::move(rhs.value()));
      if (!combined.ok()) return combined.error();
      lhs = std::move(combined).take();
    }
    return lhs;
  }

  mwsec::Result<Term> term_pow() {
    auto lhs = term_unary();
    if (!lhs.ok()) return lhs;
    if (accept(TokenKind::kCaret)) {
      auto rhs = term_pow();  // right associative
      if (!rhs.ok()) return rhs;
      return num_binary(NumExpr::Kind::kPow, std::move(lhs.value()),
                        std::move(rhs.value()));
    }
    return lhs;
  }

  mwsec::Result<Term> num_binary(NumExpr::Kind op, Term lhs, Term rhs) {
    if (lhs.is_string() || rhs.is_string()) {
      return err("arithmetic requires numeric operands");
    }
    auto node = std::make_shared<NumExpr>();
    node->kind = op;
    node->a = std::move(lhs.num);
    node->b = std::move(rhs.num);
    Term t;
    t.num = std::move(node);
    return t;
  }

  mwsec::Result<Term> term_unary() {
    if (accept(TokenKind::kMinus)) {
      auto inner = term_unary();
      if (!inner.ok()) return inner;
      if (inner.value().is_string()) return err("unary '-' requires a number");
      auto node = std::make_shared<NumExpr>();
      node->kind = NumExpr::Kind::kNeg;
      node->a = std::move(inner.value().num);
      Term t;
      t.num = std::move(node);
      return t;
    }
    return term_primary();
  }

  mwsec::Result<Term> term_primary() {
    Term t;
    if (at(TokenKind::kString)) {
      auto node = std::make_shared<StringExpr>();
      node->kind = StringExpr::Kind::kLiteral;
      node->text = take().text;
      t.str = std::move(node);
      return t;
    }
    if (at(TokenKind::kNumber)) {
      auto node = std::make_shared<NumExpr>();
      node->kind = NumExpr::Kind::kLiteral;
      double v = 0;
      const std::string& s = peek().text;
      auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
      if (ec != std::errc() || ptr != s.data() + s.size()) {
        return err("bad numeric literal");
      }
      take();
      node->literal = v;
      t.num = std::move(node);
      return t;
    }
    if (at(TokenKind::kIdent)) {
      auto node = std::make_shared<StringExpr>();
      node->kind = StringExpr::Kind::kAttr;
      node->text = take().text;
      t.str = std::move(node);
      return t;
    }
    if (accept(TokenKind::kDollar)) {
      auto inner = term_primary();
      if (!inner.ok()) return inner;
      if (!inner.value().is_string()) return err("$ requires a string operand");
      auto node = std::make_shared<StringExpr>();
      node->kind = StringExpr::Kind::kIndirect;
      node->a = std::move(inner.value().str);
      t.str = std::move(node);
      return t;
    }
    if (at(TokenKind::kAt) || at(TokenKind::kAmp)) {
      bool is_int = take().kind == TokenKind::kAt;
      auto inner = term_primary();
      if (!inner.ok()) return inner;
      if (!inner.value().is_string()) {
        return err("@/& require an attribute designator");
      }
      auto node = std::make_shared<NumExpr>();
      node->kind = is_int ? NumExpr::Kind::kIntAttr : NumExpr::Kind::kFloatAttr;
      node->attr = std::move(inner.value().str);
      t.num = std::move(node);
      return t;
    }
    if (accept(TokenKind::kLParen)) {
      auto inner = term();
      if (!inner.ok()) return inner;
      if (!accept(TokenKind::kRParen)) return err("expected ')'");
      return inner;
    }
    return err("expected a term");
  }

  // --- licensees -----------------------------------------------------------
  mwsec::Result<LicenseeExpr> lic_or() {
    auto lhs = lic_and();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kOrOr)) {
      auto rhs = lic_and();
      if (!rhs.ok()) return rhs;
      if (lhs.value().kind == LicenseeExpr::Kind::kOr) {
        lhs.value().children.push_back(std::move(rhs).take());
      } else {
        LicenseeExpr node;
        node.kind = LicenseeExpr::Kind::kOr;
        node.children.push_back(std::move(lhs).take());
        node.children.push_back(std::move(rhs).take());
        lhs = std::move(node);
      }
    }
    return lhs;
  }

  mwsec::Result<LicenseeExpr> lic_and() {
    auto lhs = lic_primary();
    if (!lhs.ok()) return lhs;
    while (accept(TokenKind::kAndAnd)) {
      auto rhs = lic_primary();
      if (!rhs.ok()) return rhs;
      if (lhs.value().kind == LicenseeExpr::Kind::kAnd) {
        lhs.value().children.push_back(std::move(rhs).take());
      } else {
        LicenseeExpr node;
        node.kind = LicenseeExpr::Kind::kAnd;
        node.children.push_back(std::move(lhs).take());
        node.children.push_back(std::move(rhs).take());
        lhs = std::move(node);
      }
    }
    return lhs;
  }

  mwsec::Result<LicenseeExpr> lic_primary() {
    if (at(TokenKind::kString) || at(TokenKind::kIdent)) {
      LicenseeExpr node;
      node.kind = LicenseeExpr::Kind::kPrincipal;
      node.principal = take().text;
      return node;
    }
    if (at(TokenKind::kThreshold)) {
      std::size_t k = 0;
      for (char c : take().text) k = k * 10 + static_cast<std::size_t>(c - '0');
      if (!accept(TokenKind::kLParen)) return err("expected '(' after K-of");
      LicenseeExpr node;
      node.kind = LicenseeExpr::Kind::kThreshold;
      node.k = k;
      do {
        auto member = lic_or();
        if (!member.ok()) return member;
        node.children.push_back(std::move(member).take());
      } while (accept(TokenKind::kComma));
      if (!accept(TokenKind::kRParen)) return err("expected ')' after K-of list");
      if (k == 0 || k > node.children.size()) {
        return err("K-of threshold out of range");
      }
      return node;
    }
    if (accept(TokenKind::kLParen)) {
      auto inner = lic_or();
      if (!inner.ok()) return inner;
      if (!accept(TokenKind::kRParen)) return err("expected ')'");
      return inner;
    }
    return err("expected a principal");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
};

}  // namespace

mwsec::Result<Program> parse_conditions(std::string_view src) {
  auto toks = tokenize(src);
  if (!toks.ok()) return toks.error();
  Parser p(std::move(toks).take());
  return p.conditions();
}

mwsec::Result<LicenseeExpr> parse_licensees(std::string_view src) {
  auto toks = tokenize(src);
  if (!toks.ok()) return toks.error();
  Parser p(std::move(toks).take());
  return p.licensees();
}

void LicenseeExpr::collect_principals(std::vector<std::string>& out) const {
  if (kind == Kind::kPrincipal) out.push_back(principal);
  for (const auto& child : children) child.collect_principals(out);
}

}  // namespace mwsec::keynote
