// Bytecode compilation of Conditions programs (the admission-time half of
// the compiled query engine; vm.hpp is the query-time half).
//
// The tree-walking interpreter in eval.cpp re-resolves every attribute
// name through a std::function chain and re-discovers constants, regex
// patterns and clause structure on every evaluation. This compiler lowers
// a parsed Conditions `Program` once, at admission, into a flat
// instruction vector:
//
//   * attribute references become dense slots in a store-wide `AttrTable`
//     (the VM reads a pre-resolved string_view vector — zero per-access
//     string hashing);
//   * the assertion's Local-Constants are folded in, which in turn enables
//     constant folding of tests, numeric subtrees and regex patterns
//     (a constant pattern is compiled to a std::regex once, here);
//   * boolean structure becomes short-circuit conditional jumps — the VM
//     has no boolean stack and no recursion;
//   * clause outcomes become accumulator ops with early exit once the
//     accumulator reaches _MAX_TRUST, mirroring eval_program's `break`.
//
// Folding also classifies some programs as constant (`ProgramConst`): an
// empty Conditions field is _MAX_TRUST by RFC 2704, a program whose every
// clause folds away can never grant anything, and a clause that is
// unconditionally true with a default outcome makes the whole program
// _MAX_TRUST. Constant programs are never executed at query time.
//
// Finally the compiler extracts a *guard*: action attributes that every
// satisfiable clause pins to a literal via `attr == "lit"`. A program
// guarded on (attr, {lits}) can only evaluate above _MIN_TRUST when the
// action environment's `attr` is one of the lits — the inverted assertion
// index in compiled_store.cpp is built from exactly this fact.
//
// Error semantics are preserved bit-for-bit with eval.cpp: any runtime
// error (non-numeric dereference, division by zero, malformed dynamic
// regex) aborts the *enclosing clause's* test, which then contributes
// nothing. Every clause therefore begins with kClause, which points the
// VM's error target at the next clause.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <regex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "keynote/ast.hpp"

namespace mwsec::keynote {

/// Dense interning of action-attribute names, shared by every compiled
/// program of one store snapshot. Slot i's query-time value is resolved
/// once per query (reserved attribute or environment lookup).
class AttrTable {
 public:
  std::uint32_t intern(std::string_view name);
  std::optional<std::uint32_t> find(std::string_view name) const;
  std::size_t size() const { return names_.size(); }
  const std::string& name(std::uint32_t slot) const { return names_[slot]; }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const {
      return std::hash<std::string_view>{}(s);
    }
  };
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, Hash, std::equal_to<>> ids_;
};

/// True for the four attribute names RFC 2704 reserves for the query
/// engine; they are resolved per query and never fold or act as guards.
bool is_reserved_attr(std::string_view name);

enum class Op : std::uint8_t {
  // String stack.
  kPushStr,     // push str_pool[a]
  kLoadAttr,    // push the resolved value of attribute slot a
  kLoadDyn,     // pop name, push dynamic lookup(name)  ($expr)
  kConcat,      // pop r, pop l, push l.r (owned by VM scratch)
  // Number stack.
  kPushNum,     // push num_pool[a]
  kStrToInt,    // pop string, parse, truncate; error if not numeric
  kStrToFloat,  // pop string, parse; error if not numeric
  kAdd, kSub, kMul, kDiv, kMod, kPow,  // pop r, pop l, push l op r
  kNeg,                                // negate top of number stack
  // Tests: compare and conditionally jump to a. flag = CmpOp | (want<<3):
  // jump when the comparison result equals `want`, else fall through.
  kCmpStr,      // pop r, pop l from the string stack
  kCmpNum,      // pop r, pop l from the number stack
  kRegexConst,  // pop subject; search regex_pool[b]; branch like kCmpStr
  kRegexDyn,    // pop pattern, pop subject; compile + search; bad → error
  kJump,        // pc = a
  kClause,      // start of a clause: error target = a (the next clause)
  // Outcomes (acc = the program/subprogram compliance accumulator).
  kContribMax,  // acc = _MAX_TRUST; jump a (this level is decided)
  kContribVal,  // acc = max(acc, index_of(str_pool[b])); unknown name is a
                // no-op; jump a when acc hit _MAX_TRUST
  kBeginSub,    // push acc, acc = _MIN_TRUST  ("-> { ... }")
  kEndSub,      // parent acc = max(parent, sub); jump a at _MAX_TRUST
  kRet,         // return acc
};

struct Instr {
  Op op;
  std::uint8_t flag = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

/// Compile-time classification of a whole program.
enum class ProgramConst : std::uint8_t {
  kNo,   // must be executed
  kMin,  // provably _MIN_TRUST for every query (never grants)
  kMax,  // provably _MAX_TRUST for every query (empty Conditions, or an
         // unconditional default clause)
};

struct CompiledConditions {
  std::vector<Instr> code;
  std::vector<std::string> str_pool;
  std::vector<double> num_pool;
  std::vector<std::regex> regex_pool;
  /// Patterns of regex_pool, kept for disassembly.
  std::vector<std::string> regex_texts;
  ProgramConst constant = ProgramConst::kNo;
  /// Program uses $-indirection with a non-constant name: the VM needs the
  /// full dynamic lookup chain (local constants included).
  bool needs_dyn = false;
  /// Guard: (attribute slot, sorted literal values). Every satisfiable
  /// clause requires attr == one of the literals, so the program is
  /// _MIN_TRUST whenever the environment value is outside the set.
  std::vector<std::pair<std::uint32_t, std::vector<std::string>>> guards;
};

/// Compile `program` with `constants` (the assertion's Local-Constants)
/// folded in. Interns attribute slots into `attrs`.
CompiledConditions compile_conditions(
    const Program& program,
    const std::map<std::string, std::string>& constants, AttrTable& attrs);

/// Human-readable listing (one instruction per line) for tooling/tests.
std::string disassemble(const CompiledConditions& prog,
                        const AttrTable& attrs);

}  // namespace mwsec::keynote
