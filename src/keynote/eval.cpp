#include "keynote/eval.hpp"

#include <algorithm>
#include <cmath>
#include <regex>
#include <stdexcept>

#include "util/strings.hpp"

namespace mwsec::keynote {

namespace {

/// Internal: aborts evaluation of the enclosing test (making it false).
struct EvalError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Evaluates to a view valid as long as `storage` and the lookup's backing
/// storage live. Only computed results (concatenation) materialise into
/// `storage`; literals and attribute accesses are allocation-free.
std::string_view eval_string(const StringExpr& e, const AttrLookup& lookup,
                             std::string& storage) {
  switch (e.kind) {
    case StringExpr::Kind::kLiteral:
      return e.text;
    case StringExpr::Kind::kAttr:
      return lookup(e.text);
    case StringExpr::Kind::kIndirect: {
      std::string name_storage;
      return lookup(eval_string(*e.a, lookup, name_storage));
    }
    case StringExpr::Kind::kConcat: {
      std::string left_storage;
      std::string out(eval_string(*e.a, lookup, left_storage));
      std::string right_storage;
      out.append(eval_string(*e.b, lookup, right_storage));
      storage = std::move(out);
      return storage;
    }
  }
  throw EvalError("corrupt string expression");
}

double eval_num(const NumExpr& e, const AttrLookup& lookup) {
  switch (e.kind) {
    case NumExpr::Kind::kLiteral:
      return e.literal;
    case NumExpr::Kind::kIntAttr:
    case NumExpr::Kind::kFloatAttr: {
      std::string storage;
      std::string_view raw = eval_string(*e.attr, lookup, storage);
      auto trimmed = util::trim(raw);
      if (!util::is_number(trimmed)) {
        throw EvalError("attribute is not numeric: '" + std::string(raw) +
                        "'");
      }
      double v = std::stod(std::string(trimmed));
      return e.kind == NumExpr::Kind::kIntAttr ? std::trunc(v) : v;
    }
    case NumExpr::Kind::kAdd:
      return eval_num(*e.a, lookup) + eval_num(*e.b, lookup);
    case NumExpr::Kind::kSub:
      return eval_num(*e.a, lookup) - eval_num(*e.b, lookup);
    case NumExpr::Kind::kMul:
      return eval_num(*e.a, lookup) * eval_num(*e.b, lookup);
    case NumExpr::Kind::kDiv: {
      double d = eval_num(*e.b, lookup);
      if (d == 0.0) throw EvalError("division by zero");
      return eval_num(*e.a, lookup) / d;
    }
    case NumExpr::Kind::kMod: {
      double d = eval_num(*e.b, lookup);
      if (d == 0.0) throw EvalError("modulo by zero");
      return std::fmod(eval_num(*e.a, lookup), d);
    }
    case NumExpr::Kind::kPow:
      return std::pow(eval_num(*e.a, lookup), eval_num(*e.b, lookup));
    case NumExpr::Kind::kNeg:
      return -eval_num(*e.a, lookup);
  }
  throw EvalError("corrupt numeric expression");
}

template <typename T>
bool apply_cmp(CmpOp op, const T& l, const T& r) {
  switch (op) {
    case CmpOp::kEq: return l == r;
    case CmpOp::kNe: return l != r;
    case CmpOp::kLt: return l < r;
    case CmpOp::kGt: return l > r;
    case CmpOp::kLe: return l <= r;
    case CmpOp::kGe: return l >= r;
  }
  return false;
}

bool eval_test_impl(const Test& t, const AttrLookup& lookup) {
  switch (t.kind) {
    case Test::Kind::kTrue:
      return true;
    case Test::Kind::kFalse:
      return false;
    case Test::Kind::kAnd:
      return eval_test_impl(*t.ta, lookup) && eval_test_impl(*t.tb, lookup);
    case Test::Kind::kOr:
      return eval_test_impl(*t.ta, lookup) || eval_test_impl(*t.tb, lookup);
    case Test::Kind::kNot:
      return !eval_test_impl(*t.ta, lookup);
    case Test::Kind::kStrCmp: {
      std::string left_storage;
      std::string_view l = eval_string(*t.sl, lookup, left_storage);
      std::string right_storage;
      std::string_view r = eval_string(*t.sr, lookup, right_storage);
      return apply_cmp(t.op, l, r);
    }
    case Test::Kind::kNumCmp:
      return apply_cmp(t.op, eval_num(*t.nl, lookup), eval_num(*t.nr, lookup));
    case Test::Kind::kRegex: {
      std::string subject_storage;
      std::string subject(eval_string(*t.sl, lookup, subject_storage));
      std::string pattern_storage;
      std::string pattern(eval_string(*t.sr, lookup, pattern_storage));
      try {
        std::regex re(pattern, std::regex::extended);
        return std::regex_search(subject, re);
      } catch (const std::regex_error&) {
        throw EvalError("malformed regular expression: " + pattern);
      }
    }
  }
  return false;
}

std::size_t eval_program(const Program& program,
                         const ComplianceValueSet& values,
                         const AttrLookup& lookup) {
  std::size_t best = values.min_index();
  for (const auto& clause : program.clauses) {
    bool satisfied = false;
    try {
      satisfied = eval_test_impl(*clause.test, lookup);
    } catch (const EvalError&) {
      satisfied = false;  // RFC 2704: erroneous tests fail, never propagate
    }
    if (!satisfied) continue;

    std::size_t contribution = values.min_index();
    switch (clause.outcome) {
      case Clause::Outcome::kDefault:
        contribution = values.max_index();
        break;
      case Clause::Outcome::kValue: {
        auto idx = values.index_of(clause.value);
        // An unknown value name is an error local to this clause.
        if (!idx.ok()) continue;
        contribution = *idx;
        break;
      }
      case Clause::Outcome::kProgram:
        contribution = eval_program(*clause.program, values, lookup);
        break;
    }
    best = std::max(best, contribution);
    if (best == values.max_index()) break;  // cannot improve further
  }
  return best;
}

}  // namespace

std::size_t eval_conditions(const Program& program,
                            const ComplianceValueSet& values,
                            const AttrLookup& lookup) {
  // RFC 2704: an empty Conditions field places no constraint on actions.
  if (program.clauses.empty()) return values.max_index();
  return eval_program(program, values, lookup);
}

bool eval_test(const Test& test, const AttrLookup& lookup) {
  try {
    return eval_test_impl(test, lookup);
  } catch (const EvalError&) {
    return false;
  }
}

std::size_t eval_licensees(const LicenseeExpr& expr,
                           const ComplianceValueSet& values,
                           const PrincipalValue& principal_value) {
  switch (expr.kind) {
    case LicenseeExpr::Kind::kNone:
      return values.min_index();
    case LicenseeExpr::Kind::kPrincipal:
      return principal_value(expr.principal);
    case LicenseeExpr::Kind::kAnd: {
      std::size_t v = values.max_index();
      for (const auto& child : expr.children) {
        v = std::min(v, eval_licensees(child, values, principal_value));
      }
      return v;
    }
    case LicenseeExpr::Kind::kOr: {
      std::size_t v = values.min_index();
      for (const auto& child : expr.children) {
        v = std::max(v, eval_licensees(child, values, principal_value));
      }
      return v;
    }
    case LicenseeExpr::Kind::kThreshold: {
      std::vector<std::size_t> member_values;
      member_values.reserve(expr.children.size());
      for (const auto& child : expr.children) {
        member_values.push_back(eval_licensees(child, values, principal_value));
      }
      // K-th largest member value.
      std::sort(member_values.begin(), member_values.end(),
                std::greater<std::size_t>());
      return member_values[expr.k - 1];
    }
  }
  return values.min_index();
}

}  // namespace mwsec::keynote
