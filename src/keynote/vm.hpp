// The Conditions bytecode VM (query-time half of the compiler in
// bytecode.hpp).
//
// Evaluates a CompiledConditions program to a compliance-value index with
// no recursion, no std::function dispatch and no per-attribute string
// hashing: attribute slots are pre-resolved into `attr_values` once per
// query, so the hot fig2-style program (two attribute equality tests) runs
// as a handful of array reads and conditional jumps.
//
// Error semantics match eval.cpp exactly: a runtime error (non-numeric
// dereference, division or modulo by zero, malformed dynamic regex)
// transfers control to the current clause's failure target (set by
// kClause), making that clause contribute nothing.
#pragma once

#include <cstddef>
#include <deque>
#include <string_view>
#include <vector>

#include "keynote/bytecode.hpp"
#include "keynote/eval.hpp"
#include "keynote/values.hpp"

namespace mwsec::keynote {

/// Reusable evaluation scratch. One instance per query (or thread) avoids
/// re-allocating the operand stacks for every assertion evaluated.
struct VmScratch {
  std::vector<std::string_view> sstack;
  std::vector<double> nstack;
  std::vector<std::size_t> accs;
  /// Backing storage for computed strings (concatenations); a deque so
  /// views stay valid as more are appended.
  std::deque<std::string> owned;
};

/// Run a compiled program. `attr_values[slot]` must hold the resolved
/// value of every attribute slot the program references (see
/// AttrTable); `dyn` supplies the full lookup chain and is only required
/// when `prog.needs_dyn`. Constant programs (prog.constant != kNo) must be
/// short-circuited by the caller; running them here is a programming
/// error answered with _MIN_TRUST.
std::size_t run_conditions(const CompiledConditions& prog,
                           const ComplianceValueSet& values,
                           const std::vector<std::string_view>& attr_values,
                           const AttrLookup* dyn, VmScratch& scratch);

}  // namespace mwsec::keynote
