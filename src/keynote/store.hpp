// Credential store: the per-node repository of KeyNote assertions that a
// Secure WebCom environment holds (its local policy plus credentials it
// has collected or been handed by requesters). Thread-safe — the WebCom
// scheduler consults it from worker threads while KeyCOM-style services
// add newly received credentials.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/query.hpp"

namespace mwsec::keynote {

class CredentialStore {
 public:
  /// Add a policy assertion (unsigned, Authorizer: POLICY).
  mwsec::Status add_policy(Assertion assertion);
  /// Parse a bundle of POLICY assertions and add them all.
  mwsec::Status add_policy_text(std::string_view text);

  /// Add a credential; rejected if its signature does not verify.
  mwsec::Status add_credential(Assertion assertion);

  /// Remove every credential whose exact text matches (revocation by
  /// withdrawal; KeyNote itself has no revocation, so stores model it by
  /// discarding assertions).
  std::size_t remove_matching(const std::string& text);

  /// Remove all credentials authored by `authorizer`.
  std::size_t remove_by_authorizer(const std::string& authorizer);

  std::vector<Assertion> policies() const;
  std::vector<Assertion> credentials() const;
  std::vector<Assertion> credentials_by_authorizer(
      const std::string& authorizer) const;

  std::size_t policy_count() const;
  std::size_t credential_count() const;
  void clear();

  /// Evaluate a query against the stored assertions (plus any extra
  /// credentials presented with the request).
  ///
  /// Stored credentials were signature-verified when added, so they are
  /// not re-verified per query (the dominant cost of chain evaluation —
  /// see bench_tm_comparison). Presented credentials are verified here
  /// unless `options.verify_signatures` is false; failures are dropped
  /// and reported in the result.
  mwsec::Result<QueryResult> query(
      const Query& q, const std::vector<Assertion>& presented = {},
      const QueryOptions& options = {}) const;

  /// Serialise the full store as a parseable bundle.
  std::string to_bundle_text() const;

 private:
  mutable std::mutex mu_;
  std::vector<Assertion> policies_;
  std::vector<Assertion> credentials_;
};

}  // namespace mwsec::keynote
