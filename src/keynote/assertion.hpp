// KeyNote assertions (RFC 2704 §4): the unit of both policy and credential.
//
// An assertion is a sequence of "Field-Name: value" lines (continuation
// lines are indented). Fields:
//
//   KeyNote-Version:  optional, "2"
//   Comment:          optional free text
//   Local-Constants:  optional NAME="value" bindings, local to the assertion
//   Authorizer:       required; "POLICY" or a principal
//   Licensees:        principal expression receiving the delegated authority
//   Conditions:       conditions program constraining the delegation
//   Signature:        required on credentials (authorizer != POLICY),
//                     forbidden on policy assertions
//
// Signed credentials hash the canonical serialisation of every field except
// Signature and verify against the Authorizer key.
#pragma once

#include <map>
#include <string>
#include <string_view>

#include "crypto/keys.hpp"
#include "keynote/ast.hpp"
#include "util/result.hpp"

namespace mwsec::keynote {

class Assertion {
 public:
  /// Parse one assertion from its textual form.
  static mwsec::Result<Assertion> parse(std::string_view text);

  /// Parse a bundle: assertions separated by one or more blank lines.
  static mwsec::Result<std::vector<Assertion>> parse_bundle(
      std::string_view text);

  // Field accessors.
  const std::string& keynote_version() const { return keynote_version_; }
  const std::string& comment() const { return comment_; }
  const std::map<std::string, std::string>& local_constants() const {
    return local_constants_;
  }
  /// Authorizer after Local-Constants substitution ("POLICY" for policy).
  const std::string& authorizer() const { return authorizer_; }
  const LicenseeExpr& licensees() const { return licensees_; }
  const std::string& licensees_text() const { return licensees_text_; }
  const Program& conditions() const { return conditions_; }
  const std::string& conditions_text() const { return conditions_text_; }
  const std::string& signature() const { return signature_; }

  bool is_policy() const;
  bool is_signed() const { return !signature_.empty(); }

  /// Canonical text of every field except Signature — the signed body.
  std::string signed_body() const;

  /// Full canonical text including the Signature field if present.
  std::string to_text() const;

  /// Sign with `identity`; its principal must equal the authorizer.
  mwsec::Status sign_with(const crypto::Identity& identity);

  /// Check the signature against the authorizer key. Policy assertions are
  /// trusted by fiat and always verify; unsigned credentials fail.
  mwsec::Status verify() const;

  /// Local-constant lookup used when evaluating this assertion's
  /// conditions: constants shadow the action environment.
  const std::string* find_constant(std::string_view name) const;

 private:
  friend class AssertionBuilder;
  Assertion() = default;

  std::string keynote_version_;
  std::string comment_;
  std::map<std::string, std::string> local_constants_;
  std::string authorizer_text_;  // as written (pre-substitution)
  std::string authorizer_;       // after Local-Constants substitution
  std::string licensees_text_;
  LicenseeExpr licensees_;
  std::string conditions_text_;
  Program conditions_;
  std::string signature_;
};

/// Programmatic construction (used by the RBAC→KeyNote translator).
class AssertionBuilder {
 public:
  AssertionBuilder& version(std::string v);
  AssertionBuilder& comment(std::string c);
  AssertionBuilder& constant(std::string name, std::string value);
  AssertionBuilder& authorizer(std::string a);
  AssertionBuilder& licensees(std::string expr);
  AssertionBuilder& conditions(std::string program);

  /// Validates and parses the sub-languages.
  mwsec::Result<Assertion> build() const;

  /// Build and sign in one step.
  mwsec::Result<Assertion> build_signed(const crypto::Identity& identity) const;

 private:
  std::string version_;
  std::string comment_;
  std::map<std::string, std::string> constants_;
  std::string authorizer_;
  std::string licensees_;
  std::string conditions_;
};

}  // namespace mwsec::keynote
