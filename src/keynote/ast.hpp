// Abstract syntax for the two KeyNote sub-languages (RFC 2704 §5):
//
//  * the Conditions program — a ';'-separated sequence of clauses, each a
//    boolean test optionally followed by "-> value" or "-> { subprogram }";
//  * the Licensees expression — principals combined with &&, || and
//    K-of(...) thresholds.
//
// Expression typing follows KeyNote exactly: a bare attribute reference is
// a *string*; "@attr" dereferences it as an integer and "&attr" as a float;
// "$expr" is an indirect (computed-name) string reference. Comparison
// operators therefore never guess types — both operands of a comparison
// must be the same syntactic type or evaluation fails (and a failed test is
// simply false).
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace mwsec::keynote {

// ---------------------------------------------------------------------------
// String-typed expressions.
struct StringExpr {
  enum class Kind {
    kLiteral,   // "text"
    kAttr,      // attr  (value of the named attribute, or "")
    kIndirect,  // $ <string-expr>  (attribute named by the value of expr)
    kConcat,    // a . b
  };
  Kind kind;
  std::string text;              // literal text or attribute name
  std::shared_ptr<StringExpr> a; // operands
  std::shared_ptr<StringExpr> b;
};

// Numeric-typed expressions. Integer and float dereferences share the node
// set; kIntAttr truncates, kFloatAttr parses as double.
struct NumExpr {
  enum class Kind {
    kLiteral,    // 42, 3.5
    kIntAttr,    // @<designator>
    kFloatAttr,  // &<designator>
    kAdd, kSub, kMul, kDiv, kMod, kPow,
    kNeg,
  };
  Kind kind;
  double literal = 0.0;
  std::shared_ptr<StringExpr> attr;  // designator for kIntAttr / kFloatAttr
  std::shared_ptr<NumExpr> a;
  std::shared_ptr<NumExpr> b;
};

enum class CmpOp { kEq, kNe, kLt, kGt, kLe, kGe };

// Boolean tests.
struct Test {
  enum class Kind {
    kTrue,
    kFalse,
    kAnd,
    kOr,
    kNot,
    kStrCmp,   // string relational: sl op sr
    kNumCmp,   // numeric relational: nl op nr
    kRegex,    // sl ~= sr (sr is a POSIX extended regex)
  };
  Kind kind;
  CmpOp op = CmpOp::kEq;
  std::shared_ptr<Test> ta;
  std::shared_ptr<Test> tb;
  std::shared_ptr<StringExpr> sl;
  std::shared_ptr<StringExpr> sr;
  std::shared_ptr<NumExpr> nl;
  std::shared_ptr<NumExpr> nr;
};

struct Program;

// One clause of a Conditions program.
struct Clause {
  enum class Outcome {
    kDefault,  // no "->": a satisfied test yields _MAX_TRUST
    kValue,    // -> "value"
    kProgram,  // -> { subprogram }
  };
  std::shared_ptr<Test> test;
  Outcome outcome = Outcome::kDefault;
  std::string value;                 // for kValue
  std::shared_ptr<Program> program;  // for kProgram
};

struct Program {
  std::vector<Clause> clauses;
};

// ---------------------------------------------------------------------------
// Licensees expressions. Value semantics (tree is small) — children owned
// directly in a vector.
struct LicenseeExpr {
  enum class Kind {
    kNone,       // empty Licensees field: conveys no authority
    kPrincipal,  // a single principal name
    kAnd,        // conjunction: min of member values
    kOr,         // disjunction: max of member values
    kThreshold,  // K-of(...): K-th largest member value
  };
  Kind kind = Kind::kNone;
  std::string principal;
  std::size_t k = 0;  // for kThreshold
  std::vector<LicenseeExpr> children;

  /// All principal names mentioned anywhere in the expression.
  void collect_principals(std::vector<std::string>& out) const;
};

}  // namespace mwsec::keynote
