#include "keynote/assertion.hpp"

#include <algorithm>
#include <cctype>

#include "keynote/parser.hpp"
#include "util/strings.hpp"

namespace mwsec::keynote {

namespace {

/// Strip surrounding double quotes if present (principals may be written
/// quoted or bare).
std::string unquote(std::string_view s) {
  s = util::trim(s);
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

/// Textual parse of Local-Constants: a sequence of NAME="value" bindings
/// separated by whitespace. Values are quoted strings with \" escapes.
mwsec::Result<std::map<std::string, std::string>> parse_constants_text(
    std::string_view body) {
  std::map<std::string, std::string> out;
  std::size_t i = 0;
  const std::size_t n = body.size();
  auto skip_ws = [&] {
    while (i < n && std::isspace(static_cast<unsigned char>(body[i]))) ++i;
  };
  skip_ws();
  while (i < n) {
    // Name.
    std::size_t start = i;
    while (i < n && (std::isalnum(static_cast<unsigned char>(body[i])) ||
                     body[i] == '_')) {
      ++i;
    }
    if (i == start) {
      return Error::make("Local-Constants: expected a name", "parse");
    }
    std::string name(body.substr(start, i - start));
    skip_ws();
    if (i >= n || body[i] != '=') {
      return Error::make("Local-Constants: expected '=' after " + name,
                         "parse");
    }
    ++i;
    skip_ws();
    if (i >= n || body[i] != '"') {
      return Error::make("Local-Constants: expected quoted value for " + name,
                         "parse");
    }
    ++i;
    std::string value;
    while (i < n && body[i] != '"') {
      if (body[i] == '\\' && i + 1 < n) {
        value.push_back(body[i + 1]);
        i += 2;
      } else {
        value.push_back(body[i]);
        ++i;
      }
    }
    if (i >= n) {
      return Error::make("Local-Constants: unterminated value for " + name,
                         "parse");
    }
    ++i;  // closing quote
    if (!out.emplace(name, value).second) {
      return Error::make("Local-Constants: duplicate name " + name, "parse");
    }
    skip_ws();
  }
  return out;
}

/// Apply Local-Constants substitution to every principal in a licensees
/// expression.
void substitute_principals(LicenseeExpr& expr,
                           const std::map<std::string, std::string>& constants) {
  if (expr.kind == LicenseeExpr::Kind::kPrincipal) {
    auto it = constants.find(expr.principal);
    if (it != constants.end()) expr.principal = it->second;
  }
  for (auto& child : expr.children) substitute_principals(child, constants);
}

}  // namespace

bool Assertion::is_policy() const {
  return util::iequals(authorizer_, "POLICY");
}

mwsec::Result<Assertion> Assertion::parse(std::string_view text) {
  // Fold continuation lines (leading whitespace) into "Name: body" records.
  struct Field {
    std::string name;
    std::string body;
  };
  std::vector<Field> fields;
  for (const auto& raw_line : util::split(text, '\n')) {
    std::string_view line = raw_line;
    if (util::trim(line).empty()) continue;
    if (std::isspace(static_cast<unsigned char>(line.front()))) {
      if (fields.empty()) {
        return Error::make("continuation line before any field", "parse");
      }
      fields.back().body.append(" ");
      fields.back().body.append(util::trim(line));
      continue;
    }
    std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return Error::make("missing ':' in field line: " + std::string(line),
                         "parse");
    }
    Field f;
    f.name = util::to_lower(util::trim(line.substr(0, colon)));
    f.body = std::string(util::trim(line.substr(colon + 1)));
    fields.push_back(std::move(f));
  }
  if (fields.empty()) return Error::make("empty assertion", "parse");

  Assertion a;
  bool saw_authorizer = false;
  for (auto& f : fields) {
    if (f.name == "keynote-version") {
      a.keynote_version_ = unquote(f.body);
    } else if (f.name == "comment") {
      a.comment_ = f.body;
    } else if (f.name == "local-constants") {
      auto consts = parse_constants_text(f.body);
      if (!consts.ok()) return consts.error();
      a.local_constants_ = std::move(consts).take();
    } else if (f.name == "authorizer") {
      if (saw_authorizer) {
        return Error::make("duplicate Authorizer field", "parse");
      }
      saw_authorizer = true;
      a.authorizer_text_ = f.body;
    } else if (f.name == "licensees") {
      a.licensees_text_ = f.body;
    } else if (f.name == "conditions") {
      a.conditions_text_ = f.body;
    } else if (f.name == "signature") {
      a.signature_ = unquote(f.body);
    } else {
      return Error::make("unknown assertion field: " + f.name, "parse");
    }
  }
  if (!saw_authorizer) {
    return Error::make("assertion has no Authorizer field", "parse");
  }

  // Resolve the authorizer: strip quotes, then apply Local-Constants.
  a.authorizer_ = unquote(a.authorizer_text_);
  if (auto it = a.local_constants_.find(a.authorizer_);
      it != a.local_constants_.end()) {
    a.authorizer_ = it->second;
  }

  auto lic = parse_licensees(a.licensees_text_);
  if (!lic.ok()) return lic.error();
  a.licensees_ = std::move(lic).take();
  substitute_principals(a.licensees_, a.local_constants_);

  auto cond = parse_conditions(a.conditions_text_);
  if (!cond.ok()) return cond.error();
  a.conditions_ = std::move(cond).take();

  if (a.is_policy() && a.is_signed()) {
    return Error::make("policy assertions must not carry a signature",
                       "parse");
  }
  return a;
}

mwsec::Result<std::vector<Assertion>> Assertion::parse_bundle(
    std::string_view text) {
  std::vector<Assertion> out;
  std::string current;
  auto flush = [&]() -> mwsec::Status {
    if (util::trim(current).empty()) {
      current.clear();
      return {};
    }
    auto a = parse(current);
    if (!a.ok()) return a.error();
    out.push_back(std::move(a).take());
    current.clear();
    return {};
  };
  for (const auto& line : util::split(text, '\n')) {
    if (util::trim(line).empty()) {
      if (auto s = flush(); !s.ok()) return s.error();
    } else {
      current += line;
      current += '\n';
    }
  }
  if (auto s = flush(); !s.ok()) return s.error();
  return out;
}

std::string Assertion::signed_body() const {
  // Canonical serialisation; the deterministic form both signing and
  // verification hash.
  std::string out;
  if (!keynote_version_.empty()) {
    out += "KeyNote-Version: " + keynote_version_ + "\n";
  }
  if (!comment_.empty()) out += "Comment: " + comment_ + "\n";
  if (!local_constants_.empty()) {
    out += "Local-Constants:";
    for (const auto& [name, value] : local_constants_) {
      out += " " + name + "=\"" + util::replace_all(value, "\"", "\\\"") + "\"";
    }
    out += "\n";
  }
  out += "Authorizer: " + authorizer_text_ + "\n";
  out += "Licensees: " + licensees_text_ + "\n";
  out += "Conditions: " + conditions_text_ + "\n";
  return out;
}

std::string Assertion::to_text() const {
  std::string out = signed_body();
  if (is_signed()) out += "Signature: " + signature_ + "\n";
  return out;
}

mwsec::Status Assertion::sign_with(const crypto::Identity& identity) {
  if (is_policy()) {
    return Error::make("policy assertions are not signed", "signature");
  }
  if (authorizer_ != identity.principal()) {
    return Error::make(
        "signer is not the authorizer (authorizer=" + authorizer_ + ")",
        "signature");
  }
  signature_ = identity.sign(signed_body());
  return {};
}

mwsec::Status Assertion::verify() const {
  if (is_policy()) return {};  // policy is trusted by fiat (RFC 2704 §4.6.1)
  if (!is_signed()) {
    return Error::make("credential is unsigned", "signature");
  }
  if (!crypto::is_key_principal(authorizer_)) {
    return Error::make("authorizer '" + authorizer_ +
                           "' is not a key; cannot verify signature",
                       "signature");
  }
  if (!crypto::verify_message(authorizer_, signed_body(), signature_)) {
    return Error::make("signature verification failed", "signature");
  }
  return {};
}

const std::string* Assertion::find_constant(std::string_view name) const {
  auto it = local_constants_.find(std::string(name));
  return it == local_constants_.end() ? nullptr : &it->second;
}

AssertionBuilder& AssertionBuilder::version(std::string v) {
  version_ = std::move(v);
  return *this;
}
AssertionBuilder& AssertionBuilder::comment(std::string c) {
  comment_ = std::move(c);
  return *this;
}
AssertionBuilder& AssertionBuilder::constant(std::string name,
                                             std::string value) {
  constants_[std::move(name)] = std::move(value);
  return *this;
}
AssertionBuilder& AssertionBuilder::authorizer(std::string a) {
  authorizer_ = std::move(a);
  return *this;
}
AssertionBuilder& AssertionBuilder::licensees(std::string expr) {
  licensees_ = std::move(expr);
  return *this;
}
AssertionBuilder& AssertionBuilder::conditions(std::string program) {
  conditions_ = std::move(program);
  return *this;
}

mwsec::Result<Assertion> AssertionBuilder::build() const {
  if (authorizer_.empty()) {
    return Error::make("assertion needs an authorizer", "build");
  }
  Assertion a;
  a.keynote_version_ = version_;
  a.comment_ = comment_;
  a.local_constants_ = constants_;
  a.authorizer_text_ = authorizer_;
  a.authorizer_ = unquote(authorizer_);
  if (auto it = a.local_constants_.find(a.authorizer_);
      it != a.local_constants_.end()) {
    a.authorizer_ = it->second;
  }
  a.licensees_text_ = licensees_;
  auto lic = parse_licensees(licensees_);
  if (!lic.ok()) return lic.error();
  a.licensees_ = std::move(lic).take();
  substitute_principals(a.licensees_, a.local_constants_);
  a.conditions_text_ = conditions_;
  auto cond = parse_conditions(conditions_);
  if (!cond.ok()) return cond.error();
  a.conditions_ = std::move(cond).take();
  return a;
}

mwsec::Result<Assertion> AssertionBuilder::build_signed(
    const crypto::Identity& identity) const {
  auto a = build();
  if (!a.ok()) return a;
  if (auto s = a.value().sign_with(identity); !s.ok()) return s.error();
  return a;
}

}  // namespace mwsec::keynote
