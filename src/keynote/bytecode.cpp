#include "keynote/bytecode.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/strings.hpp"

namespace mwsec::keynote {

// ---------------------------------------------------------------------------
// AttrTable

std::uint32_t AttrTable::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  auto slot = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), slot);
  return slot;
}

std::optional<std::uint32_t> AttrTable::find(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

bool is_reserved_attr(std::string_view name) {
  return name == "_MIN_TRUST" || name == "_MAX_TRUST" || name == "_VALUES" ||
         name == "_ACTION_AUTHORIZERS";
}

namespace {

// ---------------------------------------------------------------------------
// Folding lattices. Strings never error (an unset attribute reads as "");
// numbers and tests can: an Error folds to "the enclosing clause's test
// aborts", which is distinct from False inside compound tests (the whole
// clause fails, even under a negation or a would-be-true disjunct).

enum class NumState : std::uint8_t { kUnknown, kKnown, kError };
struct FoldNum {
  NumState state = NumState::kUnknown;
  double value = 0.0;
};

enum class TestState : std::uint8_t { kUnknown, kTrue, kFalse, kError };

template <typename T>
bool apply_cmp(CmpOp op, const T& l, const T& r) {
  switch (op) {
    case CmpOp::kEq: return l == r;
    case CmpOp::kNe: return l != r;
    case CmpOp::kLt: return l < r;
    case CmpOp::kGt: return l > r;
    case CmpOp::kLe: return l <= r;
    case CmpOp::kGe: return l >= r;
  }
  return false;
}

/// Guard requirement of one test: `req` maps attribute name to the literal
/// values it must take for the test to possibly be true; `unsat` marks a
/// test that can never be true (e.g. a=="x" && a=="y").
struct Guard {
  bool unsat = false;
  std::map<std::string, std::set<std::string>> req;
};

constexpr std::uint32_t kUnboundLabel = 0xffffffffu;

class Compiler {
 public:
  Compiler(const std::map<std::string, std::string>& constants,
           AttrTable& attrs)
      : constants_(constants), attrs_(attrs) {}

  CompiledConditions run(const Program& program) {
    // RFC 2704: an empty Conditions field places no constraint.
    if (program.clauses.empty()) {
      out_.constant = ProgramConst::kMax;
      return std::move(out_);
    }
    ProgramConst c = fold_program(program);
    if (c != ProgramConst::kNo) {
      out_.constant = c;
      return std::move(out_);
    }
    extract_guards(program);
    if (out_.constant == ProgramConst::kMin) return std::move(out_);

    std::uint32_t end = new_label();
    emit_program(program, end);
    bind(end);
    emit(Op::kRet);
    patch();
    return std::move(out_);
  }

 private:
  // -- folding ------------------------------------------------------------

  /// Compile-time value of a string expression, or nullopt. Local
  /// constants shadow the environment but not the reserved attributes,
  /// exactly as QueryContext::lookup.
  std::optional<std::string> fold_str(const StringExpr& e) const {
    switch (e.kind) {
      case StringExpr::Kind::kLiteral:
        return e.text;
      case StringExpr::Kind::kAttr:
        return constant_of(e.text);
      case StringExpr::Kind::kIndirect: {
        auto name = fold_str(*e.a);
        if (!name) return std::nullopt;
        return constant_of(*name);
      }
      case StringExpr::Kind::kConcat: {
        auto l = fold_str(*e.a);
        if (!l) return std::nullopt;
        auto r = fold_str(*e.b);
        if (!r) return std::nullopt;
        return *l + *r;
      }
    }
    return std::nullopt;
  }

  std::optional<std::string> constant_of(std::string_view name) const {
    if (is_reserved_attr(name)) return std::nullopt;
    auto it = constants_.find(std::string(name));
    if (it == constants_.end()) return std::nullopt;
    return it->second;
  }

  FoldNum fold_num(const NumExpr& e) const {
    switch (e.kind) {
      case NumExpr::Kind::kLiteral:
        return {NumState::kKnown, e.literal};
      case NumExpr::Kind::kIntAttr:
      case NumExpr::Kind::kFloatAttr: {
        auto s = fold_str(*e.attr);
        if (!s) return {};
        auto trimmed = util::trim(*s);
        if (!util::is_number(trimmed)) return {NumState::kError, 0.0};
        double v;
        try {
          v = std::stod(std::string(trimmed));
        } catch (const std::out_of_range&) {
          return {NumState::kError, 0.0};
        }
        if (e.kind == NumExpr::Kind::kIntAttr) v = std::trunc(v);
        return {NumState::kKnown, v};
      }
      case NumExpr::Kind::kNeg: {
        FoldNum a = fold_num(*e.a);
        if (a.state == NumState::kKnown) a.value = -a.value;
        return a;
      }
      default:
        break;
    }
    FoldNum a = fold_num(*e.a);
    FoldNum b = fold_num(*e.b);
    if (a.state == NumState::kError || b.state == NumState::kError) {
      return {NumState::kError, 0.0};
    }
    if ((e.kind == NumExpr::Kind::kDiv || e.kind == NumExpr::Kind::kMod) &&
        b.state == NumState::kKnown && b.value == 0.0) {
      return {NumState::kError, 0.0};
    }
    if (a.state != NumState::kKnown || b.state != NumState::kKnown) return {};
    double v = 0.0;
    switch (e.kind) {
      case NumExpr::Kind::kAdd: v = a.value + b.value; break;
      case NumExpr::Kind::kSub: v = a.value - b.value; break;
      case NumExpr::Kind::kMul: v = a.value * b.value; break;
      case NumExpr::Kind::kDiv: v = a.value / b.value; break;
      case NumExpr::Kind::kMod: v = std::fmod(a.value, b.value); break;
      case NumExpr::Kind::kPow: v = std::pow(a.value, b.value); break;
      default: return {};
    }
    return {NumState::kKnown, v};
  }

  TestState fold_test(const Test& t) const {
    switch (t.kind) {
      case Test::Kind::kTrue:
        return TestState::kTrue;
      case Test::Kind::kFalse:
        return TestState::kFalse;
      case Test::Kind::kAnd: {
        TestState a = fold_test(*t.ta);
        if (a == TestState::kError || a == TestState::kFalse) return a;
        TestState b = fold_test(*t.tb);
        if (a == TestState::kTrue) return b;
        return TestState::kUnknown;  // left side decides at runtime
      }
      case Test::Kind::kOr: {
        TestState a = fold_test(*t.ta);
        if (a == TestState::kError || a == TestState::kTrue) return a;
        TestState b = fold_test(*t.tb);
        if (a == TestState::kFalse) return b;
        return TestState::kUnknown;
      }
      case Test::Kind::kNot:
        switch (fold_test(*t.ta)) {
          case TestState::kTrue: return TestState::kFalse;
          case TestState::kFalse: return TestState::kTrue;
          case TestState::kError: return TestState::kError;
          case TestState::kUnknown: return TestState::kUnknown;
        }
        return TestState::kUnknown;
      case Test::Kind::kStrCmp: {
        auto l = fold_str(*t.sl);
        if (!l) return TestState::kUnknown;
        auto r = fold_str(*t.sr);
        if (!r) return TestState::kUnknown;
        return apply_cmp(t.op, *l, *r) ? TestState::kTrue : TestState::kFalse;
      }
      case Test::Kind::kNumCmp: {
        FoldNum l = fold_num(*t.nl);
        FoldNum r = fold_num(*t.nr);
        // Both operands are evaluated before comparing, so an error in
        // either aborts the clause even when the other is unknown.
        if (l.state == NumState::kError || r.state == NumState::kError) {
          return TestState::kError;
        }
        if (l.state != NumState::kKnown || r.state != NumState::kKnown) {
          return TestState::kUnknown;
        }
        return apply_cmp(t.op, l.value, r.value) ? TestState::kTrue
                                                 : TestState::kFalse;
      }
      case Test::Kind::kRegex: {
        auto pattern = fold_str(*t.sr);
        if (!pattern) return TestState::kUnknown;
        try {
          std::regex re(*pattern, std::regex::extended);
          auto subject = fold_str(*t.sl);
          if (!subject) return TestState::kUnknown;
          return std::regex_search(*subject, re) ? TestState::kTrue
                                                 : TestState::kFalse;
        } catch (const std::regex_error&) {
          return TestState::kError;
        }
      }
    }
    return TestState::kUnknown;
  }

  /// True when the clause can be dropped outright: its test can never be
  /// satisfied, or a satisfied test would contribute nothing.
  bool clause_dropped(const Clause& clause) const {
    TestState t = fold_test(*clause.test);
    if (t == TestState::kFalse || t == TestState::kError) return true;
    if (clause.outcome == Clause::Outcome::kProgram &&
        fold_program_sub(*clause.program) == ProgramConst::kMin) {
      return true;
    }
    return false;
  }

  /// Constant value of a *sub*program (eval_program semantics: an empty
  /// clause list is _MIN_TRUST — only the top-level Conditions field gets
  /// the empty-means-unconstrained reading).
  ProgramConst fold_program_sub(const Program& p) const {
    if (p.clauses.empty()) return ProgramConst::kMin;
    return fold_program(p);
  }

  ProgramConst fold_program(const Program& p) const {
    bool any_live = false;
    for (const auto& clause : p.clauses) {
      if (clause_dropped(clause)) continue;
      TestState t = fold_test(*clause.test);
      switch (clause.outcome) {
        case Clause::Outcome::kDefault:
          if (t == TestState::kTrue) return ProgramConst::kMax;
          break;
        case Clause::Outcome::kProgram:
          if (t == TestState::kTrue &&
              fold_program_sub(*clause.program) == ProgramConst::kMax) {
            return ProgramConst::kMax;
          }
          break;
        case Clause::Outcome::kValue:
          // The name→index mapping is per-query; never constant.
          break;
      }
      any_live = true;
    }
    return any_live ? ProgramConst::kNo : ProgramConst::kMin;
  }

  // -- guard extraction ---------------------------------------------------

  Guard guard_top() const { return {}; }

  Guard guard_of_test(const Test& t) const {
    switch (t.kind) {
      case Test::Kind::kStrCmp: {
        if (t.op != CmpOp::kEq) return guard_top();
        auto atom = [&](const StringExpr& attr_side,
                        const StringExpr& lit_side) -> std::optional<Guard> {
          if (attr_side.kind != StringExpr::Kind::kAttr) return std::nullopt;
          if (is_reserved_attr(attr_side.text) ||
              constants_.count(attr_side.text) != 0) {
            return std::nullopt;
          }
          auto lit = fold_str(lit_side);
          if (!lit) return std::nullopt;
          Guard g;
          g.req[attr_side.text].insert(*lit);
          return g;
        };
        if (auto g = atom(*t.sl, *t.sr)) return *g;
        if (auto g = atom(*t.sr, *t.sl)) return *g;
        return guard_top();
      }
      case Test::Kind::kAnd: {
        Guard a = guard_of_test(*t.ta);
        Guard b = guard_of_test(*t.tb);
        if (a.unsat || b.unsat) return {true, {}};
        // Union of keys; a key required by both sides must satisfy both,
        // so its admissible values intersect.
        for (auto& [name, vals] : b.req) {
          auto it = a.req.find(name);
          if (it == a.req.end()) {
            a.req.emplace(name, std::move(vals));
            continue;
          }
          std::set<std::string> both;
          std::set_intersection(it->second.begin(), it->second.end(),
                                vals.begin(), vals.end(),
                                std::inserter(both, both.begin()));
          if (both.empty()) return {true, {}};
          it->second = std::move(both);
        }
        return a;
      }
      case Test::Kind::kOr: {
        Guard a = guard_of_test(*t.ta);
        Guard b = guard_of_test(*t.tb);
        if (a.unsat) return b;
        if (b.unsat) return a;
        // Only keys constrained on *both* sides survive; their value sets
        // union.
        Guard out;
        for (auto& [name, vals] : a.req) {
          auto it = b.req.find(name);
          if (it == b.req.end()) continue;
          auto& merged = out.req[name];
          merged = std::move(vals);
          merged.insert(it->second.begin(), it->second.end());
        }
        return out;
      }
      default:
        // kNot, numeric and regex tests constrain nothing we can index.
        return guard_top();
    }
  }

  void extract_guards(const Program& program) {
    // An attribute guards the program iff every clause that could
    // contribute pins it to literal(s); the admissible set is the union
    // across clauses.
    std::map<std::string, std::set<std::string>> acc;
    bool first = true;
    bool any_contributing = false;
    for (const auto& clause : program.clauses) {
      if (clause_dropped(clause)) continue;
      Guard g = guard_of_test(*clause.test);
      if (g.unsat) continue;  // can never be satisfied: no contribution
      any_contributing = true;
      if (first) {
        acc = std::move(g.req);
        first = false;
        continue;
      }
      for (auto it = acc.begin(); it != acc.end();) {
        auto other = g.req.find(it->first);
        if (other == g.req.end()) {
          it = acc.erase(it);
          continue;
        }
        it->second.insert(other->second.begin(), other->second.end());
        ++it;
      }
      if (acc.empty()) break;
    }
    if (!any_contributing) {
      // Folding kept clauses whose tests are unsatisfiable only by guard
      // reasoning (a=="x" && a=="y"); the program still never grants.
      out_.constant = ProgramConst::kMin;
      return;
    }
    for (auto& [name, vals] : acc) {
      out_.guards.emplace_back(
          attrs_.intern(name),
          std::vector<std::string>(vals.begin(), vals.end()));
    }
  }

  // -- emission -----------------------------------------------------------

  std::uint32_t new_label() {
    labels_.push_back(kUnboundLabel);
    return static_cast<std::uint32_t>(labels_.size() - 1);
  }

  void bind(std::uint32_t label) {
    labels_[label] = static_cast<std::uint32_t>(out_.code.size());
  }

  void emit(Op op, std::uint8_t flag = 0, std::uint32_t a = 0,
            std::uint32_t b = 0) {
    out_.code.push_back({op, flag, a, b});
  }

  /// Emit an instruction whose `a` is a forward label, patched at the end.
  void emit_to(Op op, std::uint32_t label, std::uint8_t flag = 0,
               std::uint32_t b = 0) {
    patches_.push_back({out_.code.size(), label});
    out_.code.push_back({op, flag, 0, b});
  }

  void patch() {
    for (auto& [instr, label] : patches_) out_.code[instr].a = labels_[label];
    patches_.clear();
  }

  std::uint32_t str_idx(std::string s) {
    auto it = str_ids_.find(s);
    if (it != str_ids_.end()) return it->second;
    auto idx = static_cast<std::uint32_t>(out_.str_pool.size());
    out_.str_pool.push_back(std::move(s));
    str_ids_.emplace(out_.str_pool.back(), idx);
    return idx;
  }

  std::uint32_t num_idx(double v) {
    auto it = num_ids_.find(v);
    if (it != num_ids_.end()) return it->second;
    auto idx = static_cast<std::uint32_t>(out_.num_pool.size());
    out_.num_pool.push_back(v);
    num_ids_.emplace(v, idx);
    return idx;
  }

  std::uint32_t regex_idx(const std::string& pattern) {
    auto it = regex_ids_.find(pattern);
    if (it != regex_ids_.end()) return it->second;
    auto idx = static_cast<std::uint32_t>(out_.regex_pool.size());
    // fold_test already vetted the pattern; a throw here cannot happen.
    out_.regex_pool.emplace_back(pattern, std::regex::extended);
    out_.regex_texts.push_back(pattern);
    regex_ids_.emplace(pattern, idx);
    return idx;
  }

  void emit_str(const StringExpr& e) {
    if (auto s = fold_str(e)) {
      emit(Op::kPushStr, 0, str_idx(std::move(*s)));
      return;
    }
    switch (e.kind) {
      case StringExpr::Kind::kAttr:
        emit(Op::kLoadAttr, 0, attrs_.intern(e.text));
        return;
      case StringExpr::Kind::kIndirect:
        // A constant name that is not a local constant is an ordinary
        // attribute read; only a computed name needs the dynamic chain.
        if (auto name = fold_str(*e.a)) {
          emit(Op::kLoadAttr, 0, attrs_.intern(*name));
          return;
        }
        emit_str(*e.a);
        emit(Op::kLoadDyn);
        out_.needs_dyn = true;
        return;
      case StringExpr::Kind::kConcat:
        emit_str(*e.a);
        emit_str(*e.b);
        emit(Op::kConcat);
        return;
      case StringExpr::Kind::kLiteral:
        emit(Op::kPushStr, 0, str_idx(e.text));  // unreachable (folds)
        return;
    }
  }

  void emit_num(const NumExpr& e) {
    FoldNum f = fold_num(e);
    if (f.state == NumState::kKnown) {
      emit(Op::kPushNum, 0, num_idx(f.value));
      return;
    }
    switch (e.kind) {
      case NumExpr::Kind::kIntAttr:
      case NumExpr::Kind::kFloatAttr:
        emit_str(*e.attr);
        emit(e.kind == NumExpr::Kind::kIntAttr ? Op::kStrToInt
                                               : Op::kStrToFloat);
        return;
      case NumExpr::Kind::kNeg:
        emit_num(*e.a);
        emit(Op::kNeg);
        return;
      case NumExpr::Kind::kAdd:
      case NumExpr::Kind::kSub:
      case NumExpr::Kind::kMul:
      case NumExpr::Kind::kDiv:
      case NumExpr::Kind::kMod:
      case NumExpr::Kind::kPow: {
        emit_num(*e.a);
        emit_num(*e.b);
        Op op = Op::kAdd;
        switch (e.kind) {
          case NumExpr::Kind::kSub: op = Op::kSub; break;
          case NumExpr::Kind::kMul: op = Op::kMul; break;
          case NumExpr::Kind::kDiv: op = Op::kDiv; break;
          case NumExpr::Kind::kMod: op = Op::kMod; break;
          case NumExpr::Kind::kPow: op = Op::kPow; break;
          default: break;
        }
        emit(op);
        return;
      }
      case NumExpr::Kind::kLiteral:
        emit(Op::kPushNum, 0, num_idx(e.literal));  // unreachable (folds)
        return;
    }
  }

  static std::uint8_t cmp_flag(CmpOp op, bool want) {
    return static_cast<std::uint8_t>(static_cast<std::uint8_t>(op) |
                                     (want ? 0x8 : 0));
  }

  /// Emit code that jumps to `target` when the test's value equals `want`
  /// and falls through otherwise; a runtime error jumps to `err` (the
  /// clause's failure label — the VM's error target is set to the same
  /// place by kClause, so this only matters for folded errors).
  void emit_test(const Test& t, std::uint32_t target, bool want,
                 std::uint32_t err) {
    switch (fold_test(t)) {
      case TestState::kTrue:
        if (want) emit_to(Op::kJump, target);
        return;
      case TestState::kFalse:
        if (!want) emit_to(Op::kJump, target);
        return;
      case TestState::kError:
        emit_to(Op::kJump, err);
        return;
      case TestState::kUnknown:
        break;
    }
    switch (t.kind) {
      case Test::Kind::kNot:
        emit_test(*t.ta, target, !want, err);
        return;
      case Test::Kind::kAnd:
        if (!want) {
          emit_test(*t.ta, target, false, err);
          emit_test(*t.tb, target, false, err);
        } else {
          std::uint32_t skip = new_label();
          emit_test(*t.ta, skip, false, err);
          emit_test(*t.tb, target, true, err);
          bind(skip);
        }
        return;
      case Test::Kind::kOr:
        if (want) {
          emit_test(*t.ta, target, true, err);
          emit_test(*t.tb, target, true, err);
        } else {
          std::uint32_t skip = new_label();
          emit_test(*t.ta, skip, true, err);
          emit_test(*t.tb, target, false, err);
          bind(skip);
        }
        return;
      case Test::Kind::kStrCmp:
        emit_str(*t.sl);
        emit_str(*t.sr);
        emit_to(Op::kCmpStr, target, cmp_flag(t.op, want));
        return;
      case Test::Kind::kNumCmp:
        emit_num(*t.nl);
        emit_num(*t.nr);
        emit_to(Op::kCmpNum, target, cmp_flag(t.op, want));
        return;
      case Test::Kind::kRegex:
        if (auto pattern = fold_str(*t.sr)) {
          emit_str(*t.sl);
          emit_to(Op::kRegexConst, target, want ? 0x8 : 0,
                  regex_idx(*pattern));
        } else {
          emit_str(*t.sl);
          emit_str(*t.sr);
          emit_to(Op::kRegexDyn, target, want ? 0x8 : 0);
        }
        return;
      case Test::Kind::kTrue:
      case Test::Kind::kFalse:
        return;  // handled by folding
    }
  }

  void emit_program(const Program& p, std::uint32_t end) {
    for (const auto& clause : p.clauses) {
      if (clause_dropped(clause)) continue;
      std::uint32_t next = new_label();
      emit_to(Op::kClause, next);
      if (fold_test(*clause.test) != TestState::kTrue) {
        emit_test(*clause.test, next, false, next);
      }
      switch (clause.outcome) {
        case Clause::Outcome::kDefault:
          emit_to(Op::kContribMax, end);
          break;
        case Clause::Outcome::kValue:
          emit_to(Op::kContribVal, end, 0, str_idx(clause.value));
          break;
        case Clause::Outcome::kProgram:
          if (fold_program_sub(*clause.program) == ProgramConst::kMax) {
            emit_to(Op::kContribMax, end);
          } else {
            emit(Op::kBeginSub);
            std::uint32_t sub_end = new_label();
            emit_program(*clause.program, sub_end);
            bind(sub_end);
            emit_to(Op::kEndSub, end);
          }
          break;
      }
      bind(next);
    }
  }

  const std::map<std::string, std::string>& constants_;
  AttrTable& attrs_;
  CompiledConditions out_;
  std::vector<std::uint32_t> labels_;
  std::vector<std::pair<std::size_t, std::uint32_t>> patches_;
  std::unordered_map<std::string, std::uint32_t> str_ids_;
  std::unordered_map<double, std::uint32_t> num_ids_;
  std::unordered_map<std::string, std::uint32_t> regex_ids_;
};

const char* op_name(Op op) {
  switch (op) {
    case Op::kPushStr: return "push_str";
    case Op::kLoadAttr: return "load_attr";
    case Op::kLoadDyn: return "load_dyn";
    case Op::kConcat: return "concat";
    case Op::kPushNum: return "push_num";
    case Op::kStrToInt: return "str_to_int";
    case Op::kStrToFloat: return "str_to_float";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kDiv: return "div";
    case Op::kMod: return "mod";
    case Op::kPow: return "pow";
    case Op::kNeg: return "neg";
    case Op::kCmpStr: return "cmp_str";
    case Op::kCmpNum: return "cmp_num";
    case Op::kRegexConst: return "regex";
    case Op::kRegexDyn: return "regex_dyn";
    case Op::kJump: return "jump";
    case Op::kClause: return "clause";
    case Op::kContribMax: return "contrib_max";
    case Op::kContribVal: return "contrib_val";
    case Op::kBeginSub: return "begin_sub";
    case Op::kEndSub: return "end_sub";
    case Op::kRet: return "ret";
  }
  return "?";
}

const char* cmp_name(std::uint8_t flag) {
  switch (static_cast<CmpOp>(flag & 0x7)) {
    case CmpOp::kEq: return "==";
    case CmpOp::kNe: return "!=";
    case CmpOp::kLt: return "<";
    case CmpOp::kGt: return ">";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

}  // namespace

CompiledConditions compile_conditions(
    const Program& program,
    const std::map<std::string, std::string>& constants, AttrTable& attrs) {
  return Compiler(constants, attrs).run(program);
}

std::string disassemble(const CompiledConditions& prog,
                        const AttrTable& attrs) {
  std::string out;
  switch (prog.constant) {
    case ProgramConst::kMin:
      return "  <constant: _MIN_TRUST>\n";
    case ProgramConst::kMax:
      return "  <constant: _MAX_TRUST>\n";
    case ProgramConst::kNo:
      break;
  }
  for (std::size_t pc = 0; pc < prog.code.size(); ++pc) {
    const Instr& in = prog.code[pc];
    out += "  " + std::to_string(pc) + ": ";
    out += op_name(in.op);
    switch (in.op) {
      case Op::kPushStr:
        out += " \"" + prog.str_pool[in.a] + "\"";
        break;
      case Op::kLoadAttr:
        out += " " + attrs.name(in.a) + " (slot " + std::to_string(in.a) + ")";
        break;
      case Op::kPushNum:
        out += " " + std::to_string(prog.num_pool[in.a]);
        break;
      case Op::kCmpStr:
      case Op::kCmpNum:
        out += std::string(" ") + cmp_name(in.flag) +
               ((in.flag & 0x8) ? " jump_if_true " : " jump_if_false ") +
               std::to_string(in.a);
        break;
      case Op::kRegexConst:
        out += " /" + prog.regex_texts[in.b] + "/" +
               ((in.flag & 0x8) ? " jump_if_true " : " jump_if_false ") +
               std::to_string(in.a);
        break;
      case Op::kRegexDyn:
        out += (in.flag & 0x8) ? " jump_if_true " : " jump_if_false ";
        out += std::to_string(in.a);
        break;
      case Op::kJump:
      case Op::kClause:
      case Op::kContribMax:
      case Op::kEndSub:
        out += " -> " + std::to_string(in.a);
        break;
      case Op::kContribVal:
        out += " \"" + prog.str_pool[in.b] + "\" -> " + std::to_string(in.a);
        break;
      default:
        break;
    }
    out += "\n";
  }
  if (!prog.guards.empty()) {
    out += "  guards:";
    for (const auto& [slot, vals] : prog.guards) {
      out += " " + attrs.name(slot) + "={";
      for (std::size_t i = 0; i < vals.size(); ++i) {
        if (i != 0) out += ",";
        out += "\"" + vals[i] + "\"";
      }
      out += "}";
    }
    out += "\n";
  }
  if (prog.needs_dyn) out += "  needs dynamic attribute lookup\n";
  return out;
}

}  // namespace mwsec::keynote
