#include "keynote/lexer.hpp"

#include <cctype>

namespace mwsec::keynote {

const char* token_kind_name(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kThreshold: return "k-of";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kLBrace: return "{";
    case TokenKind::kRBrace: return "}";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kComma: return ",";
    case TokenKind::kArrow: return "->";
    case TokenKind::kAndAnd: return "&&";
    case TokenKind::kOrOr: return "||";
    case TokenKind::kNot: return "!";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kGt: return ">";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGe: return ">=";
    case TokenKind::kRegexMatch: return "~=";
    case TokenKind::kPlus: return "+";
    case TokenKind::kMinus: return "-";
    case TokenKind::kStar: return "*";
    case TokenKind::kSlash: return "/";
    case TokenKind::kPercent: return "%";
    case TokenKind::kCaret: return "^";
    case TokenKind::kDot: return ".";
    case TokenKind::kAt: return "@";
    case TokenKind::kAmp: return "&";
    case TokenKind::kDollar: return "$";
    case TokenKind::kEnd: return "<end>";
  }
  return "?";
}

namespace {

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

mwsec::Error err_at(std::string_view msg, std::size_t pos) {
  return mwsec::Error::make(std::string(msg) + " at offset " +
                                std::to_string(pos),
                            "lex");
}

}  // namespace

mwsec::Result<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  const std::size_t n = src.size();

  auto push = [&](TokenKind kind, std::string text, std::size_t pos) {
    out.push_back(Token{kind, std::move(text), pos});
  };

  while (i < n) {
    char c = src[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    const std::size_t start = i;

    // Numbers — also the K in "K-of(...)" threshold expressions. A digit
    // run directly followed by "-of" lexes as one threshold token.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      if (j + 2 < n && src[j] == '-' && src[j + 1] == 'o' && src[j + 2] == 'f') {
        push(TokenKind::kThreshold, std::string(src.substr(i, j - i)), start);
        i = j + 3;
        continue;
      }
      bool saw_dot = false;
      if (j < n && src[j] == '.' && j + 1 < n &&
          std::isdigit(static_cast<unsigned char>(src[j + 1]))) {
        saw_dot = true;
        ++j;
        while (j < n && std::isdigit(static_cast<unsigned char>(src[j]))) ++j;
      }
      (void)saw_dot;
      push(TokenKind::kNumber, std::string(src.substr(i, j - i)), start);
      i = j;
      continue;
    }

    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(src[j])) ++j;
      push(TokenKind::kIdent, std::string(src.substr(i, j - i)), start);
      i = j;
      continue;
    }

    if (c == '"') {
      std::string value;
      std::size_t j = i + 1;
      while (j < n && src[j] != '"') {
        if (src[j] == '\\' && j + 1 < n) {
          char e = src[j + 1];
          switch (e) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case '\\': value.push_back('\\'); break;
            case '"': value.push_back('"'); break;
            default: value.push_back(e); break;
          }
          j += 2;
        } else {
          value.push_back(src[j]);
          ++j;
        }
      }
      if (j >= n) return err_at("unterminated string literal", start);
      push(TokenKind::kString, std::move(value), start);
      i = j + 1;
      continue;
    }

    auto two = [&](char a, char b) {
      return c == a && i + 1 < n && src[i + 1] == b;
    };

    if (two('&', '&')) { push(TokenKind::kAndAnd, "&&", start); i += 2; continue; }
    if (two('|', '|')) { push(TokenKind::kOrOr, "||", start); i += 2; continue; }
    if (two('=', '=')) { push(TokenKind::kEq, "==", start); i += 2; continue; }
    if (two('!', '=')) { push(TokenKind::kNe, "!=", start); i += 2; continue; }
    if (two('<', '=')) { push(TokenKind::kLe, "<=", start); i += 2; continue; }
    if (two('>', '=')) { push(TokenKind::kGe, ">=", start); i += 2; continue; }
    if (two('~', '=')) { push(TokenKind::kRegexMatch, "~=", start); i += 2; continue; }
    if (two('-', '>')) { push(TokenKind::kArrow, "->", start); i += 2; continue; }

    switch (c) {
      case '(': push(TokenKind::kLParen, "(", start); ++i; continue;
      case ')': push(TokenKind::kRParen, ")", start); ++i; continue;
      case '{': push(TokenKind::kLBrace, "{", start); ++i; continue;
      case '}': push(TokenKind::kRBrace, "}", start); ++i; continue;
      case ';': push(TokenKind::kSemicolon, ";", start); ++i; continue;
      case ',': push(TokenKind::kComma, ",", start); ++i; continue;
      case '!': push(TokenKind::kNot, "!", start); ++i; continue;
      case '<': push(TokenKind::kLt, "<", start); ++i; continue;
      case '>': push(TokenKind::kGt, ">", start); ++i; continue;
      case '+': push(TokenKind::kPlus, "+", start); ++i; continue;
      case '-': push(TokenKind::kMinus, "-", start); ++i; continue;
      case '*': push(TokenKind::kStar, "*", start); ++i; continue;
      case '/': push(TokenKind::kSlash, "/", start); ++i; continue;
      case '%': push(TokenKind::kPercent, "%", start); ++i; continue;
      case '^': push(TokenKind::kCaret, "^", start); ++i; continue;
      case '.': push(TokenKind::kDot, ".", start); ++i; continue;
      case '@': push(TokenKind::kAt, "@", start); ++i; continue;
      case '&': push(TokenKind::kAmp, "&", start); ++i; continue;
      case '$': push(TokenKind::kDollar, "$", start); ++i; continue;
      default:
        return err_at(std::string("unexpected character '") + c + "'", start);
    }
  }
  push(TokenKind::kEnd, "", n);
  return out;
}

}  // namespace mwsec::keynote
