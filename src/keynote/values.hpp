// Compliance values and the action environment (RFC 2704 §3, §4).
//
// A KeyNote query returns one of an ordered set of compliance values,
// minimum ("_MIN_TRUST") first and maximum ("_MAX_TRUST") last. Unless the
// query supplies its own ordering, the set is {"false", "true"}. The action
// environment is the set of attribute name/value pairs describing the
// request being authorised (e.g. app_domain = "WebCom", Role = "Manager").
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace mwsec::keynote {

/// Ordered set of compliance values.
class ComplianceValueSet {
 public:
  /// Default ordering: {"false", "true"}.
  ComplianceValueSet();
  /// Custom ordering, minimum first. Must be non-empty and duplicate-free.
  static mwsec::Result<ComplianceValueSet> make(std::vector<std::string> ordered);

  std::size_t size() const { return ordered_.size(); }
  const std::string& name(std::size_t index) const { return ordered_[index]; }
  /// Index of a value name; error if unknown.
  mwsec::Result<std::size_t> index_of(std::string_view name) const;

  std::size_t min_index() const { return 0; }
  std::size_t max_index() const { return ordered_.size() - 1; }
  const std::string& min_name() const { return ordered_.front(); }
  const std::string& max_name() const { return ordered_.back(); }

  /// Comma-separated rendering, as bound to the _VALUES attribute.
  std::string joined() const;

  bool operator==(const ComplianceValueSet& o) const {
    return ordered_ == o.ordered_;
  }

 private:
  std::vector<std::string> ordered_;
};

/// Attribute name/value pairs describing the action, plus the RFC 2704
/// reserved attributes (_MIN_TRUST, _MAX_TRUST, _VALUES,
/// _ACTION_AUTHORIZERS) which are synthesised at query time.
class ActionEnvironment {
 public:
  ActionEnvironment() = default;
  ActionEnvironment(std::initializer_list<std::pair<const std::string, std::string>> init)
      : attrs_(init) {}

  void set(std::string name, std::string value) {
    attrs_[std::move(name)] = std::move(value);
  }

  /// RFC 2704: a reference to an unset attribute yields the empty string.
  /// Returns a reference into the environment (or a static empty string),
  /// so the conditions interpreter can read attributes without copying.
  const std::string& get(std::string_view name) const;
  bool has(std::string_view name) const;

  const std::map<std::string, std::string, std::less<>>& attrs() const {
    return attrs_;
  }

 private:
  std::map<std::string, std::string, std::less<>> attrs_;
};

}  // namespace mwsec::keynote
