#include "keynote/store.hpp"

#include <algorithm>

namespace mwsec::keynote {

mwsec::Status CredentialStore::add_policy(Assertion assertion) {
  if (!assertion.is_policy()) {
    return Error::make("not a POLICY assertion", "store");
  }
  std::scoped_lock lock(mu_);
  policies_.push_back(std::move(assertion));
  return {};
}

mwsec::Status CredentialStore::add_policy_text(std::string_view text) {
  auto bundle = Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (auto s = add_policy(std::move(a)); !s.ok()) return s;
  }
  return {};
}

mwsec::Status CredentialStore::add_credential(Assertion assertion) {
  if (auto v = assertion.verify(); !v.ok()) return v;
  std::scoped_lock lock(mu_);
  // Idempotent: identical text is stored once.
  for (const auto& existing : credentials_) {
    if (existing.to_text() == assertion.to_text()) return {};
  }
  credentials_.push_back(std::move(assertion));
  return {};
}

std::size_t CredentialStore::remove_matching(const std::string& text) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_,
                [&](const Assertion& a) { return a.to_text() == text; });
  return before - credentials_.size();
}

std::size_t CredentialStore::remove_by_authorizer(
    const std::string& authorizer) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_, [&](const Assertion& a) {
    return a.authorizer() == authorizer;
  });
  return before - credentials_.size();
}

std::vector<Assertion> CredentialStore::policies() const {
  std::scoped_lock lock(mu_);
  return policies_;
}

std::vector<Assertion> CredentialStore::credentials() const {
  std::scoped_lock lock(mu_);
  return credentials_;
}

std::vector<Assertion> CredentialStore::credentials_by_authorizer(
    const std::string& authorizer) const {
  std::scoped_lock lock(mu_);
  std::vector<Assertion> out;
  for (const auto& a : credentials_) {
    if (a.authorizer() == authorizer) out.push_back(a);
  }
  return out;
}

std::size_t CredentialStore::policy_count() const {
  std::scoped_lock lock(mu_);
  return policies_.size();
}

std::size_t CredentialStore::credential_count() const {
  std::scoped_lock lock(mu_);
  return credentials_.size();
}

void CredentialStore::clear() {
  std::scoped_lock lock(mu_);
  policies_.clear();
  credentials_.clear();
}

mwsec::Result<QueryResult> CredentialStore::query(
    const Query& q, const std::vector<Assertion>& presented,
    const QueryOptions& options) const {
  std::vector<Assertion> policies, credentials;
  {
    std::scoped_lock lock(mu_);
    policies = policies_;
    credentials = credentials_;
  }
  // Stored credentials are pre-verified (add_credential refuses bad
  // signatures), so verification here would only repeat work. Presented
  // credentials are screened now, keeping the per-request trust decision
  // while the evaluator itself runs signature-free.
  std::vector<std::string> dropped;
  for (const auto& a : presented) {
    if (options.verify_signatures) {
      if (auto v = a.verify(); !v.ok()) {
        dropped.push_back(v.error().message);
        continue;
      }
    }
    credentials.push_back(a);
  }
  QueryOptions lax = options;
  lax.verify_signatures = false;
  auto result = evaluate(policies, credentials, q, lax);
  if (result.ok()) {
    result.value().dropped_credentials.insert(
        result.value().dropped_credentials.end(), dropped.begin(),
        dropped.end());
  }
  return result;
}

std::string CredentialStore::to_bundle_text() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const auto& p : policies_) {
    out += p.to_text();
    out += "\n";
  }
  for (const auto& c : credentials_) {
    out += c.to_text();
    out += "\n";
  }
  return out;
}

}  // namespace mwsec::keynote
