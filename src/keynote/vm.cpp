#include "keynote/vm.hpp"

#include <cmath>
#include <regex>
#include <string>

#include "util/strings.hpp"

namespace mwsec::keynote {

namespace {

bool apply_cmp(CmpOp op, int sign) {
  switch (op) {
    case CmpOp::kEq: return sign == 0;
    case CmpOp::kNe: return sign != 0;
    case CmpOp::kLt: return sign < 0;
    case CmpOp::kGt: return sign > 0;
    case CmpOp::kLe: return sign <= 0;
    case CmpOp::kGe: return sign >= 0;
  }
  return false;
}

bool cmp_num(CmpOp op, double l, double r) {
  switch (op) {
    case CmpOp::kEq: return l == r;
    case CmpOp::kNe: return l != r;
    case CmpOp::kLt: return l < r;
    case CmpOp::kGt: return l > r;
    case CmpOp::kLe: return l <= r;
    case CmpOp::kGe: return l >= r;
  }
  return false;
}

}  // namespace

std::size_t run_conditions(const CompiledConditions& prog,
                           const ComplianceValueSet& values,
                           const std::vector<std::string_view>& attr_values,
                           const AttrLookup* dyn, VmScratch& scratch) {
  switch (prog.constant) {
    case ProgramConst::kMax:
      return values.max_index();
    case ProgramConst::kMin:
      return values.min_index();
    case ProgramConst::kNo:
      break;
  }
  auto& ss = scratch.sstack;
  auto& ns = scratch.nstack;
  auto& accs = scratch.accs;
  ss.clear();
  ns.clear();
  accs.clear();
  scratch.owned.clear();

  const std::size_t vmin = values.min_index();
  const std::size_t vmax = values.max_index();
  const Instr* code = prog.code.data();
  const std::size_t size = prog.code.size();
  std::size_t acc = vmin;
  std::size_t pc = 0;
  // kClause precedes every fallible instruction, so the initial value is
  // never consulted; end-of-program is a safe default regardless.
  std::size_t err_target = size;

  auto pop_s = [&ss]() {
    std::string_view v = ss.back();
    ss.pop_back();
    return v;
  };
  auto pop_n = [&ns]() {
    double v = ns.back();
    ns.pop_back();
    return v;
  };

  while (pc < size) {
    const Instr& in = code[pc];
    bool error = false;
    switch (in.op) {
      case Op::kPushStr:
        ss.push_back(prog.str_pool[in.a]);
        break;
      case Op::kLoadAttr:
        ss.push_back(attr_values[in.a]);
        break;
      case Op::kLoadDyn: {
        std::string_view name = pop_s();
        ss.push_back((*dyn)(name));
        break;
      }
      case Op::kConcat: {
        std::string_view r = pop_s();
        std::string_view l = pop_s();
        std::string joined;
        joined.reserve(l.size() + r.size());
        joined.append(l).append(r);
        scratch.owned.push_back(std::move(joined));
        ss.push_back(scratch.owned.back());
        break;
      }
      case Op::kPushNum:
        ns.push_back(prog.num_pool[in.a]);
        break;
      case Op::kStrToInt:
      case Op::kStrToFloat: {
        std::string_view raw = pop_s();
        auto trimmed = util::trim(raw);
        if (!util::is_number(trimmed)) {
          error = true;
          break;
        }
        double v = std::stod(std::string(trimmed));
        ns.push_back(in.op == Op::kStrToInt ? std::trunc(v) : v);
        break;
      }
      case Op::kAdd: {
        double r = pop_n();
        ns.back() += r;
        break;
      }
      case Op::kSub: {
        double r = pop_n();
        ns.back() -= r;
        break;
      }
      case Op::kMul: {
        double r = pop_n();
        ns.back() *= r;
        break;
      }
      case Op::kDiv: {
        double r = pop_n();
        if (r == 0.0) {
          error = true;
          break;
        }
        ns.back() /= r;
        break;
      }
      case Op::kMod: {
        double r = pop_n();
        if (r == 0.0) {
          error = true;
          break;
        }
        ns.back() = std::fmod(ns.back(), r);
        break;
      }
      case Op::kPow: {
        double r = pop_n();
        ns.back() = std::pow(ns.back(), r);
        break;
      }
      case Op::kNeg:
        ns.back() = -ns.back();
        break;
      case Op::kCmpStr: {
        std::string_view r = pop_s();
        std::string_view l = pop_s();
        bool res = apply_cmp(static_cast<CmpOp>(in.flag & 0x7),
                             l.compare(r) < 0 ? -1 : (l == r ? 0 : 1));
        if (res == ((in.flag & 0x8) != 0)) {
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::kCmpNum: {
        double r = pop_n();
        double l = pop_n();
        if (cmp_num(static_cast<CmpOp>(in.flag & 0x7), l, r) ==
            ((in.flag & 0x8) != 0)) {
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::kRegexConst: {
        std::string_view subject = pop_s();
        bool res = std::regex_search(subject.begin(), subject.end(),
                                     prog.regex_pool[in.b]);
        if (res == ((in.flag & 0x8) != 0)) {
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::kRegexDyn: {
        std::string_view pattern = pop_s();
        std::string_view subject = pop_s();
        bool res = false;
        try {
          std::regex re(std::string(pattern), std::regex::extended);
          res = std::regex_search(subject.begin(), subject.end(), re);
        } catch (const std::regex_error&) {
          error = true;
          break;
        }
        if (res == ((in.flag & 0x8) != 0)) {
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::kJump:
        pc = in.a;
        continue;
      case Op::kClause:
        err_target = in.a;
        break;
      case Op::kContribMax:
        acc = vmax;
        pc = in.a;
        continue;
      case Op::kContribVal: {
        // An unknown value name is an error local to this clause: it
        // contributes nothing and execution falls through.
        if (auto idx = values.index_of(prog.str_pool[in.b]); idx.ok()) {
          if (*idx > acc) acc = *idx;
          if (acc == vmax) {
            pc = in.a;
            continue;
          }
        }
        break;
      }
      case Op::kBeginSub:
        accs.push_back(acc);
        acc = vmin;
        break;
      case Op::kEndSub: {
        std::size_t sub = acc;
        acc = accs.back();
        accs.pop_back();
        if (sub > acc) acc = sub;
        if (acc == vmax) {
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::kRet:
        return acc;
    }
    if (error) {
      // RFC 2704: an erroneous test makes its clause contribute nothing.
      ss.clear();
      ns.clear();
      pc = err_target;
      continue;
    }
    ++pc;
  }
  return acc;
}

}  // namespace mwsec::keynote
