// The KeyNote query engine (RFC 2704 query semantics).
//
// Given a set of unsigned POLICY assertions (the local trust root), a set
// of signed credentials, the requesting principals (action authorisers)
// and an action environment, compute the compliance value of the request:
// the greatest value `v` such that authority flows from POLICY to the
// requesters at level `v` through the delegation graph.
//
// The computation is a Kleene fixpoint: every principal starts at
// _MIN_TRUST (requesters start at _MAX_TRUST) and assertion values
//   value(A) = min(conditions(A), licensees(A))
// are re-evaluated until no principal's value changes. Because licensee
// evaluation is monotone in the principal values, this converges and is
// insensitive to delegation cycles.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/eval.hpp"
#include "keynote/values.hpp"
#include "util/result.hpp"

namespace mwsec::keynote {

struct Query {
  /// Principals that (cryptographically or by session authentication)
  /// requested the action.
  std::vector<std::string> action_authorizers;
  ActionEnvironment env;
  ComplianceValueSet values;  // default {false, true}
};

struct QueryOptions {
  /// Verify credential signatures and drop (ignore) credentials that fail.
  bool verify_signatures = true;
};

struct QueryResult {
  std::size_t value_index = 0;
  std::string value_name;
  /// Why each ignored credential was dropped (bad signature, unsigned...).
  std::vector<std::string> dropped_credentials;

  /// Convenience for the default {false,true} value set.
  bool authorized() const { return value_index > 0; }
};

/// Per-query evaluation context: precomputes the reserved attributes
/// (_VALUES, _ACTION_AUTHORIZERS) so attribute lookups can return views
/// into stable storage, and fingerprints everything an assertion's
/// Conditions program can observe apart from its own local constants —
/// the key under which Conditions results are memoized across queries.
class QueryContext {
 public:
  explicit QueryContext(const Query& query);

  const Query& query() const { return *query_; }

  /// Attribute lookup chain for one assertion: reserved attributes, then
  /// the assertion's local constants, then the action environment. The
  /// returned views point into the assertion, the query, and this context
  /// — keep all three alive while evaluating.
  AttrLookup lookup(const Assertion& assertion) const;

  /// Fingerprint of (compliance values, action authorizers, environment).
  /// 64-bit FNV-1a: collisions are possible in principle, so memo entries
  /// also carry `verifier()` and a hit requires both to match — a silent
  /// wrong-value hit needs a simultaneous collision in two unrelated
  /// 64-bit hashes.
  std::uint64_t fingerprint() const { return fingerprint_; }

  /// Second, independent 64-bit hash of the same data (xorshift-multiply
  /// mixing, not FNV with a different basis), stored alongside memo
  /// entries to verify fingerprint hits.
  std::uint64_t verifier() const { return verifier_; }

  /// Value of an attribute *outside* any assertion's local constants: the
  /// four RFC 2704 reserved attributes, else the action environment
  /// (unset reads as ""). This is the resolution used to fill the compiled
  /// engine's per-query attribute slot vector — local constants never
  /// reach a slot because the compiler folds them.
  std::string_view reserved_or_env(std::string_view name) const;

 private:
  const Query* query_;
  std::string values_joined_;
  std::string authorizers_joined_;
  std::uint64_t fingerprint_;
  std::uint64_t verifier_;
};

/// Evaluate a query. `policies` must contain only POLICY assertions;
/// non-policy assertions among them are an error (they would bypass
/// signature checking). Internally compiles the assertion set and runs
/// the worklist fixpoint (see compiled_store.hpp); for a store queried
/// repeatedly, CompiledStore amortises that compilation too.
mwsec::Result<QueryResult> evaluate(const std::vector<Assertion>& policies,
                                    const std::vector<Assertion>& credentials,
                                    const Query& query,
                                    const QueryOptions& options = {});

/// The original interpreting evaluator: string-keyed maps and a full
/// Kleene sweep, exactly as RFC 2704 describes the semantics. Kept as the
/// executable specification the compiled engine is differentially tested
/// against; not used on any hot path.
mwsec::Result<QueryResult> evaluate_reference(
    const std::vector<Assertion>& policies,
    const std::vector<Assertion>& credentials, const Query& query,
    const QueryOptions& options = {});

/// RFC 2704 §6-style session facade: the "KeyNote API" the paper's
/// applications call. Accumulates policies, credentials and action
/// attributes, then answers queries.
class Session {
 public:
  mwsec::Status add_policy(const Assertion& assertion);
  mwsec::Status add_policy_text(std::string_view text);
  mwsec::Status add_credential(const Assertion& assertion);
  mwsec::Status add_credential_text(std::string_view text);

  void add_action_attribute(std::string name, std::string value);
  void add_action_authorizer(std::string principal);
  mwsec::Status set_compliance_values(std::vector<std::string> ordered);

  /// Evaluate with the accumulated state.
  mwsec::Result<QueryResult> query(const QueryOptions& options = {}) const;

  /// Reset per-query state (authorisers + attributes), keeping assertions.
  void clear_action();

  const std::vector<Assertion>& policies() const { return policies_; }
  const std::vector<Assertion>& credentials() const { return credentials_; }

 private:
  std::vector<Assertion> policies_;
  std::vector<Assertion> credentials_;
  Query query_;
};

}  // namespace mwsec::keynote
