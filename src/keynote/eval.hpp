// Evaluation of Conditions programs and Licensees expressions
// (RFC 2704 query semantics).
//
// A Conditions program evaluates, in a given action environment, to an
// index into the query's compliance value set: the maximum value among
// satisfied clauses (a clause without "->" contributes _MAX_TRUST; a
// nested "{...}" contributes the sub-program's value), or _MIN_TRUST when
// no clause is satisfied. Any runtime error inside a test — bad numeric
// conversion, malformed regex, unknown value name — makes that test false,
// never an exception escaping to the caller.
#pragma once

#include <functional>
#include <string>

#include "keynote/ast.hpp"
#include "keynote/values.hpp"

namespace mwsec::keynote {

/// Resolves attribute names during evaluation. Layered: assertion-local
/// constants shadow the query's action environment; the reserved
/// attributes (_MIN_TRUST etc.) are synthesised by the query engine.
///
/// Returns a view so that plain attribute access allocates nothing: the
/// callable must return views into storage that outlives the evaluation
/// (the assertion, the action environment, or per-query precomputed
/// strings — see QueryContext). Beware lambdas returning `std::string`:
/// they convert silently and dangle.
using AttrLookup = std::function<std::string_view(std::string_view)>;

/// Evaluate a Conditions program to a compliance-value index.
std::size_t eval_conditions(const Program& program,
                            const ComplianceValueSet& values,
                            const AttrLookup& lookup);

/// Evaluate a single test to a boolean (errors count as false).
/// Exposed for unit tests of the expression language.
bool eval_test(const Test& test, const AttrLookup& lookup);

/// Value of each principal, as established by the delegation computation.
using PrincipalValue = std::function<std::size_t(const std::string&)>;

/// Evaluate a Licensees expression: || is max, && is min, K-of is the
/// K-th largest member value; a bare principal is its delegation value;
/// an empty expression is _MIN_TRUST.
std::size_t eval_licensees(const LicenseeExpr& expr,
                           const ComplianceValueSet& values,
                           const PrincipalValue& principal_value);

}  // namespace mwsec::keynote
