// Tokeniser for the KeyNote expression languages (RFC 2704 §5):
// the Conditions program language and the Licensees principal expressions.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace mwsec::keynote {

enum class TokenKind {
  kIdent,       // attribute / principal name
  kString,      // "quoted literal" (escapes processed)
  kNumber,      // integer or float literal
  kThreshold,   // K-of (licensees language), value() holds K
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kSemicolon,   // ;
  kComma,       // ,
  kArrow,       // ->
  kAndAnd,      // &&
  kOrOr,        // ||
  kNot,         // !
  kEq,          // ==
  kNe,          // !=
  kLt,          // <
  kGt,          // >
  kLe,          // <=
  kGe,          // >=
  kRegexMatch,  // ~=
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kSlash,       // /
  kPercent,     // %
  kCaret,       // ^ (exponentiation)
  kDot,         // . (string concatenation)
  kAt,          // @ (integer attribute dereference)
  kAmp,         // & (float attribute dereference)
  kDollar,      // $ (indirect attribute reference)
  kEnd,
};

struct Token {
  TokenKind kind;
  std::string text;   // raw spelling (processed value for strings)
  std::size_t pos;    // byte offset in the source, for diagnostics
};

const char* token_kind_name(TokenKind kind);

/// Tokenise `src`; returns the token list ending with kEnd, or a
/// diagnostic pointing at the offending byte.
mwsec::Result<std::vector<Token>> tokenize(std::string_view src);

}  // namespace mwsec::keynote
