#include "keynote/compiled_store.hpp"

#include <algorithm>
#include <deque>
#include <functional>

#include "keynote/eval.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwsec::keynote {

namespace {

constexpr std::size_t kUnsetConditions = static_cast<std::size_t>(-1);

/// Registry references resolved once; recording is gated inside each
/// metric by the global enable flag, so the disabled hot path pays one
/// branch per site.
struct EngineMetrics {
  obs::Counter& queries;
  obs::Histogram& query_us;
  obs::Counter& memo_hits;
  obs::Counter& memo_misses;
  obs::Counter& fixpoint_steps;
  obs::Counter& snapshot_rebuilds;
  obs::Counter& snapshot_with_builds;
  obs::Counter& admission_verifies;
  obs::Counter& presented_dropped;

  static EngineMetrics& get() {
    auto& r = obs::Registry::global();
    static EngineMetrics m{
        r.counter("keynote.queries"),
        r.histogram("keynote.query_us"),
        r.counter("keynote.conditions_memo_hits"),
        r.counter("keynote.conditions_memo_misses"),
        r.counter("keynote.fixpoint_steps"),
        r.counter("keynote.snapshot_rebuilds"),
        r.counter("keynote.snapshot_with_builds"),
        r.counter("keynote.admission_verifies"),
        r.counter("keynote.presented_dropped"),
    };
    return m;
  }
};

CompiledLicensee compile_licensee(const LicenseeExpr& e,
                                  PrincipalTable& principals) {
  CompiledLicensee out;
  out.kind = e.kind;
  out.k = e.k;
  if (e.kind == LicenseeExpr::Kind::kPrincipal) {
    out.principal = principals.intern(e.principal);
  }
  out.children.reserve(e.children.size());
  for (const auto& child : e.children) {
    out.children.push_back(compile_licensee(child, principals));
  }
  return out;
}

void collect_ids(const CompiledLicensee& e, std::vector<std::uint32_t>& out) {
  if (e.kind == LicenseeExpr::Kind::kPrincipal) out.push_back(e.principal);
  for (const auto& child : e.children) collect_ids(child, out);
}

/// Licensee evaluation over the interned value vector: || is max, && is
/// min, K-of is the K-th largest member value, exactly as eval_licensees.
std::size_t eval_compiled(const CompiledLicensee& e,
                          const std::vector<std::size_t>& value,
                          std::size_t vmin, std::size_t vmax) {
  switch (e.kind) {
    case LicenseeExpr::Kind::kNone:
      return vmin;
    case LicenseeExpr::Kind::kPrincipal:
      return value[e.principal];
    case LicenseeExpr::Kind::kAnd: {
      std::size_t v = vmax;
      for (const auto& child : e.children) {
        v = std::min(v, eval_compiled(child, value, vmin, vmax));
      }
      return v;
    }
    case LicenseeExpr::Kind::kOr: {
      std::size_t v = vmin;
      for (const auto& child : e.children) {
        v = std::max(v, eval_compiled(child, value, vmin, vmax));
      }
      return v;
    }
    case LicenseeExpr::Kind::kThreshold: {
      std::vector<std::size_t> member_values;
      member_values.reserve(e.children.size());
      for (const auto& child : e.children) {
        member_values.push_back(eval_compiled(child, value, vmin, vmax));
      }
      std::sort(member_values.begin(), member_values.end(),
                std::greater<std::size_t>());
      return member_values[e.k - 1];
    }
  }
  return vmin;
}

}  // namespace

// ---------------------------------------------------------------------------
// PrincipalTable

PrincipalTable::PrincipalTable() {
  intern("POLICY");  // id 0, by construction
}

std::uint32_t PrincipalTable::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<std::uint32_t> PrincipalTable::find(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// ConditionsCache

std::optional<std::size_t> ConditionsCache::get(
    std::size_t assertion, std::uint64_t fingerprint) const {
  std::scoped_lock lock(mu_);
  const auto& memo = memo_[assertion];
  auto it = memo.find(fingerprint);
  if (it == memo.end()) return std::nullopt;
  return it->second;
}

void ConditionsCache::put(std::size_t assertion, std::uint64_t fingerprint,
                          std::size_t value) {
  std::scoped_lock lock(mu_);
  memo_[assertion].emplace(fingerprint, value);
}

// ---------------------------------------------------------------------------
// CompiledIndex

void CompiledIndex::add(const Assertion& assertion) {
  CompiledAssertion compiled;
  compiled.source = &assertion;
  compiled.authorizer = assertion.is_policy()
                            ? kPolicyId
                            : principals_.intern(assertion.authorizer());
  compiled.licensees = compile_licensee(assertion.licensees(), principals_);

  auto index = static_cast<std::uint32_t>(assertions_.size());
  std::vector<std::uint32_t> deps;
  collect_ids(compiled.licensees, deps);
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  if (by_authorizer_.size() < principals_.size()) {
    by_authorizer_.resize(principals_.size());
    dependents_.resize(principals_.size());
  }
  by_authorizer_[compiled.authorizer].push_back(index);
  for (std::uint32_t p : deps) dependents_[p].push_back(index);
  assertions_.push_back(std::move(compiled));
}

std::size_t CompiledIndex::conditions_value(std::size_t assertion,
                                            const QueryContext& context) const {
  const Assertion& source = *assertions_[assertion].source;
  return eval_conditions(source.conditions(), context.query().values,
                         context.lookup(source));
}

std::size_t CompiledIndex::policy_value(const QueryContext& context,
                                        ConditionsCache* cache) const {
  const Query& q = context.query();
  const std::size_t vmin = q.values.min_index();
  const std::size_t vmax = q.values.max_index();
  const std::size_t n_principals = principals_.size();

  std::vector<std::size_t> value(n_principals, vmin);
  std::vector<char> is_requester(n_principals, 0);
  for (const auto& r : q.action_authorizers) {
    if (auto id = principals_.find(r)) {
      value[*id] = vmax;
      is_requester[*id] = 1;
    }
  }
  // POLICY requesting from itself is trivially maximal (the reference
  // engine's requester set short-circuits the same way).
  if (is_requester[kPolicyId]) return vmax;
  // No assertions: nothing can raise POLICY (and by_authorizer_ /
  // dependents_ were never sized).
  if (assertions_.empty()) return vmin;

  // Per-query lazy conditions values, backed by the cross-query cache.
  // Counts are tallied in locals and flushed once on exit so the inner
  // loops pay no enabled-flag branches (a disabled inc() per worklist pop
  // is measurable at small store sizes).
  struct Tally {
    std::uint64_t memo_hits = 0, memo_misses = 0, fixpoint_steps = 0;
    ~Tally() {
      auto& m = EngineMetrics::get();
      if (memo_hits != 0) m.memo_hits.inc(memo_hits);
      if (memo_misses != 0) m.memo_misses.inc(memo_misses);
      if (fixpoint_steps != 0) m.fixpoint_steps.inc(fixpoint_steps);
    }
  } tally;
  std::vector<std::size_t> conditions(assertions_.size(), kUnsetConditions);
  const std::uint64_t fp = context.fingerprint();
  auto conditions_of = [&](std::size_t i) -> std::size_t {
    if (conditions[i] != kUnsetConditions) return conditions[i];
    if (cache != nullptr) {
      if (auto hit = cache->get(i, fp)) {
        ++tally.memo_hits;
        return conditions[i] = *hit;
      }
    }
    ++tally.memo_misses;
    std::size_t v = conditions_value(i, context);
    if (cache != nullptr) cache->put(i, fp, v);
    return conditions[i] = v;
  };

  // Worklist fixpoint (chaotic iteration): recompute a principal's value
  // as the max over its assertions of min(licensees, conditions); when it
  // rises, requeue only the authorizers of assertions that mention it.
  // Monotone, so this reaches the same least fixpoint as the reference
  // engine's full Kleene sweeps.
  std::deque<std::uint32_t> work;
  std::vector<char> queued(n_principals, 0);
  for (std::uint32_t p = 0; p < n_principals; ++p) {
    if (!by_authorizer_[p].empty() && !is_requester[p]) {
      work.push_back(p);
      queued[p] = 1;
    }
  }

  while (!work.empty()) {
    std::uint32_t p = work.front();
    work.pop_front();
    queued[p] = 0;
    ++tally.fixpoint_steps;

    std::size_t best = value[p];
    for (std::uint32_t i : by_authorizer_[p]) {
      std::size_t lic =
          eval_compiled(assertions_[i].licensees, value, vmin, vmax);
      // min(lic, conditions) cannot beat `best` unless lic does; in
      // particular an assertion whose licensees are at _MIN_TRUST never
      // needs its conditions evaluated.
      if (lic <= best) continue;
      best = std::max(best, std::min(lic, conditions_of(i)));
      if (best == vmax) break;
    }
    if (best > value[p]) {
      value[p] = best;
      if (p == kPolicyId && best == vmax) return vmax;
      for (std::uint32_t i : dependents_[p]) {
        std::uint32_t authorizer = assertions_[i].authorizer;
        if (!is_requester[authorizer] && !queued[authorizer]) {
          queued[authorizer] = 1;
          work.push_back(authorizer);
        }
      }
    }
  }
  return value[kPolicyId];
}

// ---------------------------------------------------------------------------
// CompiledStore

mwsec::Status CompiledStore::add_policy(Assertion assertion) {
  if (!assertion.is_policy()) {
    return Error::make("not a POLICY assertion", "store");
  }
  std::scoped_lock lock(mu_);
  policies_.push_back(std::move(assertion));
  ++version_;
  return {};
}

mwsec::Status CompiledStore::add_policy_text(std::string_view text) {
  auto bundle = Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (auto s = add_policy(std::move(a)); !s.ok()) return s;
  }
  return {};
}

mwsec::Status CompiledStore::add_credential(Assertion assertion,
                                            bool verify_signature) {
  if (verify_signature) {
    EngineMetrics::get().admission_verifies.inc();
    if (auto v = assertion.verify(); !v.ok()) return v;
  }
  std::scoped_lock lock(mu_);
  // Idempotent: identical text is stored once.
  for (const auto& existing : credentials_) {
    if (existing.to_text() == assertion.to_text()) return {};
  }
  credentials_.push_back(std::move(assertion));
  ++version_;
  return {};
}

std::size_t CompiledStore::remove_matching(const std::string& text) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_,
                [&](const Assertion& a) { return a.to_text() == text; });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::size_t CompiledStore::remove_by_authorizer(const std::string& authorizer) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_, [&](const Assertion& a) {
    return a.authorizer() == authorizer;
  });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::size_t CompiledStore::remove_by_licensee(const std::string& principal) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_, [&](const Assertion& a) {
    std::vector<std::string> mentioned;
    a.licensees().collect_principals(mentioned);
    return std::find(mentioned.begin(), mentioned.end(), principal) !=
           mentioned.end();
  });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::vector<Assertion> CompiledStore::policies() const {
  std::scoped_lock lock(mu_);
  return policies_;
}

std::vector<Assertion> CompiledStore::credentials() const {
  std::scoped_lock lock(mu_);
  return credentials_;
}

std::vector<Assertion> CompiledStore::credentials_by_authorizer(
    const std::string& authorizer) const {
  std::scoped_lock lock(mu_);
  std::vector<Assertion> out;
  for (const auto& a : credentials_) {
    if (a.authorizer() == authorizer) out.push_back(a);
  }
  return out;
}

std::size_t CompiledStore::policy_count() const {
  std::scoped_lock lock(mu_);
  return policies_.size();
}

std::size_t CompiledStore::credential_count() const {
  std::scoped_lock lock(mu_);
  return credentials_.size();
}

void CompiledStore::clear() {
  std::scoped_lock lock(mu_);
  policies_.clear();
  credentials_.clear();
  ++version_;
}

std::uint64_t CompiledStore::version() const {
  std::scoped_lock lock(mu_);
  return version_;
}

void CompiledStore::advance_version_to(std::uint64_t v) {
  std::scoped_lock lock(mu_);
  if (v > version_) version_ = v;
}

mwsec::Status CompiledStore::install_bundle(std::string_view bundle_text,
                                            std::uint64_t version,
                                            bool verify_signatures) {
  auto bundle = Assertion::parse_bundle(bundle_text);
  if (!bundle.ok()) return bundle.error();
  std::vector<Assertion> policies, credentials;
  for (auto& a : *bundle) {
    if (a.is_policy()) {
      policies.push_back(std::move(a));
    } else {
      if (verify_signatures) {
        EngineMetrics::get().admission_verifies.inc();
        if (auto v = a.verify(); !v.ok()) return v;
      }
      credentials.push_back(std::move(a));
    }
  }
  std::scoped_lock lock(mu_);
  policies_ = std::move(policies);
  credentials_ = std::move(credentials);
  version_ = std::max(version, version_ + 1);
  return {};
}

std::shared_ptr<const CompiledStore::Snapshot>
CompiledStore::base_snapshot_locked() const {
  if (cached_ == nullptr || cached_version_ != version_) {
    EngineMetrics::get().snapshot_rebuilds.inc();
    auto snap = std::make_shared<Snapshot>();
    snap->assertions_.reserve(policies_.size() + credentials_.size());
    snap->assertions_.insert(snap->assertions_.end(), policies_.begin(),
                             policies_.end());
    snap->assertions_.insert(snap->assertions_.end(), credentials_.begin(),
                             credentials_.end());
    for (const auto& a : snap->assertions_) snap->index_.add(a);
    snap->cond_cache_ =
        std::make_unique<ConditionsCache>(snap->assertions_.size());
    cached_ = std::move(snap);
    cached_version_ = version_;
  }
  return cached_;
}

std::shared_ptr<const CompiledStore::Snapshot> CompiledStore::snapshot()
    const {
  std::scoped_lock lock(mu_);
  return base_snapshot_locked();
}

std::shared_ptr<const CompiledStore::Snapshot> CompiledStore::snapshot_with(
    const std::vector<Assertion>& presented,
    const QueryOptions& options) const {
  if (presented.empty()) return snapshot();
  EngineMetrics::get().snapshot_with_builds.inc();

  std::vector<Assertion> stored_policies, stored_credentials;
  {
    std::scoped_lock lock(mu_);
    stored_policies = policies_;
    stored_credentials = credentials_;
  }
  auto snap = std::make_shared<Snapshot>();
  snap->assertions_ = std::move(stored_policies);
  snap->assertions_.reserve(snap->assertions_.size() +
                            stored_credentials.size() + presented.size());
  snap->assertions_.insert(snap->assertions_.end(),
                           std::make_move_iterator(stored_credentials.begin()),
                           std::make_move_iterator(stored_credentials.end()));
  // Presented credentials are screened once, here; every query answered by
  // this snapshot reuses the admission verdicts.
  for (const auto& a : presented) {
    if (a.is_policy()) {
      snap->dropped_.push_back("POLICY assertion offered as credential");
      EngineMetrics::get().presented_dropped.inc();
      continue;
    }
    if (options.verify_signatures) {
      EngineMetrics::get().admission_verifies.inc();
      if (auto v = a.verify(); !v.ok()) {
        snap->dropped_.push_back(v.error().message);
        EngineMetrics::get().presented_dropped.inc();
        continue;
      }
    }
    snap->assertions_.push_back(a);
  }
  for (const auto& a : snap->assertions_) snap->index_.add(a);
  snap->cond_cache_ =
      std::make_unique<ConditionsCache>(snap->assertions_.size());
  return snap;
}

mwsec::Result<QueryResult> CompiledStore::Snapshot::query(
    const Query& q) const {
  auto& metrics = EngineMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(metrics.query_us);
  // Span (and its name string) built only when tracing is on, keeping the
  // disabled query path to flag-check branches.
  obs::Span span;
  if (obs::Tracer::global().enabled()) {
    span = obs::Tracer::global().root("keynote.query");
  }
  QueryContext context(q);
  QueryResult result;
  result.value_index = index_.policy_value(context, cond_cache_.get());
  result.value_name = q.values.name(result.value_index);
  result.dropped_credentials = dropped_;
  if (span.active()) {
    span.set_attr("requester", q.action_authorizers.empty()
                                   ? std::string_view{}
                                   : std::string_view(q.action_authorizers[0]));
    span.set_attr("compliance", result.value_name);
    if (!dropped_.empty()) {
      span.set_attr("dropped_credentials", std::to_string(dropped_.size()));
    }
    span.set_status(result.authorized() ? "permit" : "deny");
  }
  return result;
}

mwsec::Result<QueryResult> CompiledStore::query(
    const Query& q, const std::vector<Assertion>& presented,
    const QueryOptions& options) const {
  return snapshot_with(presented, options)->query(q);
}

std::string CompiledStore::to_bundle_text() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const auto& p : policies_) {
    out += p.to_text();
    out += "\n";
  }
  for (const auto& c : credentials_) {
    out += c.to_text();
    out += "\n";
  }
  return out;
}

}  // namespace mwsec::keynote
