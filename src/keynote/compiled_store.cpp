#include "keynote/compiled_store.hpp"

#include <algorithm>
#include <functional>
#include <set>

#include "keynote/eval.hpp"
#include "keynote/vm.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwsec::keynote {

namespace {

/// Registry references resolved once; recording is gated inside each
/// metric by the global enable flag, so the disabled hot path pays one
/// branch per site.
struct EngineMetrics {
  obs::Counter& queries;
  obs::Histogram& query_us;
  obs::Counter& memo_hits;
  obs::Counter& memo_misses;
  obs::Counter& memo_collisions;
  obs::Counter& fixpoint_steps;
  obs::Counter& snapshot_rebuilds;
  obs::Counter& snapshot_with_builds;
  obs::Counter& admission_verifies;
  obs::Counter& presented_dropped;
  obs::Counter& programs_compiled;
  obs::Counter& programs_shared;
  obs::Gauge& index_assertions;
  obs::Gauge& index_programs;
  obs::Gauge& index_guarded;
  obs::Gauge& index_unguarded;
  obs::Gauge& index_never;

  static EngineMetrics& get() {
    auto& r = obs::Registry::global();
    static EngineMetrics m{
        r.counter("keynote.queries"),
        r.histogram("keynote.query_us"),
        r.counter("keynote.conditions_memo_hits"),
        r.counter("keynote.conditions_memo_misses"),
        r.counter("keynote.conditions_memo_collisions"),
        r.counter("keynote.fixpoint_steps"),
        r.counter("keynote.snapshot_rebuilds"),
        r.counter("keynote.snapshot_with_builds"),
        r.counter("keynote.admission_verifies"),
        r.counter("keynote.presented_dropped"),
        r.counter("keynote.programs_compiled"),
        r.counter("keynote.programs_shared"),
        r.gauge("keynote.index.assertions"),
        r.gauge("keynote.index.programs"),
        r.gauge("keynote.index.guarded"),
        r.gauge("keynote.index.unguarded"),
        r.gauge("keynote.index.never"),
    };
    return m;
  }
};

CompiledLicensee compile_licensee(const LicenseeExpr& e,
                                  PrincipalTable& principals) {
  CompiledLicensee out;
  out.kind = e.kind;
  out.k = e.k;
  if (e.kind == LicenseeExpr::Kind::kPrincipal) {
    out.principal = principals.intern(e.principal);
  }
  out.children.reserve(e.children.size());
  for (const auto& child : e.children) {
    out.children.push_back(compile_licensee(child, principals));
  }
  return out;
}

void collect_ids(const CompiledLicensee& e, std::vector<std::uint32_t>& out) {
  if (e.kind == LicenseeExpr::Kind::kPrincipal) out.push_back(e.principal);
  for (const auto& child : e.children) collect_ids(child, out);
}

/// Epoch-stamped principal values: a principal whose stamp is not the
/// current epoch still sits at the fixpoint's bottom (`vmin`), so a new
/// query resets every principal by bumping the epoch instead of
/// memsetting an O(principals) vector.
struct PrincipalValues {
  std::vector<std::size_t>& val;
  std::vector<std::uint64_t>& stamp;
  std::uint64_t epoch;
  std::size_t vmin;

  std::size_t get(std::uint32_t p) const {
    return stamp[p] == epoch ? val[p] : vmin;
  }
  void set(std::uint32_t p, std::size_t v) {
    val[p] = v;
    stamp[p] = epoch;
  }
};

/// Licensee evaluation over the interned value vector: || is max, && is
/// min, K-of is the K-th largest member value, exactly as eval_licensees.
std::size_t eval_compiled(const CompiledLicensee& e, const PrincipalValues& pv,
                          std::size_t vmin, std::size_t vmax) {
  switch (e.kind) {
    case LicenseeExpr::Kind::kNone:
      return vmin;
    case LicenseeExpr::Kind::kPrincipal:
      return pv.get(e.principal);
    case LicenseeExpr::Kind::kAnd: {
      std::size_t v = vmax;
      for (const auto& child : e.children) {
        v = std::min(v, eval_compiled(child, pv, vmin, vmax));
      }
      return v;
    }
    case LicenseeExpr::Kind::kOr: {
      std::size_t v = vmin;
      for (const auto& child : e.children) {
        v = std::max(v, eval_compiled(child, pv, vmin, vmax));
      }
      return v;
    }
    case LicenseeExpr::Kind::kThreshold: {
      std::vector<std::size_t> member_values;
      member_values.reserve(e.children.size());
      for (const auto& child : e.children) {
        member_values.push_back(eval_compiled(child, pv, vmin, vmax));
      }
      std::sort(member_values.begin(), member_values.end(),
                std::greater<std::size_t>());
      return member_values[e.k - 1];
    }
  }
  return vmin;
}

}  // namespace

// ---------------------------------------------------------------------------
// PrincipalTable

PrincipalTable::PrincipalTable() {
  intern("POLICY");  // id 0, by construction
}

std::uint32_t PrincipalTable::intern(std::string_view name) {
  auto it = ids_.find(name);
  if (it != ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

std::optional<std::uint32_t> PrincipalTable::find(std::string_view name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) return std::nullopt;
  return it->second;
}

// ---------------------------------------------------------------------------
// ConditionsCache

std::optional<std::size_t> ConditionsCache::get(std::size_t program,
                                                std::uint64_t fingerprint,
                                                std::uint64_t verifier) const {
  std::scoped_lock lock(mu_);
  const auto& memo = memo_[program];
  auto it = memo.find(fingerprint);
  if (it == memo.end()) return std::nullopt;
  if (it->second.verifier != verifier) {
    // Two distinct environments share a fingerprint: detected, counted,
    // and treated as a miss (the colliding entry is left in place — the
    // older environment keeps its hit).
    ++collisions_;
    EngineMetrics::get().memo_collisions.inc();
    return std::nullopt;
  }
  return it->second.value;
}

void ConditionsCache::put(std::size_t program, std::uint64_t fingerprint,
                          std::uint64_t verifier, std::size_t value) {
  std::scoped_lock lock(mu_);
  memo_[program].emplace(fingerprint, Entry{verifier, value});
}

std::uint64_t ConditionsCache::collisions() const {
  std::scoped_lock lock(mu_);
  return collisions_;
}

// ---------------------------------------------------------------------------
// CompiledIndex

void CompiledIndex::add(const Assertion& assertion) {
  CompiledAssertion compiled;
  compiled.source = &assertion;
  compiled.authorizer = assertion.is_policy()
                            ? kPolicyId
                            : principals_.intern(assertion.authorizer());
  compiled.licensees = compile_licensee(assertion.licensees(), principals_);

  // Deduplicate programs: assertions sharing conditions text and local
  // constants (the fig2 sweep, translated RBAC credentials...) share one
  // bytecode program, one memo row, one compile.
  std::string key = assertion.conditions_text();
  for (const auto& [name, val] : assertion.local_constants()) {
    key += '\x01';
    key += name;
    key += '\x02';
    key += val;
  }
  auto it = program_keys_.find(key);
  if (it != program_keys_.end()) {
    compiled.program = it->second;
    EngineMetrics::get().programs_shared.inc();
  } else {
    compiled.program = static_cast<std::uint32_t>(programs_.size());
    ProgramEntry entry;
    entry.compiled = compile_conditions(assertion.conditions(),
                                        assertion.local_constants(), attrs_);
    entry.rep = &assertion;
    programs_.push_back(std::move(entry));
    program_keys_.emplace(std::move(key), compiled.program);
    EngineMetrics::get().programs_compiled.inc();
  }

  auto index = static_cast<std::uint32_t>(assertions_.size());
  std::vector<std::uint32_t> deps;
  collect_ids(compiled.licensees, deps);
  std::sort(deps.begin(), deps.end());
  deps.erase(std::unique(deps.begin(), deps.end()), deps.end());

  if (dependents_.size() < principals_.size()) {
    dependents_.resize(principals_.size());
  }
  for (std::uint32_t p : deps) dependents_[p].push_back(index);
  assertions_.push_back(std::move(compiled));
  finalized_ = false;
}

void CompiledIndex::finalize() {
  guards_.clear();
  unguarded_.clear();
  never_count_ = 0;

  // One posting-list group per guard attribute an assertion actually
  // keys on; pick each assertion's most selective guard attribute, where
  // selectivity is approximated store-wide by the number of distinct
  // literals seen for the attribute (a per-principal attribute like
  // `user` beats a constant one like `app_domain`).
  std::vector<std::size_t> distinct(attrs_.size(), 0);
  {
    std::vector<std::set<std::string_view>> lits(attrs_.size());
    for (const auto& entry : programs_) {
      for (const auto& [slot, vals] : entry.compiled.guards) {
        for (const auto& v : vals) lits[slot].insert(v);
      }
    }
    for (std::size_t s = 0; s < lits.size(); ++s) distinct[s] = lits[s].size();
  }

  std::vector<std::uint32_t> slot_to_group(attrs_.size(), 0xffffffffu);
  for (std::uint32_t i = 0; i < assertions_.size(); ++i) {
    const CompiledConditions& prog = programs_[assertions_[i].program].compiled;
    if (prog.constant == ProgramConst::kMin) {
      ++never_count_;  // can never grant: drop from every candidate set
      continue;
    }
    const std::vector<std::string>* best_vals = nullptr;
    std::uint32_t best_slot = 0;
    std::size_t best_distinct = 0;
    for (const auto& [slot, vals] : prog.guards) {
      if (best_vals == nullptr || distinct[slot] > best_distinct) {
        best_vals = &vals;
        best_slot = slot;
        best_distinct = distinct[slot];
      }
    }
    if (best_vals == nullptr) {
      unguarded_.push_back(i);
      continue;
    }
    std::uint32_t group = slot_to_group[best_slot];
    if (group == 0xffffffffu) {
      group = static_cast<std::uint32_t>(guards_.size());
      slot_to_group[best_slot] = group;
      guards_.emplace_back();
      guards_.back().slot = best_slot;
    }
    for (const auto& v : *best_vals) guards_[group].by_value[v].push_back(i);
  }
  all_candidates_ = guards_.empty() && never_count_ == 0;
  finalized_ = true;

  auto& m = EngineMetrics::get();
  m.index_assertions.set(static_cast<std::int64_t>(assertions_.size()));
  m.index_programs.set(static_cast<std::int64_t>(programs_.size()));
  m.index_unguarded.set(static_cast<std::int64_t>(unguarded_.size()));
  m.index_never.set(static_cast<std::int64_t>(never_count_));
  m.index_guarded.set(static_cast<std::int64_t>(
      assertions_.size() - unguarded_.size() - never_count_));
}

void CompiledIndex::resolve_attrs(
    const QueryContext& context,
    std::vector<std::string_view>& attr_values) const {
  attr_values.resize(attrs_.size());
  for (std::uint32_t s = 0; s < attr_values.size(); ++s) {
    attr_values[s] = context.reserved_or_env(attrs_.name(s));
  }
}

void CompiledIndex::candidate_mask(
    const std::vector<std::string_view>& attr_values,
    std::vector<char>& mask) const {
  if (all_candidates_) {
    mask.clear();  // empty mask = everything is a candidate
    return;
  }
  mask.assign(assertions_.size(), 0);
  for (std::uint32_t i : unguarded_) mask[i] = 1;
  for (const auto& g : guards_) {
    auto it = g.by_value.find(attr_values[g.slot]);
    if (it == g.by_value.end()) continue;
    for (std::uint32_t i : it->second) mask[i] = 1;
  }
}

bool CompiledIndex::candidate_mask(
    const std::vector<std::string_view>& attr_values,
    std::vector<std::uint64_t>& stamp, std::uint64_t epoch) const {
  if (all_candidates_) return false;
  // resize (not assign): stale stamps never equal a fresh epoch, so only
  // the candidates written below cost anything — O(candidates), not
  // O(store), per query.
  if (stamp.size() != assertions_.size()) stamp.assign(assertions_.size(), 0);
  for (std::uint32_t i : unguarded_) stamp[i] = epoch;
  for (const auto& g : guards_) {
    auto it = g.by_value.find(attr_values[g.slot]);
    if (it == g.by_value.end()) continue;
    for (std::uint32_t i : it->second) stamp[i] = epoch;
  }
  return true;
}

std::size_t CompiledIndex::candidate_count(const QueryContext& context) const {
  std::vector<std::string_view> attr_values;
  resolve_attrs(context, attr_values);
  std::vector<char> mask;
  candidate_mask(attr_values, mask);
  if (mask.empty()) return assertions_.size();
  return static_cast<std::size_t>(
      std::count(mask.begin(), mask.end(), char(1)));
}

CompiledIndex::Stats CompiledIndex::stats() const {
  Stats s;
  s.assertions = assertions_.size();
  s.programs = programs_.size();
  s.unguarded = unguarded_.size();
  s.never = never_count_;
  s.guarded = s.assertions - s.unguarded - s.never;
  s.guard_attrs = guards_.size();
  s.attr_slots = attrs_.size();
  return s;
}

std::string CompiledIndex::describe() const {
  std::string out;
  for (std::size_t i = 0; i < assertions_.size(); ++i) {
    const auto& a = assertions_[i];
    out += "assertion " + std::to_string(i) + " (authorizer " +
           principals_.name(a.authorizer) + ", program " +
           std::to_string(a.program) + ")\n";
    out += disassemble(programs_[a.program].compiled, attrs_);
  }
  return out;
}

std::size_t CompiledIndex::policy_value(const QueryContext& context,
                                        ConditionsCache* cache) const {
  const Query& q = context.query();
  const std::size_t vmin = q.values.min_index();
  const std::size_t vmax = q.values.max_index();
  const std::size_t n_principals = principals_.size();

  // Per-query working state, thread-local so repeated queries on one
  // thread reuse capacity: a warm query performs no heap allocation at
  // all (the deque the worklist once used was a malloc per query, which
  // dominated single-assertion stores). Every per-principal, per-program
  // and per-assertion array is epoch-stamped rather than memset, so the
  // per-query reset is O(1) and the query itself touches only the
  // requester's reachable subgraph — no O(store) term survives.
  struct QueryScratch {
    std::uint64_t epoch = 0;
    std::vector<std::size_t> value;            // principal -> value
    std::vector<std::uint64_t> value_stamp;    //   valid iff == epoch
    std::vector<std::uint32_t> requester_ids;
    std::vector<std::string_view> attr_values;
    std::vector<std::size_t> conditions;       // program -> value
    std::vector<std::uint64_t> cond_stamp;     //   valid iff == epoch
    VmScratch vm;
    std::vector<std::uint64_t> mask_stamp;     // assertion candidate iff == epoch
    std::vector<std::uint32_t> work;
    std::vector<std::uint64_t> queued_stamp;   // assertion queued iff == epoch
  };
  static thread_local QueryScratch qs;
  const std::uint64_t epoch = ++qs.epoch;

  if (qs.value.size() < n_principals) {
    qs.value.resize(n_principals);
    qs.value_stamp.resize(n_principals, 0);
  }
  PrincipalValues pv{qs.value, qs.value_stamp, epoch, vmin};
  std::vector<std::uint32_t>& requester_ids = qs.requester_ids;
  requester_ids.clear();
  for (const auto& r : q.action_authorizers) {
    if (auto id = principals_.find(r)) {
      if (pv.stamp[*id] != epoch) requester_ids.push_back(*id);
      pv.set(*id, vmax);
    }
  }
  // POLICY requesting from itself is trivially maximal (the reference
  // engine's requester set short-circuits the same way). Only requesters
  // have been stamped so far, so a stamped POLICY means requester.
  if (pv.stamp[kPolicyId] == epoch) return vmax;
  // No assertions: nothing can raise POLICY (and dependents_ was never
  // sized).
  if (assertions_.empty()) return vmin;

  // Per-query lazy conditions values (per deduplicated program), backed
  // by the cross-query cache. Counts are tallied in locals and flushed
  // once on exit so the inner loops pay no enabled-flag branches (a
  // disabled inc() per worklist pop is measurable at small store sizes).
  struct Tally {
    std::uint64_t memo_hits = 0, memo_misses = 0, fixpoint_steps = 0;
    ~Tally() {
      auto& m = EngineMetrics::get();
      if (memo_hits != 0) m.memo_hits.inc(memo_hits);
      if (memo_misses != 0) m.memo_misses.inc(memo_misses);
      if (fixpoint_steps != 0) m.fixpoint_steps.inc(fixpoint_steps);
    }
  } tally;

  std::vector<std::string_view>& attr_values = qs.attr_values;
  resolve_attrs(context, attr_values);

  std::vector<std::size_t>& conditions = qs.conditions;
  std::vector<std::uint64_t>& cond_stamp = qs.cond_stamp;
  if (conditions.size() < programs_.size()) {
    conditions.resize(programs_.size());
    cond_stamp.resize(programs_.size(), 0);
  }
  const std::uint64_t fp = context.fingerprint();
  const std::uint64_t verifier = context.verifier();
  VmScratch& scratch = qs.vm;
  auto remember = [&](std::uint32_t program, std::size_t v) {
    conditions[program] = v;
    cond_stamp[program] = epoch;
    return v;
  };
  auto conditions_of = [&](std::uint32_t program) -> std::size_t {
    if (cond_stamp[program] == epoch) return conditions[program];
    const ProgramEntry& entry = programs_[program];
    if (entry.compiled.constant == ProgramConst::kMax) {
      return remember(program, vmax);
    }
    if (entry.compiled.constant == ProgramConst::kMin) {
      return remember(program, vmin);
    }
    if (cache != nullptr) {
      if (auto hit = cache->get(program, fp, verifier)) {
        ++tally.memo_hits;
        return remember(program, *hit);
      }
    }
    ++tally.memo_misses;
    std::size_t v;
    if (entry.compiled.needs_dyn) {
      AttrLookup dyn = context.lookup(*entry.rep);
      v = run_conditions(entry.compiled, q.values, attr_values, &dyn, scratch);
    } else {
      v = run_conditions(entry.compiled, q.values, attr_values, nullptr,
                         scratch);
    }
    if (cache != nullptr) cache->put(program, fp, verifier, v);
    return remember(program, v);
  };

  // Assertion-driven worklist fixpoint (chaotic iteration), seeded from
  // the assertions that mention a requester and survive the candidate
  // filter: with every non-requester at _MIN_TRUST an assertion's
  // licensee value can only exceed _MIN_TRUST once some mentioned
  // principal's value has risen, so processing exactly the assertions
  // whose mentioned principals moved reaches the same least fixpoint as
  // the reference engine's full Kleene sweeps — touching only the
  // requester's reachable delegation subgraph instead of the whole store.
  std::vector<std::uint64_t>& mask = qs.mask_stamp;
  const bool use_mask = candidate_mask(attr_values, mask, epoch);

  // LIFO worklist: chaotic iteration reaches the same least fixpoint in
  // any processing order, and a vector-backed stack reuses its buffer.
  std::vector<std::uint32_t>& work = qs.work;
  work.clear();
  std::vector<std::uint64_t>& queued = qs.queued_stamp;
  if (queued.size() < assertions_.size()) queued.resize(assertions_.size(), 0);
  auto enqueue_dependents = [&](std::uint32_t p) {
    if (p >= dependents_.size()) return;
    for (std::uint32_t i : dependents_[p]) {
      if (queued[i] == epoch) continue;
      if (use_mask && mask[i] != epoch) continue;
      queued[i] = epoch;
      work.push_back(i);
    }
  };
  for (std::uint32_t r : requester_ids) enqueue_dependents(r);

  while (!work.empty()) {
    std::uint32_t i = work.back();
    work.pop_back();
    queued[i] = 0;  // 0 never equals a live epoch: eligible to re-queue
    ++tally.fixpoint_steps;

    const CompiledAssertion& a = assertions_[i];
    std::size_t lic = eval_compiled(a.licensees, pv, vmin, vmax);
    // min(lic, conditions) cannot raise the authorizer unless lic does;
    // in particular an assertion whose licensees are at the authorizer's
    // current value never needs its conditions evaluated.
    if (lic <= pv.get(a.authorizer)) continue;
    std::size_t v = std::min(lic, conditions_of(a.program));
    if (v > pv.get(a.authorizer)) {
      pv.set(a.authorizer, v);
      if (a.authorizer == kPolicyId && v == vmax) return vmax;
      enqueue_dependents(a.authorizer);
    }
  }
  return pv.get(kPolicyId);
}

// ---------------------------------------------------------------------------
// CompiledStore

mwsec::Status CompiledStore::add_policy(Assertion assertion) {
  if (!assertion.is_policy()) {
    return Error::make("not a POLICY assertion", "store");
  }
  std::scoped_lock lock(mu_);
  policies_.push_back(std::move(assertion));
  ++version_;
  return {};
}

mwsec::Status CompiledStore::add_policy_text(std::string_view text) {
  auto bundle = Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (auto s = add_policy(std::move(a)); !s.ok()) return s;
  }
  return {};
}

mwsec::Status CompiledStore::add_credential(Assertion assertion,
                                            bool verify_signature) {
  if (verify_signature) {
    EngineMetrics::get().admission_verifies.inc();
    if (auto v = assertion.verify(); !v.ok()) return v;
  }
  std::scoped_lock lock(mu_);
  // Idempotent: identical text is stored once.
  for (const auto& existing : credentials_) {
    if (existing.to_text() == assertion.to_text()) return {};
  }
  credentials_.push_back(std::move(assertion));
  ++version_;
  return {};
}

std::size_t CompiledStore::remove_matching(const std::string& text) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_,
                [&](const Assertion& a) { return a.to_text() == text; });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::size_t CompiledStore::remove_by_authorizer(const std::string& authorizer) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_, [&](const Assertion& a) {
    return a.authorizer() == authorizer;
  });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::size_t CompiledStore::remove_by_licensee(const std::string& principal) {
  std::scoped_lock lock(mu_);
  auto before = credentials_.size();
  std::erase_if(credentials_, [&](const Assertion& a) {
    std::vector<std::string> mentioned;
    a.licensees().collect_principals(mentioned);
    return std::find(mentioned.begin(), mentioned.end(), principal) !=
           mentioned.end();
  });
  auto removed = before - credentials_.size();
  if (removed != 0) ++version_;
  return removed;
}

std::vector<Assertion> CompiledStore::policies() const {
  std::scoped_lock lock(mu_);
  return policies_;
}

std::vector<Assertion> CompiledStore::credentials() const {
  std::scoped_lock lock(mu_);
  return credentials_;
}

std::vector<Assertion> CompiledStore::credentials_by_authorizer(
    const std::string& authorizer) const {
  std::scoped_lock lock(mu_);
  std::vector<Assertion> out;
  for (const auto& a : credentials_) {
    if (a.authorizer() == authorizer) out.push_back(a);
  }
  return out;
}

std::size_t CompiledStore::policy_count() const {
  std::scoped_lock lock(mu_);
  return policies_.size();
}

std::size_t CompiledStore::credential_count() const {
  std::scoped_lock lock(mu_);
  return credentials_.size();
}

void CompiledStore::clear() {
  std::scoped_lock lock(mu_);
  policies_.clear();
  credentials_.clear();
  ++version_;
}

std::uint64_t CompiledStore::version() const {
  return version_.load(std::memory_order_acquire);
}

void CompiledStore::advance_version_to(std::uint64_t v) {
  std::scoped_lock lock(mu_);
  if (v > version_.load(std::memory_order_relaxed)) {
    version_.store(v, std::memory_order_release);
  }
}

mwsec::Status CompiledStore::install_bundle(std::string_view bundle_text,
                                            std::uint64_t version,
                                            bool verify_signatures) {
  auto bundle = Assertion::parse_bundle(bundle_text);
  if (!bundle.ok()) return bundle.error();
  std::vector<Assertion> policies, credentials;
  for (auto& a : *bundle) {
    if (a.is_policy()) {
      policies.push_back(std::move(a));
    } else {
      if (verify_signatures) {
        EngineMetrics::get().admission_verifies.inc();
        if (auto v = a.verify(); !v.ok()) return v;
      }
      credentials.push_back(std::move(a));
    }
  }
  std::scoped_lock lock(mu_);
  policies_ = std::move(policies);
  credentials_ = std::move(credentials);
  version_ = std::max(version, version_ + 1);
  return {};
}

std::shared_ptr<const CompiledStore::Snapshot>
CompiledStore::base_snapshot_locked() const {
  if (cached_ == nullptr || cached_version_ != version_) {
    EngineMetrics::get().snapshot_rebuilds.inc();
    auto snap = std::make_shared<Snapshot>();
    snap->assertions_.reserve(policies_.size() + credentials_.size());
    snap->assertions_.insert(snap->assertions_.end(), policies_.begin(),
                             policies_.end());
    snap->assertions_.insert(snap->assertions_.end(), credentials_.begin(),
                             credentials_.end());
    for (const auto& a : snap->assertions_) snap->index_.add(a);
    snap->index_.finalize();
    snap->cond_cache_ =
        std::make_unique<ConditionsCache>(snap->index_.program_count());
    cached_ = std::move(snap);
    cached_version_ = version_;
  }
  return cached_;
}

CompiledStore::StoreHandle CompiledStore::acquire() const {
  // Fast path: the published handle is current. Two acquire loads; no
  // mutex. A writer that moves version_ concurrently either wins (we see
  // the mismatch and take the slow path) or loses (we return the old
  // handle, whose version labels it correctly as the pre-mutation view).
  auto handle = published_.load(std::memory_order_acquire);
  if (handle != nullptr &&
      handle->version == version_.load(std::memory_order_acquire)) {
    return *handle;
  }
  std::scoped_lock lock(mu_);
  auto snap = base_snapshot_locked();
  auto fresh = std::make_shared<StoreHandle>();
  fresh->snapshot = std::move(snap);
  fresh->version = cached_version_;
  published_.store(fresh, std::memory_order_release);
  return *fresh;
}

std::shared_ptr<const CompiledStore::Snapshot> CompiledStore::snapshot()
    const {
  return acquire().snapshot;
}

std::shared_ptr<const CompiledStore::Snapshot> CompiledStore::snapshot_with(
    const std::vector<Assertion>& presented,
    const QueryOptions& options) const {
  if (presented.empty()) return snapshot();
  EngineMetrics::get().snapshot_with_builds.inc();

  std::vector<Assertion> stored_policies, stored_credentials;
  {
    std::scoped_lock lock(mu_);
    stored_policies = policies_;
    stored_credentials = credentials_;
  }
  auto snap = std::make_shared<Snapshot>();
  snap->assertions_ = std::move(stored_policies);
  snap->assertions_.reserve(snap->assertions_.size() +
                            stored_credentials.size() + presented.size());
  snap->assertions_.insert(snap->assertions_.end(),
                           std::make_move_iterator(stored_credentials.begin()),
                           std::make_move_iterator(stored_credentials.end()));
  // Presented credentials are screened once, here; every query answered by
  // this snapshot reuses the admission verdicts.
  for (const auto& a : presented) {
    if (a.is_policy()) {
      snap->dropped_.push_back("POLICY assertion offered as credential");
      EngineMetrics::get().presented_dropped.inc();
      continue;
    }
    if (options.verify_signatures) {
      EngineMetrics::get().admission_verifies.inc();
      if (auto v = a.verify(); !v.ok()) {
        snap->dropped_.push_back(v.error().message);
        EngineMetrics::get().presented_dropped.inc();
        continue;
      }
    }
    snap->assertions_.push_back(a);
  }
  for (const auto& a : snap->assertions_) snap->index_.add(a);
  snap->index_.finalize();
  snap->cond_cache_ =
      std::make_unique<ConditionsCache>(snap->index_.program_count());
  return snap;
}

mwsec::Result<QueryResult> CompiledStore::Snapshot::query(
    const Query& q) const {
  return query_impl(q, cond_cache_.get());
}

mwsec::Result<QueryResult> CompiledStore::Snapshot::query_uncached(
    const Query& q) const {
  return query_impl(q, nullptr);
}

mwsec::Result<QueryResult> CompiledStore::Snapshot::query_impl(
    const Query& q, ConditionsCache* cache) const {
  auto& metrics = EngineMetrics::get();
  metrics.queries.inc();
  obs::ScopedTimer timer(metrics.query_us);
  // Span (and its name string) built only when tracing is on, keeping the
  // disabled query path to flag-check branches.
  obs::Span span;
  if (obs::Tracer::global().enabled()) {
    span = obs::Tracer::global().root("keynote.query");
  }
  QueryContext context(q);
  QueryResult result;
  result.value_index = index_.policy_value(context, cache);
  result.value_name = q.values.name(result.value_index);
  result.dropped_credentials = dropped_;
  if (span.active()) {
    span.set_attr("requester", q.action_authorizers.empty()
                                   ? std::string_view{}
                                   : std::string_view(q.action_authorizers[0]));
    span.set_attr("compliance", result.value_name);
    if (!dropped_.empty()) {
      span.set_attr("dropped_credentials", std::to_string(dropped_.size()));
    }
    span.set_status(result.authorized() ? "permit" : "deny");
  }
  return result;
}

mwsec::Result<QueryResult> CompiledStore::query(
    const Query& q, const std::vector<Assertion>& presented,
    const QueryOptions& options) const {
  return snapshot_with(presented, options)->query(q);
}

std::string CompiledStore::to_bundle_text() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const auto& p : policies_) {
    out += p.to_text();
    out += "\n";
  }
  for (const auto& c : credentials_) {
    out += c.to_text();
    out += "\n";
  }
  return out;
}

}  // namespace mwsec::keynote
