// Wire formats for the policy replication protocol (paper §4, Figures 7–8:
// delegation and revocation propagating from the administration point down
// to middleware catalogues and running WebCom nodes).
//
// An authority publishes epoch-numbered deltas against its
// `keynote::CompiledStore`; the epoch of a delta is the store's version()
// after the mutation, so replicas that apply every delta in order track
// the authority's version exactly — and every consumer keyed on the store
// version (the `authz::CachingAuthorizer` decision caches in particular)
// invalidates the moment a delta lands.
//
// Reliability model: deltas are fire-and-forget; replicas send cumulative
// acks (doubling as heartbeats, so a lost subscribe self-heals) and the
// authority retransmits the unacked suffix of its log. A replica that has
// fallen behind the log — trimmed entries, a partition, a rejoin — is
// caught up with a full `SnapshotMessage` instead (anti-entropy).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/result.hpp"

namespace mwsec::sync {

inline constexpr const char* kSubjectSubscribe = "sync-subscribe";
inline constexpr const char* kSubjectDelta = "sync-delta";
inline constexpr const char* kSubjectAck = "sync-ack";
inline constexpr const char* kSubjectSnapshot = "sync-snapshot";

/// What one delta does to the replicated credential store.
enum class DeltaKind : std::uint8_t {
  kAddPolicy = 0,          ///< body: one POLICY assertion text
  kAddCredential = 1,      ///< body: one signed credential text
  kRevokeMatching = 2,     ///< body: exact credential text to withdraw
  kRevokeByAuthorizer = 3, ///< body: principal whose issued credentials go
  kRevokeByLicensee = 4,   ///< body: principal whose received grants go
};

const char* delta_kind_name(DeltaKind kind);

/// One epoch-numbered store mutation. Exactly one store mutation per
/// delta, so applying it bumps the replica's version by one and
/// `advance_version_to(epoch)` is a no-op in the steady state.
struct Delta {
  std::uint64_t epoch = 0;
  DeltaKind kind = DeltaKind::kAddPolicy;
  std::string body;
  /// Causal origin: the publish span that created the delta. Carried in
  /// the frame (16 bytes after the body) so a retransmitted or
  /// log-replayed delta keeps its original trace identity — the fan-out
  /// tree stays rooted at the one revocation no matter which send
  /// attempt finally lands. Zero when tracing was off at publish.
  obs::TraceContext ctx;
};

/// A run of deltas, ascending by epoch (a broadcast carries one; a
/// retransmission carries the whole unacked suffix).
struct DeltaBatch {
  std::vector<Delta> deltas;

  util::Bytes encode() const;
  static mwsec::Result<DeltaBatch> decode(const util::Bytes& payload);
};

/// Replica -> authority: start replicating; `have_epoch` is what the
/// replica already holds (0/1 for a fresh store).
struct SubscribeMessage {
  std::uint64_t have_epoch = 0;

  util::Bytes encode() const;
  static mwsec::Result<SubscribeMessage> decode(const util::Bytes& payload);
};

/// Replica -> authority: cumulative ack — every epoch <= `epoch` has been
/// applied. Sent after each applied message and periodically as a
/// heartbeat; an ack from an unknown sender is an implicit subscribe.
struct AckMessage {
  std::uint64_t epoch = 0;

  util::Bytes encode() const;
  static mwsec::Result<AckMessage> decode(const util::Bytes& payload);
};

/// Authority -> replica: full store contents at `epoch` (anti-entropy
/// catch-up when the delta log cannot bridge the replica's gap).
struct SnapshotMessage {
  std::uint64_t epoch = 0;
  std::string bundle;  ///< CompiledStore::to_bundle_text()

  util::Bytes encode() const;
  static mwsec::Result<SnapshotMessage> decode(const util::Bytes& payload);
};

}  // namespace mwsec::sync
