// The publishing side of live policy synchronisation (Figures 7–8: the
// administration point — the WebCom master's trust root or a KeyCOM
// service — from which delegation and revocation propagate).
//
// An `Authority` fronts a `keynote::CompiledStore`: mutations go through
// the publish/revoke methods, which apply them to the store, append an
// epoch-numbered `Delta` (epoch = store version after the mutation) to a
// bounded log, and broadcast it to every subscribed replica. Reliability
// is ack/retransmit: replicas send cumulative acks, and the serve loop
// retransmits the unacked log suffix after `retransmit_interval`. A
// replica too far behind — log trimmed, partition, rejoin — is served a
// full snapshot instead (anti-entropy), which also covers store mutations
// made *around* the authority (e.g. a scheduler admitting attach-time
// credentials directly): those bump the version without a log entry, and
// the resulting un-bridgeable gap degrades to a snapshot, not a stall.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "keynote/compiled_store.hpp"
#include "net/transport.hpp"
#include "sync/protocol.hpp"

namespace mwsec::sync {

struct AuthorityOptions {
  std::chrono::milliseconds poll_interval{10};
  /// Unacked deltas are retransmitted after this much silence per replica.
  std::chrono::milliseconds retransmit_interval{40};
  /// Older log entries are trimmed; catch-up past them is by snapshot.
  std::size_t max_log = 4096;
  /// A replica behind by more than this many epochs is caught up with a
  /// snapshot even if the log could replay the gap.
  std::uint64_t snapshot_lag = 128;
  /// Verify credential signatures at publish admission. An authority
  /// that *mints* what it publishes (e.g. the load harness's admin point
  /// synthesising millions of unsigned principals) may turn this off;
  /// replicas should then run with verify_signatures = false too.
  bool verify_admissions = true;
};

class Authority {
 public:
  using Options = AuthorityOptions;

  /// `store` is the replicated credential store; it must outlive the
  /// authority. Mutations made through this class are published; direct
  /// store mutations propagate only via anti-entropy snapshots.
  Authority(net::Transport& network, const std::string& endpoint_name,
            keynote::CompiledStore& store, Options options = {});
  ~Authority();
  Authority(const Authority&) = delete;
  Authority& operator=(const Authority&) = delete;

  /// Start serving subscribes/acks and retransmitting on a background
  /// thread.
  mwsec::Status start();
  void stop();

  keynote::CompiledStore& store() { return store_; }
  /// The current epoch: the store's version.
  std::uint64_t epoch() const { return store_.version(); }

  // Publishing mutators. Each successful store mutation becomes exactly
  // one delta; mutations that do not move the store (duplicate credential,
  // revocation matching nothing) publish nothing.
  mwsec::Status publish_policy_text(std::string_view text);
  mwsec::Status publish_credential(keynote::Assertion assertion);
  /// Parse and publish a whole bundle, one delta per assertion (policies
  /// and credentials both).
  mwsec::Status publish_bundle_text(std::string_view bundle_text);
  std::size_t revoke_matching(const std::string& text);
  std::size_t revoke_by_authorizer(const std::string& principal);
  std::size_t revoke_by_licensee(const std::string& principal);

  struct Stats {
    std::uint64_t deltas_published = 0;
    std::uint64_t deltas_sent = 0;  ///< individual deltas, incl. resends
    std::uint64_t retransmits = 0;  ///< batches sent beyond the broadcast
    std::uint64_t snapshots_served = 0;
    std::uint64_t acks_received = 0;
    std::uint64_t subscribes = 0;
  };
  Stats stats() const;

  std::size_t replica_count() const;
  /// Largest epoch gap between the store and any replica's cumulative ack
  /// (0 when fully converged or no replicas).
  std::uint64_t replica_lag() const;

 private:
  struct ReplicaState {
    std::uint64_t acked = 0;
    std::chrono::steady_clock::time_point last_send{};
  };

  void serve(std::stop_token st);
  void handle(const net::Message& m);
  /// Append + broadcast one published delta. Caller holds mu_.
  void publish_locked(Delta d);
  /// Bring `replica` up to date: replay the log suffix when it bridges
  /// the gap, else serve a snapshot. Caller holds mu_. `retransmission`
  /// marks sends beyond the initial broadcast for the stats.
  void send_missing_locked(const std::string& replica, ReplicaState& state,
                           bool retransmission);

  net::Transport& network_;
  std::shared_ptr<net::Endpoint> endpoint_;
  keynote::CompiledStore& store_;
  Options options_;
  std::jthread thread_;

  mutable std::mutex mu_;
  std::deque<Delta> log_;  ///< ascending epochs; may have holes
  std::map<std::string, ReplicaState> replicas_;
  Stats stats_;
};

}  // namespace mwsec::sync
