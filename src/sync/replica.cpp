#include "sync/replica.hpp"

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mwsec::sync {

namespace {

struct ReplicaMetrics {
  obs::Counter& deltas_applied;
  obs::Counter& duplicates_ignored;
  obs::Counter& snapshots_installed;
  obs::Counter& apply_errors;

  static ReplicaMetrics& get() {
    auto& r = obs::Registry::global();
    static ReplicaMetrics m{
        r.counter("sync.deltas_applied"),
        r.counter("sync.duplicates_ignored"),
        r.counter("sync.snapshots_installed"),
        r.counter("sync.apply_errors"),
    };
    return m;
  }
};

}  // namespace

Replica::Replica(net::Transport& network, const std::string& endpoint_name,
                 keynote::CompiledStore& store, Options options)
    : network_(network), endpoint_name_(endpoint_name), store_(store),
      options_(options) {
  auto ep = network_.open(endpoint_name);
  if (ep.ok()) {
    endpoint_ = std::move(ep).take();
  } else {
    MWSEC_LOG(kError, "sync") << "replica endpoint '" << endpoint_name
                              << "' failed to open: " << ep.error().message;
    endpoint_ = nullptr;
  }
}

Replica::~Replica() { stop(); }

mwsec::Status Replica::subscribe(const std::string& authority_endpoint) {
  if (endpoint_ != nullptr && endpoint_->closed()) {
    // Re-subscribing after stop(): the endpoint was closed to unblock the
    // serve thread. Re-register the name and open a fresh one — the old
    // registration is dropped first so the name is rebindable.
    network_.kill(endpoint_name_);
    endpoint_ = nullptr;
  }
  if (endpoint_ == nullptr) {
    auto ep = network_.open(endpoint_name_);
    if (!ep.ok()) {
      return Error::make("replica endpoint failed to open: " +
                             ep.error().message,
                         "sync");
    }
    endpoint_ = std::move(ep).take();
  }
  {
    std::scoped_lock lock(mu_);
    authority_ = authority_endpoint;
    // What the replica already holds: its store version. A fresh store is
    // at version 1 and an authority that has published nothing is too, so
    // the pair starts converged.
    applied_ = store_.version();
    SubscribeMessage sub;
    sub.have_epoch = applied_;
    // A lost subscribe is healed by the heartbeat acks below.
    endpoint_->send(authority_, kSubjectSubscribe, sub.encode()).ok();
    last_ack_ = std::chrono::steady_clock::now();
  }
  if (!thread_.joinable()) {
    thread_ = std::jthread([this](std::stop_token st) { serve(st); });
  }
  return {};
}

void Replica::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

std::uint64_t Replica::epoch() const {
  std::scoped_lock lock(mu_);
  return applied_;
}

bool Replica::wait_for_epoch(std::uint64_t target,
                             std::chrono::milliseconds timeout) const {
  std::unique_lock lock(mu_);
  return cv_.wait_for(lock, timeout, [&] { return applied_ >= target; });
}

Replica::Stats Replica::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

obs::TraceContext Replica::last_applied_context() const {
  std::scoped_lock lock(mu_);
  return last_applied_ctx_;
}

void Replica::apply_locked(const Delta& d) {
  // Continue the publish's causal tree (via the net hop when handle()
  // substituted the envelope context). The scoped ambient context tags
  // any log line emitted during the apply with the trace id.
  obs::Span span = obs::Tracer::global().join("sync.apply", d.ctx);
  if (span.active()) {
    span.set_attr("replica", endpoint_ != nullptr ? endpoint_->name() : "");
    span.set_attr("kind", delta_kind_name(d.kind));
    span.set_attr("epoch", std::to_string(d.epoch));
  }
  obs::ScopedTraceContext ambient(span.context());
  mwsec::Status status;
  switch (d.kind) {
    case DeltaKind::kAddPolicy:
      status = store_.add_policy_text(d.body);
      break;
    case DeltaKind::kAddCredential: {
      auto a = keynote::Assertion::parse(d.body);
      if (a.ok()) {
        status = store_.add_credential(std::move(a).take(),
                                       options_.verify_signatures);
      } else {
        status = a.error();
      }
      break;
    }
    // A revocation matching nothing locally is fine — a snapshot install
    // may already have removed it (idempotence, again).
    case DeltaKind::kRevokeMatching:
      store_.remove_matching(d.body);
      break;
    case DeltaKind::kRevokeByAuthorizer:
      store_.remove_by_authorizer(d.body);
      break;
    case DeltaKind::kRevokeByLicensee:
      store_.remove_by_licensee(d.body);
      break;
  }
  if (!status.ok()) {
    // Count and keep going: wedging the stream on one bad delta would
    // stall every later (good) one; anti-entropy restores exact parity.
    ++stats_.apply_errors;
    ReplicaMetrics::get().apply_errors.inc();
    span.set_status("error");
    MWSEC_LOG(kWarn, "sync")
        << "delta " << d.epoch << " (" << delta_kind_name(d.kind)
        << ") failed to apply: " << status.error().message;
  } else {
    span.set_status("applied");
  }
  // Track the authority's epoch exactly; every version-keyed decision
  // cache over this store invalidates here.
  store_.advance_version_to(d.epoch);
  applied_ = d.epoch;
  last_applied_ctx_ = span.context();
  ++stats_.deltas_applied;
  ReplicaMetrics::get().deltas_applied.inc();
  obs::FlightRecorder::global().record(obs::FlightKind::kDeltaApply,
                                       static_cast<double>(d.epoch),
                                       d.ctx.trace_id, d.epoch);
  cv_.notify_all();
}

void Replica::drain_buffer_locked() {
  for (auto it = buffer_.begin(); it != buffer_.end();) {
    if (it->first <= applied_) {
      it = buffer_.erase(it);  // superseded by a snapshot or duplicate
    } else if (it->first == applied_ + 1) {
      apply_locked(it->second);
      it = buffer_.erase(it);
    } else {
      break;  // gap still open
    }
  }
}

void Replica::send_ack_locked() {
  if (authority_.empty() || endpoint_ == nullptr) return;
  AckMessage ack;
  ack.epoch = applied_;
  endpoint_->send(authority_, kSubjectAck, ack.encode()).ok();
  last_ack_ = std::chrono::steady_clock::now();
  ++stats_.acks_sent;
}

void Replica::handle(const net::Message& m) {
  std::scoped_lock lock(mu_);
  if (m.subject == kSubjectDelta) {
    auto decoded = DeltaBatch::decode(m.payload);
    if (!decoded.ok()) return;
    DeltaBatch batch = std::move(decoded).take();
    for (auto& d : batch.deltas) {
      // Prefer the envelope context (the net hop that actually delivered
      // this copy) as the apply's parent — but only when it belongs to
      // the same trace as the delta's origin, which a mixed retransmit
      // batch need not. The substitution survives buffering, so a
      // gap-filling apply still hangs off its own delivery hop.
      if (m.ctx.valid() && m.ctx.trace_id == d.ctx.trace_id) d.ctx = m.ctx;
      if (d.epoch <= applied_) {
        ++stats_.duplicates_ignored;
        ReplicaMetrics::get().duplicates_ignored.inc();
      } else if (d.epoch == applied_ + 1) {
        apply_locked(d);
        drain_buffer_locked();
      } else if (buffer_.size() < options_.max_buffered) {
        // Out of order: hold it until the gap fills (or a snapshot
        // supersedes it). The cumulative ack below tells the authority
        // where the gap starts, and its retransmit loop closes it.
        auto [it, inserted] = buffer_.try_emplace(d.epoch, std::move(d));
        (void)it;
        if (inserted) {
          ++stats_.buffered_out_of_order;
          ++stats_.gaps_detected;
        } else {
          ++stats_.duplicates_ignored;
          ReplicaMetrics::get().duplicates_ignored.inc();
        }
      }
    }
    send_ack_locked();
  } else if (m.subject == kSubjectSnapshot) {
    auto snap = SnapshotMessage::decode(m.payload);
    if (!snap.ok()) return;
    if (snap->epoch > applied_) {
      obs::Span span =
          obs::Tracer::global().join("sync.snapshot_install", m.ctx);
      if (span.active()) {
        span.set_attr("replica",
                      endpoint_ != nullptr ? endpoint_->name() : "");
        span.set_attr("epoch", std::to_string(snap->epoch));
      }
      auto s = store_.install_bundle(snap->bundle, snap->epoch,
                                     options_.verify_signatures);
      if (s.ok()) {
        span.set_status("installed");
        applied_ = snap->epoch;
        last_applied_ctx_ = span.context();
        ++stats_.snapshots_installed;
        ReplicaMetrics::get().snapshots_installed.inc();
        cv_.notify_all();
        drain_buffer_locked();
      } else {
        span.set_status("error");
        ++stats_.apply_errors;
        ReplicaMetrics::get().apply_errors.inc();
        MWSEC_LOG(kWarn, "sync") << "snapshot at epoch " << snap->epoch
                                 << " failed to install: "
                                 << s.error().message;
      }
    } else {
      ++stats_.duplicates_ignored;
      ReplicaMetrics::get().duplicates_ignored.inc();
    }
    send_ack_locked();
  }
}

void Replica::serve(std::stop_token st) {
  while (!st.stop_requested()) {
    auto message = endpoint_->receive(options_.poll_interval);
    if (endpoint_->closed()) return;
    if (message.has_value()) handle(*message);
    std::scoped_lock lock(mu_);
    if (std::chrono::steady_clock::now() - last_ack_ >=
        options_.heartbeat_interval) {
      send_ack_locked();
    }
  }
}

}  // namespace mwsec::sync
