#include "sync/protocol.hpp"

namespace mwsec::sync {

namespace {

constexpr std::uint8_t kMaxKind =
    static_cast<std::uint8_t>(DeltaKind::kRevokeByLicensee);

mwsec::Result<Delta> read_delta(util::ByteReader& r) {
  Delta d;
  auto epoch = r.u64();
  if (!epoch.ok()) return epoch.error();
  d.epoch = *epoch;
  auto kind = r.u8();
  if (!kind.ok()) return kind.error();
  if (*kind > kMaxKind) {
    return Error::make("unknown delta kind " + std::to_string(*kind), "wire");
  }
  d.kind = static_cast<DeltaKind>(*kind);
  auto body = r.str();
  if (!body.ok()) return body.error();
  d.body = std::move(body).take();
  auto trace = r.u64();
  if (!trace.ok()) return trace.error();
  auto span = r.u64();
  if (!span.ok()) return span.error();
  d.ctx = {*trace, *span};
  return d;
}

}  // namespace

const char* delta_kind_name(DeltaKind kind) {
  switch (kind) {
    case DeltaKind::kAddPolicy: return "add-policy";
    case DeltaKind::kAddCredential: return "add-credential";
    case DeltaKind::kRevokeMatching: return "revoke-matching";
    case DeltaKind::kRevokeByAuthorizer: return "revoke-by-authorizer";
    case DeltaKind::kRevokeByLicensee: return "revoke-by-licensee";
  }
  return "unknown";
}

util::Bytes DeltaBatch::encode() const {
  util::ByteWriter w;
  w.u32(static_cast<std::uint32_t>(deltas.size()));
  for (const auto& d : deltas) {
    w.u64(d.epoch);
    w.u8(static_cast<std::uint8_t>(d.kind));
    w.str(d.body);
    w.u64(d.ctx.trace_id);
    w.u64(d.ctx.span_id);
  }
  return w.take();
}

mwsec::Result<DeltaBatch> DeltaBatch::decode(const util::Bytes& payload) {
  util::ByteReader r(payload);
  DeltaBatch out;
  auto n = r.u32();
  if (!n.ok()) return n.error();
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto d = read_delta(r);
    if (!d.ok()) return d.error();
    out.deltas.push_back(std::move(d).take());
  }
  if (!r.exhausted()) {
    return Error::make("trailing bytes in delta batch", "wire");
  }
  return out;
}

util::Bytes SubscribeMessage::encode() const {
  util::ByteWriter w;
  w.u64(have_epoch);
  return w.take();
}

mwsec::Result<SubscribeMessage> SubscribeMessage::decode(
    const util::Bytes& payload) {
  util::ByteReader r(payload);
  SubscribeMessage out;
  auto e = r.u64();
  if (!e.ok()) return e.error();
  out.have_epoch = *e;
  if (!r.exhausted()) {
    return Error::make("trailing bytes in subscribe", "wire");
  }
  return out;
}

util::Bytes AckMessage::encode() const {
  util::ByteWriter w;
  w.u64(epoch);
  return w.take();
}

mwsec::Result<AckMessage> AckMessage::decode(const util::Bytes& payload) {
  util::ByteReader r(payload);
  AckMessage out;
  auto e = r.u64();
  if (!e.ok()) return e.error();
  out.epoch = *e;
  if (!r.exhausted()) return Error::make("trailing bytes in ack", "wire");
  return out;
}

util::Bytes SnapshotMessage::encode() const {
  util::ByteWriter w;
  w.u64(epoch);
  w.str(bundle);
  return w.take();
}

mwsec::Result<SnapshotMessage> SnapshotMessage::decode(
    const util::Bytes& payload) {
  util::ByteReader r(payload);
  SnapshotMessage out;
  auto e = r.u64();
  if (!e.ok()) return e.error();
  out.epoch = *e;
  auto b = r.str();
  if (!b.ok()) return b.error();
  out.bundle = std::move(b).take();
  if (!r.exhausted()) {
    return Error::make("trailing bytes in snapshot", "wire");
  }
  return out;
}

}  // namespace mwsec::sync
