// The subscribing side of live policy synchronisation: keeps a local
// `keynote::CompiledStore` — the WebCom master's trust root, a client's, a
// middleware catalogue front — converged with an authority's.
//
// Deltas apply strictly in epoch order. A delta at or below the applied
// epoch is a duplicate and is skipped (idempotence under the network's
// duplicate-delivery fault injection); one past the next epoch is buffered
// until the gap fills (reordering) or anti-entropy bridges it. After each
// applied delta the store's version is advanced to the delta epoch, so
// every decision cache keyed on the version — `authz::CachingAuthorizer`
// in front of the scheduler, most importantly — invalidates exactly when
// replicated policy changes, and a cached allow-verdict for a revoked
// principal dies mid-run without any re-attach.
//
// Liveness under loss and partition: the replica acks cumulatively after
// every applied message and heartbeats the same ack when idle; the
// authority retransmits or serves a snapshot for anything unacked. A lost
// subscribe is healed the same way (acks double as subscribes).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "keynote/compiled_store.hpp"
#include "net/transport.hpp"
#include "sync/protocol.hpp"

namespace mwsec::sync {

struct ReplicaOptions {
  std::chrono::milliseconds poll_interval{10};
  /// Idle-heartbeat spacing: an ack of the applied epoch is sent at
  /// least this often, keeping the authority's retransmit loop fed.
  std::chrono::milliseconds heartbeat_interval{40};
  /// Replicas verify replicated credential signatures by default
  /// (credentials are self-certifying); an authenticated channel from
  /// an authority that verified at admission may turn this off.
  bool verify_signatures = true;
  /// Out-of-order deltas held while waiting for the gap to fill.
  std::size_t max_buffered = 256;
};

class Replica {
 public:
  using Options = ReplicaOptions;

  /// `store` must outlive the replica. The replica mutates it from its
  /// serve thread; CompiledStore is internally synchronised, so readers
  /// (schedulers, authorisers) need no extra locking.
  Replica(net::Transport& network, const std::string& endpoint_name,
          keynote::CompiledStore& store, Options options = {});
  ~Replica();
  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Send the subscribe and start applying deltas on a background thread.
  /// May be called again after stop() (a *flapped* replica rejoining):
  /// the endpoint is reopened and catch-up proceeds from the store's
  /// version — the authority replays the missed suffix or serves a
  /// snapshot, exactly as for a late joiner.
  mwsec::Status subscribe(const std::string& authority_endpoint);
  void stop();

  keynote::CompiledStore& store() { return store_; }

  /// Last authority epoch applied (0 until the first delta or snapshot).
  std::uint64_t epoch() const;

  /// Test/benchmark convenience: block until `target` (or newer) has been
  /// applied. False on timeout.
  bool wait_for_epoch(std::uint64_t target,
                      std::chrono::milliseconds timeout) const;

  /// Context of the most recent "sync.apply"/"sync.snapshot_install" span
  /// (invalid when tracing was off for it). A version-keyed cache that
  /// flushes because this replica moved the store epoch joins its
  /// verdict-flip span here — completing the causal chain revocation →
  /// net → apply → flip (see authz::CachingAuthorizer::set_epoch_provenance).
  obs::TraceContext last_applied_context() const;

  struct Stats {
    std::uint64_t deltas_applied = 0;
    std::uint64_t duplicates_ignored = 0;
    std::uint64_t buffered_out_of_order = 0;
    std::uint64_t gaps_detected = 0;
    std::uint64_t snapshots_installed = 0;
    std::uint64_t acks_sent = 0;
    std::uint64_t apply_errors = 0;
  };
  Stats stats() const;

 private:
  void serve(std::stop_token st);
  void handle(const net::Message& m);
  /// Apply one in-sequence delta to the store. Caller holds mu_.
  void apply_locked(const Delta& d);
  /// Apply everything contiguous from the buffer. Caller holds mu_.
  void drain_buffer_locked();
  void send_ack_locked();

  net::Transport& network_;
  std::string endpoint_name_;
  std::shared_ptr<net::Endpoint> endpoint_;
  keynote::CompiledStore& store_;
  Options options_;
  std::string authority_;
  std::jthread thread_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;  ///< signalled when applied_ advances
  std::uint64_t applied_ = 0;
  obs::TraceContext last_applied_ctx_;
  std::map<std::uint64_t, Delta> buffer_;  ///< out-of-order deltas by epoch
  std::chrono::steady_clock::time_point last_ack_{};
  Stats stats_;
};

}  // namespace mwsec::sync
