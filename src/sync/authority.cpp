#include "sync/authority.hpp"

#include <algorithm>

#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mwsec::sync {

namespace {

/// Process-wide replication counters (ISSUE: deltas applied / snapshots
/// served / replica lag / retransmits). The replica side records its own
/// half in replica.cpp.
struct AuthorityMetrics {
  obs::Counter& deltas_published;
  obs::Counter& deltas_sent;
  obs::Counter& retransmits;
  obs::Counter& snapshots_served;
  obs::Counter& acks_received;
  obs::Gauge& replica_lag;

  static AuthorityMetrics& get() {
    auto& r = obs::Registry::global();
    static AuthorityMetrics m{
        r.counter("sync.deltas_published"),
        r.counter("sync.deltas_sent"),
        r.counter("sync.retransmits"),
        r.counter("sync.snapshots_served"),
        r.counter("sync.acks_received"),
        r.gauge("sync.replica_lag"),
    };
    return m;
  }
};

}  // namespace

Authority::Authority(net::Transport& network, const std::string& endpoint_name,
                     keynote::CompiledStore& store, Options options)
    : network_(network), store_(store), options_(options) {
  auto ep = network_.open(endpoint_name);
  if (ep.ok()) {
    endpoint_ = std::move(ep).take();
  } else {
    MWSEC_LOG(kError, "sync") << "authority endpoint '" << endpoint_name
                              << "' failed to open: " << ep.error().message;
    endpoint_ = nullptr;
  }
}

Authority::~Authority() { stop(); }

mwsec::Status Authority::start() {
  if (endpoint_ == nullptr) {
    return Error::make("authority endpoint failed to open", "sync");
  }
  if (thread_.joinable()) return {};
  thread_ = std::jthread([this](std::stop_token st) { serve(st); });
  return {};
}

void Authority::stop() {
  if (thread_.joinable()) {
    thread_.request_stop();
    if (endpoint_) endpoint_->close();
    thread_.join();
  }
}

void Authority::publish_locked(Delta d) {
  auto& metrics = AuthorityMetrics::get();
  ++stats_.deltas_published;
  metrics.deltas_published.inc();
  // The publish span roots (or, under an ambient context such as KeyCOM's
  // apply, continues) the delta's causal tree; its context is stamped
  // into the delta itself so retransmits and log replays keep pointing at
  // this one publish. The span covers the initial broadcast fan-out.
  obs::Span span = obs::Tracer::global().start("sync.publish");
  if (span.active()) {
    span.set_attr("kind", delta_kind_name(d.kind));
    span.set_attr("epoch", std::to_string(d.epoch));
    span.set_status("published");
    d.ctx = span.context();
  }
  log_.push_back(std::move(d));
  while (log_.size() > options_.max_log) log_.pop_front();
  if (endpoint_ == nullptr) return;
  DeltaBatch batch;
  batch.deltas.push_back(log_.back());
  auto payload = batch.encode();
  auto now = std::chrono::steady_clock::now();
  for (auto& [name, state] : replicas_) {
    endpoint_->send(name, kSubjectDelta, payload, log_.back().ctx)
        .ok();  // loss → retransmit
    state.last_send = now;
    ++stats_.deltas_sent;
    metrics.deltas_sent.inc();
  }
}

mwsec::Status Authority::publish_policy_text(std::string_view text) {
  auto bundle = keynote::Assertion::parse_bundle(text);
  if (!bundle.ok()) return bundle.error();
  std::scoped_lock lock(mu_);
  for (auto& a : *bundle) {
    const std::string body = a.to_text();
    const auto before = store_.version();
    if (auto s = store_.add_policy(std::move(a)); !s.ok()) return s;
    if (store_.version() == before) continue;
    publish_locked({store_.version(), DeltaKind::kAddPolicy, body});
  }
  return {};
}

mwsec::Status Authority::publish_credential(keynote::Assertion assertion) {
  std::scoped_lock lock(mu_);
  const std::string body = assertion.to_text();
  const auto before = store_.version();
  if (auto s = store_.add_credential(std::move(assertion),
                                     options_.verify_admissions);
      !s.ok()) {
    return s;
  }
  // Idempotent re-add: the store did not move, so there is nothing to say.
  if (store_.version() == before) return {};
  publish_locked({store_.version(), DeltaKind::kAddCredential, body});
  return {};
}

mwsec::Status Authority::publish_bundle_text(std::string_view bundle_text) {
  auto bundle = keynote::Assertion::parse_bundle(bundle_text);
  if (!bundle.ok()) return bundle.error();
  for (auto& a : *bundle) {
    if (a.is_policy()) {
      if (auto s = publish_policy_text(a.to_text()); !s.ok()) return s;
    } else {
      if (auto s = publish_credential(std::move(a)); !s.ok()) return s;
    }
  }
  return {};
}

std::size_t Authority::revoke_matching(const std::string& text) {
  std::scoped_lock lock(mu_);
  auto removed = store_.remove_matching(text);
  if (removed != 0) {
    publish_locked({store_.version(), DeltaKind::kRevokeMatching, text});
  }
  return removed;
}

std::size_t Authority::revoke_by_authorizer(const std::string& principal) {
  std::scoped_lock lock(mu_);
  auto removed = store_.remove_by_authorizer(principal);
  if (removed != 0) {
    publish_locked(
        {store_.version(), DeltaKind::kRevokeByAuthorizer, principal});
  }
  return removed;
}

std::size_t Authority::revoke_by_licensee(const std::string& principal) {
  std::scoped_lock lock(mu_);
  auto removed = store_.remove_by_licensee(principal);
  if (removed != 0) {
    publish_locked(
        {store_.version(), DeltaKind::kRevokeByLicensee, principal});
  }
  return removed;
}

void Authority::send_missing_locked(const std::string& replica,
                                    ReplicaState& state, bool retransmission) {
  const std::uint64_t current = store_.version();
  if (state.acked >= current || endpoint_ == nullptr) return;
  auto& metrics = AuthorityMetrics::get();
  state.last_send = std::chrono::steady_clock::now();

  // The log bridges the gap only if it holds every epoch in
  // (acked, current] — holes (trimmed entries, unpublished direct store
  // mutations) or a gap beyond snapshot_lag degrade to a snapshot.
  const std::uint64_t gap = current - state.acked;
  bool replayable = gap <= options_.snapshot_lag;
  if (replayable) {
    auto first = std::find_if(log_.begin(), log_.end(), [&](const Delta& d) {
      return d.epoch > state.acked;
    });
    std::uint64_t expected = state.acked + 1;
    for (auto it = first; replayable && expected <= current; ++it, ++expected) {
      if (it == log_.end() || it->epoch != expected) replayable = false;
    }
    if (replayable) {
      DeltaBatch batch;
      batch.deltas.assign(first, first + static_cast<std::ptrdiff_t>(gap));
      // The envelope carries the oldest resent delta's origin context;
      // each delta also carries its own, so the replica attributes every
      // apply to the right publish even in a mixed batch.
      endpoint_->send(replica, kSubjectDelta, batch.encode(),
                      batch.deltas.front().ctx)
          .ok();
      stats_.deltas_sent += gap;
      metrics.deltas_sent.inc(gap);
      if (retransmission) {
        ++stats_.retransmits;
        metrics.retransmits.inc();
        obs::FlightRecorder::global().record(
            obs::FlightKind::kRetransmit, static_cast<double>(gap),
            batch.deltas.front().ctx.trace_id, state.acked);
      }
      return;
    }
  }

  SnapshotMessage snap;
  snap.epoch = current;
  snap.bundle = store_.to_bundle_text();
  endpoint_->send(replica, kSubjectSnapshot, snap.encode()).ok();
  ++stats_.snapshots_served;
  metrics.snapshots_served.inc();
}

void Authority::handle(const net::Message& m) {
  std::scoped_lock lock(mu_);
  if (m.subject == kSubjectSubscribe) {
    auto sub = SubscribeMessage::decode(m.payload);
    if (!sub.ok()) return;
    ++stats_.subscribes;
    replicas_[m.from] = ReplicaState{sub->have_epoch, {}};
    send_missing_locked(m.from, replicas_[m.from], /*retransmission=*/false);
  } else if (m.subject == kSubjectAck) {
    auto ack = AckMessage::decode(m.payload);
    if (!ack.ok()) return;
    ++stats_.acks_received;
    AuthorityMetrics::get().acks_received.inc();
    auto [it, inserted] = replicas_.try_emplace(m.from);
    // An ack from an unknown sender is an implicit (re-)subscribe: the
    // original subscribe may have been lost, and heartbeat acks must be
    // enough to pull a partitioned-then-healed replica back in.
    it->second.acked = std::max(it->second.acked, ack->epoch);
    if (inserted) {
      send_missing_locked(m.from, it->second, /*retransmission=*/false);
    }
  }
}

void Authority::serve(std::stop_token st) {
  while (!st.stop_requested()) {
    auto message = endpoint_->receive(options_.poll_interval);
    if (endpoint_->closed()) return;
    if (message.has_value()) handle(*message);

    std::scoped_lock lock(mu_);
    const std::uint64_t current = store_.version();
    const auto now = std::chrono::steady_clock::now();
    std::uint64_t max_lag = 0;
    for (auto& [name, state] : replicas_) {
      if (state.acked < current) {
        max_lag = std::max(max_lag, current - state.acked);
        if (now - state.last_send >= options_.retransmit_interval) {
          send_missing_locked(name, state, /*retransmission=*/true);
        }
      }
    }
    AuthorityMetrics::get().replica_lag.set(
        static_cast<std::int64_t>(max_lag));
  }
}

Authority::Stats Authority::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

std::size_t Authority::replica_count() const {
  std::scoped_lock lock(mu_);
  return replicas_.size();
}

std::uint64_t Authority::replica_lag() const {
  std::scoped_lock lock(mu_);
  const std::uint64_t current = store_.version();
  std::uint64_t max_lag = 0;
  for (const auto& [name, state] : replicas_) {
    if (state.acked < current) max_lag = std::max(max_lag, current - state.acked);
  }
  return max_lag;
}

}  // namespace mwsec::sync
