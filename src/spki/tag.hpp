// SPKI authorisation tags (RFC 2693 §5; paper footnote 1: "Secure WebCom
// includes support for SPKI/SDSI ... our results are applicable to
// SPKI/SDSI").
//
// A tag is an s-expression describing a set of permissions:
//   (tag (salaries read))             — a concrete permission
//   (tag (*))                         — everything
//   (tag (salaries (* set read write))) — read or write on salaries
//   (tag (file (* prefix /srv/)))     — any string with the prefix
// Delegation is governed by *tag intersection*: a chain conveys the
// intersection of every certificate's tag, exactly as KeyNote chains
// convey the conjunction of their conditions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mwsec::spki {

/// One node of a tag s-expression.
class Tag {
 public:
  enum class Kind {
    kAtom,    // a byte string
    kList,    // ( e1 e2 ... )
    kAll,     // (*) — matches anything
    kSet,     // (* set e1 e2 ...) — any of the alternatives
    kPrefix,  // (* prefix s) — any atom with prefix s
  };

  static Tag atom(std::string text);
  static Tag list(std::vector<Tag> elements);
  static Tag all();
  static Tag set(std::vector<Tag> alternatives);
  static Tag prefix(std::string p);

  /// Parse the textual s-expression form, e.g. "(tag (salaries read))".
  /// Accepts the outer (tag ...) wrapper or a bare expression.
  static mwsec::Result<Tag> parse(std::string_view text);

  Kind kind() const { return kind_; }
  const std::string& text() const { return text_; }
  const std::vector<Tag>& elements() const { return elements_; }

  /// Canonical textual rendering (without the (tag ...) wrapper).
  std::string to_text() const;

  /// Tag intersection (RFC 2693 §6.3): the set of permissions conveyed by
  /// both tags; nullopt when the intersection is empty.
  static std::optional<Tag> intersect(const Tag& a, const Tag& b);

  /// True if `a` covers `b` (every permission in b is in a) — i.e.
  /// intersect(a, b) == b.
  static bool covers(const Tag& a, const Tag& b);

  bool operator==(const Tag& o) const;

 private:
  Kind kind_ = Kind::kAll;
  std::string text_;           // for kAtom / kPrefix
  std::vector<Tag> elements_;  // for kList / kSet
};

}  // namespace mwsec::spki
