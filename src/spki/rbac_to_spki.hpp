// RBAC -> SPKI/SDSI encoding: the footnote-1 counterpart of the Figure 5
// KeyNote compilation. The mapping exploits SDSI names directly:
//
//   role (Domain, Role)          -> the SDSI name "Domain.Role" in the
//                                   admin key's name space;
//   UserRole (d, r, u)           -> a name cert  (K_admin "d.r") -> K_u;
//   HasPermission (d, r, o, p)   -> an auth cert K_admin -> (name K_admin
//                                   "d.r") over tag (webcom o p),
//                                   delegation on (so users can
//                                   re-delegate, as in Figure 7).
//
// An access request (u, o, p) is authorised iff
//   authorize(K_admin, K_u, (webcom o p)).
#pragma once

#include "rbac/model.hpp"
#include "spki/certs.hpp"
#include "translate/directory.hpp"

namespace mwsec::spki {

struct CompiledSpkiPolicy {
  std::vector<NameCert> name_certs;
  std::vector<AuthCert> auth_certs;
};

/// The SDSI identifier for a role.
std::string role_identifier(const std::string& domain, const std::string& role);

/// The authorisation tag for (object_type, permission).
Tag permission_tag(const std::string& object_type,
                   const std::string& permission);

/// Compile and sign with the admin identity.
mwsec::Result<CompiledSpkiPolicy> compile_policy_spki(
    const rbac::Policy& policy, const crypto::Identity& admin,
    translate::PrincipalDirectory& directory);

/// Load a compiled policy into a store (certs verified on add).
mwsec::Status load(CertStore& store, const CompiledSpkiPolicy& compiled);

/// Access decision through the SPKI engine — semantically equivalent to
/// rbac::Policy::check on the source policy (tested as a property).
bool spki_check(const CertStore& store, const std::string& admin_principal,
                const std::string& requester_principal,
                const std::string& object_type, const std::string& permission);

}  // namespace mwsec::spki
