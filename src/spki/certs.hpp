// SPKI/SDSI certificates and the authorisation engine (RFC 2693; Rivest &
// Lampson [24]).
//
// Two certificate forms:
//   * name certs   — (issuer key, identifier) -> subject: SDSI's local
//     name spaces. RBAC roles map naturally onto SDSI names: the name
//     "Finance.Manager" in the admin key's name space *is* the role, and
//     membership is a name cert binding a user key to it.
//   * auth certs   — issuer grants a Tag of authority to a subject (a key
//     or a name), with a delegation bit.
// authorize() performs tuple reduction: it searches for a chain of auth
// certs from the root key to the requester whose tag intersection covers
// the requested tag, with every non-terminal certificate carrying the
// delegation bit; names are resolved through the name certs.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "spki/tag.hpp"
#include "util/result.hpp"

namespace mwsec::spki {

/// A subject: a bare key, or a name (key, id1, id2, ...) to resolve.
struct Subject {
  std::string key;
  std::vector<std::string> ids;  // empty => the subject is the key itself

  bool is_key() const { return ids.empty(); }
  static Subject of_key(std::string k) { return Subject{std::move(k), {}}; }
  static Subject of_name(std::string k, std::vector<std::string> ids) {
    return Subject{std::move(k), std::move(ids)};
  }
  std::string to_text() const;
  bool operator==(const Subject&) const = default;
};

struct NameCert {
  std::string issuer_key;
  std::string identifier;
  Subject subject;
  std::string signature;

  std::string canonical_body() const;
  mwsec::Status sign_with(const crypto::Identity& identity);
  mwsec::Status verify() const;
};

struct AuthCert {
  std::string issuer_key;
  Subject subject;
  bool delegate = false;
  Tag tag = Tag::all();
  std::string signature;

  std::string canonical_body() const;
  mwsec::Status sign_with(const crypto::Identity& identity);
  mwsec::Status verify() const;
};

class CertStore {
 public:
  /// Verify (unless `trusted`) and add. Certificates failing verification
  /// are rejected.
  mwsec::Status add(NameCert cert, bool trusted = false);
  mwsec::Status add(AuthCert cert, bool trusted = false);

  std::size_t name_cert_count() const { return name_certs_.size(); }
  std::size_t auth_cert_count() const { return auth_certs_.size(); }

  /// Resolve a SDSI name to the set of keys it denotes. Cycle-safe.
  std::set<std::string> resolve(const std::string& key,
                                const std::vector<std::string>& ids) const;
  std::set<std::string> resolve(const Subject& subject) const;

  /// Tuple reduction: is `requester` authorised for `tag` by a chain of
  /// auth certs rooted at `root_key`? The root is authorised for
  /// everything in its own name.
  bool authorize(const std::string& root_key, const std::string& requester,
                 const Tag& tag) const;

 private:
  bool search(const std::string& current, const std::string& requester,
              const Tag& need,
              std::set<std::pair<std::string, std::string>>& visiting) const;

  std::vector<NameCert> name_certs_;
  std::vector<AuthCert> auth_certs_;
};

}  // namespace mwsec::spki
