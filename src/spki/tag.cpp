#include "spki/tag.hpp"

#include <cctype>

#include "util/strings.hpp"

namespace mwsec::spki {

Tag Tag::atom(std::string text) {
  Tag t;
  t.kind_ = Kind::kAtom;
  t.text_ = std::move(text);
  return t;
}

Tag Tag::list(std::vector<Tag> elements) {
  Tag t;
  t.kind_ = Kind::kList;
  t.elements_ = std::move(elements);
  return t;
}

Tag Tag::all() {
  Tag t;
  t.kind_ = Kind::kAll;
  return t;
}

Tag Tag::set(std::vector<Tag> alternatives) {
  Tag t;
  t.kind_ = Kind::kSet;
  t.elements_ = std::move(alternatives);
  return t;
}

Tag Tag::prefix(std::string p) {
  Tag t;
  t.kind_ = Kind::kPrefix;
  t.text_ = std::move(p);
  return t;
}

namespace {

struct SexpParser {
  std::string_view src;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < src.size() &&
           std::isspace(static_cast<unsigned char>(src[pos]))) {
      ++pos;
    }
  }
  bool at_end() {
    skip_ws();
    return pos >= src.size();
  }
  bool peek(char c) {
    skip_ws();
    return pos < src.size() && src[pos] == c;
  }

  mwsec::Result<std::string> parse_atom_text() {
    skip_ws();
    if (pos >= src.size()) return Error::make("unexpected end of tag", "spki");
    if (src[pos] == '"') {
      ++pos;
      std::string out;
      while (pos < src.size() && src[pos] != '"') {
        if (src[pos] == '\\' && pos + 1 < src.size()) ++pos;
        out.push_back(src[pos++]);
      }
      if (pos >= src.size()) {
        return Error::make("unterminated string in tag", "spki");
      }
      ++pos;
      return out;
    }
    std::size_t start = pos;
    while (pos < src.size() && src[pos] != '(' && src[pos] != ')' &&
           !std::isspace(static_cast<unsigned char>(src[pos]))) {
      ++pos;
    }
    if (pos == start) {
      return Error::make("expected an atom in tag", "spki");
    }
    return std::string(src.substr(start, pos - start));
  }

  mwsec::Result<Tag> parse_expr() {
    skip_ws();
    if (pos >= src.size()) return Error::make("unexpected end of tag", "spki");
    if (src[pos] != '(') {
      auto text = parse_atom_text();
      if (!text.ok()) return text.error();
      return Tag::atom(std::move(text).take());
    }
    ++pos;  // '('
    skip_ws();
    // (*), (* set ...), (* prefix s)
    if (pos < src.size() && src[pos] == '*') {
      ++pos;
      skip_ws();
      if (pos < src.size() && src[pos] == ')') {
        ++pos;
        return Tag::all();
      }
      auto keyword = parse_atom_text();
      if (!keyword.ok()) return keyword.error();
      if (*keyword == "set") {
        std::vector<Tag> alternatives;
        while (!peek(')')) {
          auto e = parse_expr();
          if (!e.ok()) return e;
          alternatives.push_back(std::move(e).take());
        }
        ++pos;  // ')'
        if (alternatives.empty()) {
          return Error::make("(* set) needs at least one alternative", "spki");
        }
        return Tag::set(std::move(alternatives));
      }
      if (*keyword == "prefix") {
        auto p = parse_atom_text();
        if (!p.ok()) return p.error();
        if (!peek(')')) return Error::make("expected ')' after prefix", "spki");
        ++pos;
        return Tag::prefix(std::move(p).take());
      }
      return Error::make("unknown tag operator: * " + *keyword, "spki");
    }
    std::vector<Tag> elements;
    while (!peek(')')) {
      if (at_end()) return Error::make("missing ')' in tag", "spki");
      auto e = parse_expr();
      if (!e.ok()) return e;
      elements.push_back(std::move(e).take());
    }
    ++pos;  // ')'
    return Tag::list(std::move(elements));
  }
};

std::string quote_atom(const std::string& s) {
  bool plain = !s.empty();
  for (char c : s) {
    if (std::isspace(static_cast<unsigned char>(c)) || c == '(' || c == ')' ||
        c == '"') {
      plain = false;
      break;
    }
  }
  if (plain) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

mwsec::Result<Tag> Tag::parse(std::string_view text) {
  SexpParser p{text};
  auto expr = p.parse_expr();
  if (!expr.ok()) return expr;
  if (!p.at_end()) return Error::make("trailing input after tag", "spki");
  // Unwrap an outer (tag ...) if present.
  Tag t = std::move(expr).take();
  if (t.kind_ == Kind::kList && !t.elements_.empty() &&
      t.elements_[0].kind_ == Kind::kAtom && t.elements_[0].text_ == "tag") {
    if (t.elements_.size() != 2) {
      return Error::make("(tag ...) must wrap exactly one expression", "spki");
    }
    return t.elements_[1];
  }
  return t;
}

std::string Tag::to_text() const {
  switch (kind_) {
    case Kind::kAtom:
      return quote_atom(text_);
    case Kind::kAll:
      return "(*)";
    case Kind::kPrefix:
      return "(* prefix " + quote_atom(text_) + ")";
    case Kind::kSet: {
      std::string out = "(* set";
      for (const auto& e : elements_) out += " " + e.to_text();
      return out + ")";
    }
    case Kind::kList: {
      std::string out = "(";
      for (std::size_t i = 0; i < elements_.size(); ++i) {
        if (i != 0) out += " ";
        out += elements_[i].to_text();
      }
      return out + ")";
    }
  }
  return "?";
}

bool Tag::operator==(const Tag& o) const {
  return kind_ == o.kind_ && text_ == o.text_ && elements_ == o.elements_;
}

std::optional<Tag> Tag::intersect(const Tag& a, const Tag& b) {
  // (*) is the identity of intersection.
  if (a.kind_ == Kind::kAll) return b;
  if (b.kind_ == Kind::kAll) return a;

  // Sets distribute: keep the non-empty member intersections.
  if (a.kind_ == Kind::kSet || b.kind_ == Kind::kSet) {
    const Tag& s = a.kind_ == Kind::kSet ? a : b;
    const Tag& other = a.kind_ == Kind::kSet ? b : a;
    std::vector<Tag> kept;
    for (const auto& member : s.elements_) {
      if (auto i = intersect(member, other)) kept.push_back(std::move(*i));
    }
    if (kept.empty()) return std::nullopt;
    if (kept.size() == 1) return kept[0];
    return Tag::set(std::move(kept));
  }

  if (a.kind_ == Kind::kAtom && b.kind_ == Kind::kAtom) {
    if (a.text_ == b.text_) return a;
    return std::nullopt;
  }
  if (a.kind_ == Kind::kPrefix && b.kind_ == Kind::kAtom) {
    if (util::starts_with(b.text_, a.text_)) return b;
    return std::nullopt;
  }
  if (a.kind_ == Kind::kAtom && b.kind_ == Kind::kPrefix) {
    return intersect(b, a);
  }
  if (a.kind_ == Kind::kPrefix && b.kind_ == Kind::kPrefix) {
    // The longer prefix is the more specific set.
    if (util::starts_with(a.text_, b.text_)) return a;
    if (util::starts_with(b.text_, a.text_)) return b;
    return std::nullopt;
  }
  if (a.kind_ == Kind::kList && b.kind_ == Kind::kList) {
    // Position-wise; the shorter list is the more general (RFC 2693:
    // "(ftp)" covers "(ftp /home)"). Extra elements of the longer list
    // survive into the intersection.
    const Tag& shorter = a.elements_.size() <= b.elements_.size() ? a : b;
    const Tag& longer = a.elements_.size() <= b.elements_.size() ? b : a;
    std::vector<Tag> out;
    out.reserve(longer.elements_.size());
    for (std::size_t i = 0; i < shorter.elements_.size(); ++i) {
      auto e = intersect(shorter.elements_[i], longer.elements_[i]);
      if (!e) return std::nullopt;
      out.push_back(std::move(*e));
    }
    for (std::size_t i = shorter.elements_.size();
         i < longer.elements_.size(); ++i) {
      out.push_back(longer.elements_[i]);
    }
    return Tag::list(std::move(out));
  }
  // atom vs list and other mismatches: disjoint.
  return std::nullopt;
}

bool Tag::covers(const Tag& a, const Tag& b) {
  auto i = intersect(a, b);
  return i.has_value() && *i == b;
}

}  // namespace mwsec::spki
