#include "spki/rbac_to_spki.hpp"

namespace mwsec::spki {

std::string role_identifier(const std::string& domain,
                            const std::string& role) {
  return domain + "." + role;
}

Tag permission_tag(const std::string& object_type,
                   const std::string& permission) {
  return Tag::list({Tag::atom("webcom"), Tag::atom(object_type),
                    Tag::atom(permission)});
}

mwsec::Result<CompiledSpkiPolicy> compile_policy_spki(
    const rbac::Policy& policy, const crypto::Identity& admin,
    translate::PrincipalDirectory& directory) {
  CompiledSpkiPolicy out;
  for (const auto& a : policy.assignments()) {
    NameCert cert;
    cert.issuer_key = admin.principal();
    cert.identifier = role_identifier(a.domain, a.role);
    cert.subject = Subject::of_key(directory.principal_of(a.user));
    if (auto s = cert.sign_with(admin); !s.ok()) return s.error();
    out.name_certs.push_back(std::move(cert));
  }
  for (const auto& g : policy.grants()) {
    AuthCert cert;
    cert.issuer_key = admin.principal();
    cert.subject = Subject::of_name(admin.principal(),
                                    {role_identifier(g.domain, g.role)});
    cert.delegate = true;  // members may re-delegate (Figure 7)
    cert.tag = permission_tag(g.object_type, g.permission);
    if (auto s = cert.sign_with(admin); !s.ok()) return s.error();
    out.auth_certs.push_back(std::move(cert));
  }
  return out;
}

mwsec::Status load(CertStore& store, const CompiledSpkiPolicy& compiled) {
  for (const auto& cert : compiled.name_certs) {
    if (auto s = store.add(cert); !s.ok()) return s;
  }
  for (const auto& cert : compiled.auth_certs) {
    if (auto s = store.add(cert); !s.ok()) return s;
  }
  return {};
}

bool spki_check(const CertStore& store, const std::string& admin_principal,
                const std::string& requester_principal,
                const std::string& object_type,
                const std::string& permission) {
  return store.authorize(admin_principal, requester_principal,
                         permission_tag(object_type, permission));
}

}  // namespace mwsec::spki
