#include "spki/certs.hpp"

namespace mwsec::spki {

std::string Subject::to_text() const {
  if (is_key()) return key;
  std::string out = "(name " + key;
  for (const auto& id : ids) out += " " + id;
  return out + ")";
}

std::string NameCert::canonical_body() const {
  return "name-cert\nissuer:" + issuer_key + "\nid:" + identifier +
         "\nsubject:" + subject.to_text() + "\n";
}

mwsec::Status NameCert::sign_with(const crypto::Identity& identity) {
  if (identity.principal() != issuer_key) {
    return Error::make("signer is not the issuer", "spki");
  }
  signature = identity.sign(canonical_body());
  return {};
}

mwsec::Status NameCert::verify() const {
  if (signature.empty()) return Error::make("name cert unsigned", "spki");
  if (!crypto::verify_message(issuer_key, canonical_body(), signature)) {
    return Error::make("name cert signature invalid", "spki");
  }
  return {};
}

std::string AuthCert::canonical_body() const {
  return "auth-cert\nissuer:" + issuer_key + "\nsubject:" +
         subject.to_text() + "\ndelegate:" + (delegate ? "1" : "0") +
         "\ntag:" + tag.to_text() + "\n";
}

mwsec::Status AuthCert::sign_with(const crypto::Identity& identity) {
  if (identity.principal() != issuer_key) {
    return Error::make("signer is not the issuer", "spki");
  }
  signature = identity.sign(canonical_body());
  return {};
}

mwsec::Status AuthCert::verify() const {
  if (signature.empty()) return Error::make("auth cert unsigned", "spki");
  if (!crypto::verify_message(issuer_key, canonical_body(), signature)) {
    return Error::make("auth cert signature invalid", "spki");
  }
  return {};
}

mwsec::Status CertStore::add(NameCert cert, bool trusted) {
  if (!trusted) {
    if (auto s = cert.verify(); !s.ok()) return s;
  }
  name_certs_.push_back(std::move(cert));
  return {};
}

mwsec::Status CertStore::add(AuthCert cert, bool trusted) {
  if (!trusted) {
    if (auto s = cert.verify(); !s.ok()) return s;
  }
  auth_certs_.push_back(std::move(cert));
  return {};
}

std::set<std::string> CertStore::resolve(
    const std::string& key, const std::vector<std::string>& ids) const {
  if (ids.empty()) return {key};

  // Resolve the first identifier, then the rest from each result —
  // SDSI's left-to-right linked local name spaces. Cycle safety: track
  // (key, id) pairs on the path.
  struct Resolver {
    const CertStore& store;
    std::set<std::pair<std::string, std::string>> visiting;

    std::set<std::string> one(const std::string& k, const std::string& id) {
      std::set<std::string> out;
      auto mark = std::make_pair(k, id);
      if (!visiting.insert(mark).second) return out;  // cycle
      for (const auto& cert : store.name_certs_) {
        if (cert.issuer_key != k || cert.identifier != id) continue;
        if (cert.subject.is_key()) {
          out.insert(cert.subject.key);
        } else {
          auto sub = many(cert.subject.key, cert.subject.ids);
          out.insert(sub.begin(), sub.end());
        }
      }
      visiting.erase(mark);
      return out;
    }

    std::set<std::string> many(const std::string& k,
                               const std::vector<std::string>& path) {
      std::set<std::string> current{k};
      for (const auto& id : path) {
        std::set<std::string> next;
        for (const auto& c : current) {
          auto step = one(c, id);
          next.insert(step.begin(), step.end());
        }
        current = std::move(next);
        if (current.empty()) break;
      }
      return current;
    }
  };
  Resolver r{*this, {}};
  return r.many(key, ids);
}

std::set<std::string> CertStore::resolve(const Subject& subject) const {
  return resolve(subject.key, subject.ids);
}

bool CertStore::search(
    const std::string& current, const std::string& requester, const Tag& need,
    std::set<std::pair<std::string, std::string>>& visiting) const {
  if (current == requester) return true;
  if (!visiting.insert({current, ""}).second) return false;

  for (const auto& cert : auth_certs_) {
    if (cert.issuer_key != current) continue;
    // The chain conveys the intersection of its tags; it covers `need`
    // iff every link's tag does.
    if (!Tag::covers(cert.tag, need)) continue;
    auto keys = resolve(cert.subject);
    if (keys.count(requester)) return true;  // terminal hop: no delegate bit
    if (!cert.delegate) continue;
    for (const auto& k : keys) {
      if (search(k, requester, need, visiting)) return true;
    }
  }
  return false;
}

bool CertStore::authorize(const std::string& root_key,
                          const std::string& requester, const Tag& tag) const {
  std::set<std::pair<std::string, std::string>> visiting;
  return search(root_key, requester, tag, visiting);
}

}  // namespace mwsec::spki
