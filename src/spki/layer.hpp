// SPKI/SDSI as an alternative L2 trust-management layer for the Figure 10
// stack — the paper: "we originally selected KeyNote ...; we have since
// used the SDSI/SPKI system in a similar way". Plugging this layer in
// instead of (or alongside) stack::TrustLayer swaps the TM technology
// without touching the rest of the stack.
#pragma once

#include "spki/rbac_to_spki.hpp"
#include "stack/layers.hpp"

namespace mwsec::spki {

class SpkiLayer final : public stack::Layer {
 public:
  SpkiLayer(const CertStore& store, std::string admin_principal)
      : store_(store), admin_principal_(std::move(admin_principal)) {}

  std::string name() const override { return "L2-spki"; }

  stack::Verdict decide(const stack::Request& request) const override {
    return spki_check(store_, admin_principal_, request.principal,
                      request.object_type, request.permission)
               ? stack::Verdict::permit("L2-spki")
               : stack::Verdict::deny("L2-spki");
  }

  std::string explain(const stack::Request& request,
                      const stack::Verdict& verdict) const override {
    std::string tag = "(tag " + request.object_type + " " +
                      request.permission + ")";
    if (verdict.decision == stack::Decision::kPermit) {
      return "certificate chain from admin reaches '" + request.principal +
             "' with " + tag;
    }
    return "no certificate chain from admin to '" + request.principal +
           "' authorises " + tag;
  }

 private:
  const CertStore& store_;
  std::string admin_principal_;
};

}  // namespace mwsec::spki
