// The message-transport abstraction (DESIGN.md §14): named endpoints own
// a mailbox; send() moves a serialised payload toward the destination's
// queue; receive() blocks with a deadline. The paper's Figure-3 deployment
// separates masters, clients, and replicas by an untrusted *real* network,
// so which substrate carries the messages is a deployment decision, not
// something the scheduler or sync layers may bake in — every consumer
// (sync::Authority/Replica, the WebCom master/client/gateway,
// keycom::Server) takes a `Transport&` and never names a backend.
//
// Two backends implement it:
//  * `net::Network` (network.hpp): the in-process bus — MPSC mailbox
//    queues, synchronous delivery, the original single-process substrate.
//  * `net::TcpTransport` (tcp_transport.hpp): standing TCP connections
//    between processes with length-prefixed binary framing (wire.hpp).
//
// The base class owns everything both backends share: the local endpoint
// registry (open/kill and the name→mailbox map), the partition set,
// fault-injection options and the RNG behind them, traffic Stats, wire-safe
// message-id minting, and the per-message "net.deliver" hop span. Backends
// implement only send() — how a message moves from here to the
// destination's mailbox.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace mwsec::net {

struct Message {
  std::string from;
  std::string to;
  std::string subject;  ///< message type tag, e.g. "task", "task-result"
  util::Bytes payload;
  /// Assigned by the transport on send. Wire-safe: the high 16 bits are
  /// the sending transport's `Options::node_id`, so ids minted by
  /// different processes never collide and duplicate-skip / trace joins
  /// keyed on them stay correct multi-process.
  std::uint64_t id = 0;
  /// Causal envelope: the sender's span context. When valid and tracing
  /// is on, the transport records a "net.deliver" hop span joined to it
  /// and rewrites this field to the hop's context before delivery, so the
  /// receiver's spans chain sender → net hop → receiver. The socket
  /// transport frames these 16 bytes after the subject (wire.hpp); on the
  /// in-process bus the struct member *is* the wire slot.
  obs::TraceContext ctx;
};

class Transport;

/// A mailbox bound to a name on a transport. Closed on destruction.
/// The queue is MPSC-safe: any number of concurrent senders, one (or
/// more) receivers, all under the endpoint's own lock.
class Endpoint {
 public:
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Blocking receive; std::nullopt on deadline expiry or endpoint close.
  std::optional<Message> receive(std::chrono::milliseconds timeout);
  /// Non-blocking receive.
  std::optional<Message> try_receive();
  /// Convenience: send from this endpoint. `ctx` (optional) is the
  /// sender's span context to propagate in the message envelope.
  mwsec::Status send(const std::string& to, const std::string& subject,
                     util::Bytes payload, obs::TraceContext ctx = {});

  std::size_t pending() const;
  /// Stop accepting and wake blocked receivers.
  void close();
  bool closed() const;

 private:
  friend class Transport;
  Endpoint(Transport* transport, std::string name)
      : transport_(transport), name_(std::move(name)) {}
  /// Enqueue one copy. `front` asks for reordered delivery (ahead of the
  /// queue); `*jumped` reports whether it actually overtook anything.
  /// Returns false if the endpoint closed (the copy is discarded) — the
  /// caller counts delivered per copy actually accepted.
  bool deliver(Message m, bool front, bool* jumped);

  Transport* transport_;
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

class Transport {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double drop_probability = 0.0;  ///< uniform message loss
    /// Deliver the message twice (same id) — duplicate delivery, the
    /// failure mode that makes at-least-once protocols require idempotent
    /// application (the sync layer's delta epochs, in particular).
    double duplicate_probability = 0.0;
    /// Deliver the message ahead of everything already queued at the
    /// destination instead of behind it. Only reorders against messages
    /// still in the queue (an empty queue leaves nothing to jump), which
    /// is exactly the burst-reordering a real network exhibits under load.
    double reorder_probability = 0.0;
    /// Message-id prefix for this transport instance: ids are composed as
    /// (node_id << 48) | sequence, so two processes (or two transports in
    /// one test) with distinct node ids never mint the same id. 0 — the
    /// default — reproduces the historical in-process id sequence.
    std::uint16_t node_id = 0;
  };

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;     // copies actually enqueued
    std::uint64_t dropped = 0;       // random loss
    std::uint64_t duplicated = 0;    // extra copies delivered
    std::uint64_t reordered = 0;     // jumped ahead of queued messages
    std::uint64_t partitioned = 0;   // blocked by partition
    std::uint64_t undeliverable = 0; // unknown/closed destination
    std::uint64_t backpressured = 0; // writer queue full (socket backends)
    std::uint64_t bytes = 0;
  };

  explicit Transport(Options options);
  virtual ~Transport();
  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Bind a new local endpoint; name must be unused on this transport.
  virtual mwsec::Result<std::shared_ptr<Endpoint>> open(
      const std::string& name);

  /// Deliver (or drop) a message. Errors on unknown/closed destination —
  /// synchronously where the backend can know (the bus always; a socket
  /// backend only for local destinations and missing routes).
  /// Safe for any number of concurrent senders.
  virtual mwsec::Status send(Message m) = 0;

  /// Sever / restore the (bidirectional) link between two endpoints.
  /// Enforced sender-side, so on a socket backend every participating
  /// process applies the same partition for both directions to block.
  virtual void set_partitioned(const std::string& a, const std::string& b,
                               bool partitioned);

  /// Take a local endpoint off the transport entirely (crash simulation).
  virtual void kill(const std::string& name);

  virtual Stats stats() const;

  const Options& options() const { return options_; }

  /// (node_id << 48) | sequence — the wire-safe message-id composition.
  static std::uint64_t compose_id(std::uint16_t node_id, std::uint64_t seq) {
    return (static_cast<std::uint64_t>(node_id) << 48) |
           (seq & 0xFFFFFFFFFFFFull);
  }

 protected:
  /// Counter twin of Stats: updated with relaxed atomics so concurrent
  /// senders never serialise on bookkeeping; stats() snapshots it.
  struct AtomicStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> partitioned{0};
    std::atomic<std::uint64_t> undeliverable{0};
    std::atomic<std::uint64_t> backpressured{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  /// Fault-injection decisions for one send. Off-path unless the matching
  /// probability is non-zero.
  bool roll(double probability);

  /// Next wire-safe message id for this transport.
  std::uint64_t next_message_id() {
    return compose_id(options_.node_id,
                      next_seq_.fetch_add(1, std::memory_order_relaxed));
  }

  /// Mint the per-message "net.deliver" hop span joined to the sender's
  /// context and rewrite the envelope to the hop's own context, so the
  /// receiver's spans nest under the hop. Inert (returns an inactive
  /// span) unless the message carries a context and tracing is on.
  static obs::Span mint_hop(Message& m);

  /// Local endpoint by name, nullptr when unknown. Takes the route lock
  /// shared.
  std::shared_ptr<Endpoint> local_endpoint(const std::string& name) const;

  /// Is the (a, b) link severed? Takes the route lock shared.
  bool is_partitioned(const std::string& a, const std::string& b) const;

  /// Enqueue one already-routed copy into a local mailbox with full
  /// delivered/duplicated/reordered accounting (both the instance Stats
  /// and the process-wide obs counters). `duplicate_copy` marks the extra
  /// copy of a duplicated send. Returns false if the endpoint refused
  /// (closed) — the caller decides how to account undeliverable.
  bool accept_local(const std::shared_ptr<Endpoint>& dest, Message m,
                    bool front, bool duplicate_copy);

  /// The shared local-delivery tail: roll drop/duplicate/reorder, look up
  /// the destination mailbox, and enqueue with accounting and hop-span
  /// status. The caller has already counted the send, minted the message
  /// id and hop span, and checked partitions. Errors on unknown/closed
  /// destinations exactly as the in-process bus always has.
  mwsec::Status send_local(Message m, obs::Span& hop);

  /// Count one sent message (Stats + obs counters).
  void count_sent(std::size_t payload_bytes);
  void count_dropped();
  void count_duplicated();
  void count_partitioned();
  void count_undeliverable();
  void count_backpressured();

  const Options options_;
  /// Routing state: read per send (shared), written by open/kill/
  /// set_partitioned (exclusive).
  mutable std::shared_mutex route_mu_;
  std::map<std::string, std::weak_ptr<Endpoint>> endpoints_;
  std::set<std::pair<std::string, std::string>> partitions_;
  /// The RNG is stateful; its lock is taken only when a fault probability
  /// asks for a roll (fault-injection runs, never the fast path).
  std::mutex rng_mu_;
  util::Rng rng_;
  AtomicStats stats_;
  std::atomic<std::uint64_t> next_seq_{1};
};

}  // namespace mwsec::net
