#include "net/transport.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mwsec::net {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

/// Process-wide counters mirroring Transport::Stats, so a metrics snapshot
/// shows traffic alongside the authorisation-pipeline counters. Shared by
/// every backend instance in the process.
struct NetMetrics {
  obs::Counter& sent;
  obs::Counter& delivered;
  obs::Counter& dropped;
  obs::Counter& duplicated;
  obs::Counter& reordered;
  obs::Counter& partitioned;
  obs::Counter& undeliverable;
  obs::Counter& backpressured;
  obs::Counter& bytes;

  static NetMetrics& get() {
    auto& r = obs::Registry::global();
    static NetMetrics m{
        r.counter("net.sent"),          r.counter("net.delivered"),
        r.counter("net.dropped"),       r.counter("net.duplicated"),
        r.counter("net.reordered"),     r.counter("net.partitioned"),
        r.counter("net.undeliverable"), r.counter("net.backpressured"),
        r.counter("net.bytes"),
    };
    return m;
  }
};

}  // namespace

Endpoint::~Endpoint() { close(); }

std::optional<Message> Endpoint::receive(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Endpoint::try_receive() {
  std::scoped_lock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

mwsec::Status Endpoint::send(const std::string& to, const std::string& subject,
                             util::Bytes payload, obs::TraceContext ctx) {
  Message m;
  m.from = name_;
  m.to = to;
  m.subject = subject;
  m.payload = std::move(payload);
  m.ctx = ctx;
  return transport_->send(std::move(m));
}

std::size_t Endpoint::pending() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void Endpoint::close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool Endpoint::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

bool Endpoint::deliver(Message m, bool front, bool* jumped) {
  std::scoped_lock lock(mu_);
  if (closed_) {
    if (jumped != nullptr) *jumped = false;
    return false;
  }
  const bool overtook = front && !queue_.empty();
  if (overtook) {
    queue_.push_front(std::move(m));
  } else {
    queue_.push_back(std::move(m));
  }
  if (jumped != nullptr) *jumped = overtook;
  cv_.notify_one();
  return true;
}

Transport::Transport(Options options)
    : options_(options), rng_(options.seed) {}

Transport::~Transport() = default;

mwsec::Result<std::shared_ptr<Endpoint>> Transport::open(
    const std::string& name) {
  std::unique_lock lock(route_mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && !it->second.expired()) {
    return Error::make("endpoint name already bound: " + name, "net");
  }
  std::shared_ptr<Endpoint> ep(new Endpoint(this, name));
  endpoints_[name] = ep;
  return ep;
}

void Transport::set_partitioned(const std::string& a, const std::string& b,
                                bool partitioned) {
  std::unique_lock lock(route_mu_);
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

void Transport::kill(const std::string& name) {
  std::shared_ptr<Endpoint> ep;
  {
    std::unique_lock lock(route_mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) return;
    ep = it->second.lock();
    endpoints_.erase(it);
  }
  if (ep) ep->close();
}

Transport::Stats Transport::stats() const {
  Stats out;
  out.sent = stats_.sent.load(kRelaxed);
  out.delivered = stats_.delivered.load(kRelaxed);
  out.dropped = stats_.dropped.load(kRelaxed);
  out.duplicated = stats_.duplicated.load(kRelaxed);
  out.reordered = stats_.reordered.load(kRelaxed);
  out.partitioned = stats_.partitioned.load(kRelaxed);
  out.undeliverable = stats_.undeliverable.load(kRelaxed);
  out.backpressured = stats_.backpressured.load(kRelaxed);
  out.bytes = stats_.bytes.load(kRelaxed);
  return out;
}

bool Transport::roll(double probability) {
  if (probability <= 0.0) return false;
  std::scoped_lock lock(rng_mu_);
  return rng_.chance(probability);
}

obs::Span Transport::mint_hop(Message& m) {
  obs::Span hop;
  if (m.ctx.valid()) {
    hop = obs::Tracer::global().join("net.deliver", m.ctx);
    if (hop.active()) {
      hop.set_attr("from", m.from);
      hop.set_attr("to", m.to);
      hop.set_attr("subject", m.subject);
      m.ctx = hop.context();
    }
  }
  return hop;
}

std::shared_ptr<Endpoint> Transport::local_endpoint(
    const std::string& name) const {
  std::shared_lock lock(route_mu_);
  auto it = endpoints_.find(name);
  return it != endpoints_.end() ? it->second.lock() : nullptr;
}

bool Transport::is_partitioned(const std::string& a,
                               const std::string& b) const {
  std::shared_lock lock(route_mu_);
  auto key = std::minmax(a, b);
  return partitions_.count({key.first, key.second}) != 0;
}

bool Transport::accept_local(const std::shared_ptr<Endpoint>& dest, Message m,
                             bool front, bool duplicate_copy) {
  auto& metrics = NetMetrics::get();
  bool jumped = false;
  if (!dest->deliver(std::move(m), front, &jumped)) return false;
  stats_.delivered.fetch_add(1, kRelaxed);
  metrics.delivered.inc();
  if (duplicate_copy) {
    stats_.duplicated.fetch_add(1, kRelaxed);
    metrics.duplicated.inc();
  }
  if (jumped) {
    stats_.reordered.fetch_add(1, kRelaxed);
    metrics.reordered.inc();
  }
  return true;
}

mwsec::Status Transport::send_local(Message m, obs::Span& hop) {
  std::shared_ptr<Endpoint> dest = local_endpoint(m.to);
  if (roll(options_.drop_probability)) {
    count_dropped();
    hop.set_status("dropped");
    return {};  // silently lost, as real networks do
  }
  if (dest == nullptr || dest->closed()) {
    count_undeliverable();
    hop.set_status("undeliverable");
    return Error::make(
        "send to '" + m.to + "' failed: " +
            (dest == nullptr ? "no such endpoint" : "endpoint closed"),
        "net");
  }
  const bool duplicate = roll(options_.duplicate_probability);
  const bool reorder = roll(options_.reorder_probability);
  Message copy;
  if (duplicate) copy = m;  // same id: a true wire-level duplicate

  // Delivered counts copies actually enqueued (a closed-endpoint race
  // discards the copy and counts undeliverable instead), so the invariant
  // delivered == sum of receivers' enqueues holds even with duplication.
  if (!accept_local(dest, std::move(m), reorder, /*duplicate_copy=*/false)) {
    count_undeliverable();
    hop.set_status("undeliverable");
    return Error::make("send to '" + m.to + "' failed: endpoint closed",
                       "net");
  }
  hop.set_status("delivered");
  if (duplicate) {
    accept_local(dest, std::move(copy), reorder, /*duplicate_copy=*/true);
  }
  return {};
}

void Transport::count_sent(std::size_t payload_bytes) {
  auto& metrics = NetMetrics::get();
  stats_.sent.fetch_add(1, kRelaxed);
  stats_.bytes.fetch_add(payload_bytes, kRelaxed);
  metrics.sent.inc();
  metrics.bytes.inc(payload_bytes);
}

void Transport::count_dropped() {
  stats_.dropped.fetch_add(1, kRelaxed);
  NetMetrics::get().dropped.inc();
}

void Transport::count_duplicated() {
  stats_.duplicated.fetch_add(1, kRelaxed);
  NetMetrics::get().duplicated.inc();
}

void Transport::count_partitioned() {
  stats_.partitioned.fetch_add(1, kRelaxed);
  NetMetrics::get().partitioned.inc();
}

void Transport::count_undeliverable() {
  stats_.undeliverable.fetch_add(1, kRelaxed);
  NetMetrics::get().undeliverable.inc();
}

void Transport::count_backpressured() {
  stats_.backpressured.fetch_add(1, kRelaxed);
  NetMetrics::get().backpressured.inc();
}

}  // namespace mwsec::net
