// The standing-TCP backend of `net::Transport` (DESIGN.md §14): the
// Figure-3 deployment for real — masters, clients, and replicas in
// separate processes, connected by sockets instead of the in-process bus.
// Modelled on the Secrecy comm-layer design (SNIPPETS.md): replace the
// single-cluster messaging substrate with standing TCP connections plus an
// orchestrator (src/orchestrate) that distributes peer addresses.
//
// One TcpTransport per process: it listens on one port, owns the local
// endpoint mailboxes (inherited from Transport), and routes every
// non-local endpoint name through a static routing table
// (`add_route(name, host, port)` — filled in by the orchestrator from its
// port plan). Message movement:
//
//  * send() to a *local* endpoint is the bus fast path — same fault
//    injection, same Stats, same synchronous unknown/closed errors.
//  * send() to a *routed* endpoint encodes one wire frame (wire.hpp) and
//    hands it to that peer's writer queue. The queue is bounded
//    (`writer_queue_limit`); a full queue blocks the sender until space
//    frees or `backpressure_timeout` expires (then the send fails and
//    `Stats.backpressured` counts it) — backpressure, not unbounded
//    buffering.
//  * each peer has one standing connection driven by a dedicated writer
//    thread: it connects lazily, reconnects with exponential backoff
//    (reconnect_initial → reconnect_max) whenever the connection drops,
//    and a frame is only popped from the queue after it was written in
//    full — a frame cut off mid-write is resent on the fresh connection
//    (the receiver's per-connection FrameAssembler discards the stub), so
//    delivery across reconnects is at-least-once, which the duplicate-
//    tolerant protocols above (sync epochs, scheduler task ids) absorb.
//  * a reader thread polls the listener and every inbound connection
//    (non-blocking sockets throughout), reassembles frames, and delivers
//    into local mailboxes.
//
// Fault-injection and failure semantics carry over from the bus:
// partitions are enforced sender-side (each process applies the same
// partition set, as the orchestrated rigs do), kill() closes a local
// endpoint so inbound frames for it count undeliverable, drop/duplicate/
// reorder rolls happen at the sender with the duplicate/reorder decisions
// carried in frame flags for the receiver to act on. Stats accounting is
// split at the wire: the sender counts sent/bytes/dropped/duplicated, the
// receiver counts delivered/reordered/undeliverable — summed over the
// transports of a deployment they obey the same invariants as one bus
// (the parameterized transport suite holds both backends to this).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "net/wire.hpp"

namespace mwsec::net {

struct TcpOptions {
  /// Fault injection, seed, and the message-id node prefix. Give every
  /// process a distinct `fault.node_id` (the orchestrator does) so ids
  /// stay unique deployment-wide.
  Transport::Options fault;
  /// Listen address. Port 0 binds an ephemeral port; read it back with
  /// port(). Numeric addresses only (no resolver) — loopback and
  /// orchestrated LAN rigs are the use case.
  std::string listen_host = "127.0.0.1";
  std::uint16_t listen_port = 0;
  /// Writer reconnect backoff: doubles from initial to max per attempt.
  std::chrono::milliseconds reconnect_initial{10};
  std::chrono::milliseconds reconnect_max{1000};
  /// Frames queued per peer before senders block (backpressure).
  std::size_t writer_queue_limit = 4096;
  /// How long a blocked sender waits for queue space before the send
  /// fails with a Status (and Stats.backpressured counts it).
  std::chrono::milliseconds backpressure_timeout{5000};
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpOptions options = {});
  ~TcpTransport() override;

  /// Bind, listen, and start the reader thread. Must be called (and have
  /// succeeded) before send() can reach remote peers.
  mwsec::Status start();
  /// Stop reader and writers, close the listener and every connection.
  /// Queued-but-unsent frames are discarded (the connection is gone —
  /// exactly a network that went dark). Local endpoints stay usable for
  /// local traffic until destruction.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  const std::string& host() const { return options_tcp_.listen_host; }
  /// The actually-bound port (resolves listen_port == 0).
  std::uint16_t port() const { return port_; }

  /// Route a remote endpoint name to the peer process listening at
  /// host:port. Last route wins; local endpoints always take precedence.
  void add_route(const std::string& endpoint_name, const std::string& host,
                 std::uint16_t port);

  mwsec::Status send(Message m) override;

  /// Wire-level counters, for tests and the bench report.
  struct TcpStats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t connects = 0;    ///< successful outbound connects
    std::uint64_t reconnects = 0;  ///< connects after a standing conn broke
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t decode_errors = 0;
  };
  TcpStats tcp_stats() const;

 private:
  /// One standing outbound connection: a bounded frame queue drained by a
  /// dedicated writer thread that owns the socket and its reconnects.
  struct Peer {
    std::string host;
    std::uint16_t port = 0;
    std::mutex mu;
    std::condition_variable cv;        ///< queue became non-empty / stop
    std::condition_variable space_cv;  ///< queue dropped below the limit
    std::deque<util::Bytes> queue;
    bool stopping = false;
    std::thread writer;
  };

  /// One inbound connection, owned by the reader thread.
  struct Conn {
    int fd = -1;
    wire::FrameAssembler assembler;
  };

  void reader_loop();
  void writer_loop(Peer* peer);
  /// Deliver one reassembled frame body into a local mailbox.
  void handle_frame(const util::Bytes& body);
  /// Block-with-timeout enqueue onto the peer's writer queue.
  mwsec::Status enqueue(Peer& peer, util::Bytes frame, const std::string& to);
  /// The peer for a routed endpoint name (starts its writer lazily);
  /// nullptr when no route exists.
  Peer* peer_for_route(const std::string& endpoint_name);

  TcpOptions options_tcp_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread reader_;

  mutable std::mutex peers_mu_;
  std::map<std::string, std::unique_ptr<Peer>> peers_;  ///< "host:port" → peer
  std::map<std::string, std::string> routes_;  ///< endpoint → "host:port"

  struct AtomicTcpStats {
    std::atomic<std::uint64_t> connections_accepted{0};
    std::atomic<std::uint64_t> connects{0};
    std::atomic<std::uint64_t> reconnects{0};
    std::atomic<std::uint64_t> frames_sent{0};
    std::atomic<std::uint64_t> frames_received{0};
    std::atomic<std::uint64_t> decode_errors{0};
  };
  AtomicTcpStats tcp_stats_;
};

}  // namespace mwsec::net
