// Binary framing for the socket transport (DESIGN.md §14). One message is
// one length-prefixed frame on a standing TCP connection:
//
//   u32 body_length                  (little-endian, excludes itself)
//   body:
//     str  from                      (u32 length + bytes)
//     str  to
//     str  subject
//     u64  ctx.trace_id  ┐ the 16-byte obs::TraceContext, framed right
//     u64  ctx.span_id   ┘ after the subject — the causal envelope slot
//     u64  id                        (wire-safe: node_id << 48 | seq)
//     u8   flags                     (duplicate-copy / reorder markers)
//     blob payload                   (u32 length + bytes)
//
// The decoder is defensive — this is the "untrusted network" boundary of
// Figure 3. A body that does not parse exactly (truncated field, trailing
// garbage) is rejected with a Status; a length prefix over kMaxFrameBytes
// is rejected before any allocation, so a hostile peer cannot make the
// reader reserve gigabytes. A garbage trace context cannot be
// distinguished from a real one structurally, so the rule is the same as
// everywhere else: a context with a zero half is invalid and falls back
// to untraced passthrough (TraceContext::valid()).
#pragma once

#include <cstdint>
#include <optional>

#include "net/transport.hpp"
#include "util/byte_buffer.hpp"
#include "util/result.hpp"

namespace mwsec::net::wire {

/// Upper bound on one frame body; larger length prefixes are a protocol
/// violation and the connection carrying them is dropped.
inline constexpr std::uint32_t kMaxFrameBytes = 16u << 20;

/// Frame flags: fault-injection decisions made by the sender that the
/// receiver must act on (the receiver owns the destination mailbox).
inline constexpr std::uint8_t kFlagDuplicateCopy = 0x1;
inline constexpr std::uint8_t kFlagReorder = 0x2;

/// Encode one message as a complete frame (length prefix included).
util::Bytes encode_frame(const Message& m, std::uint8_t flags = 0);

struct DecodedFrame {
  Message message;
  std::uint8_t flags = 0;
};

/// Decode one frame body (the bytes after the length prefix). Rejects
/// truncated and over-long bodies with a Status.
mwsec::Result<DecodedFrame> decode_frame_body(const util::Bytes& body);

/// Incremental frame reassembly over a byte stream: feed whatever the
/// socket produced, pop complete frame bodies in order. One assembler per
/// connection — a reconnect starts a fresh stream and a fresh assembler,
/// which is what discards a frame cut off by connection loss.
class FrameAssembler {
 public:
  /// Consume `n` raw stream bytes. Fails (and poisons the assembler) on
  /// an oversized length prefix; the connection should be dropped.
  mwsec::Status feed(const std::uint8_t* data, std::size_t n);

  /// Next complete frame body, oldest first; nullopt when none buffered.
  std::optional<util::Bytes> next();

  bool poisoned() const { return poisoned_; }

 private:
  util::Bytes buffer_;
  std::deque<util::Bytes> frames_;
  bool poisoned_ = false;
};

}  // namespace mwsec::net::wire
