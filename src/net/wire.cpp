#include "net/wire.hpp"

#include <cstring>

namespace mwsec::net::wire {

util::Bytes encode_frame(const Message& m, std::uint8_t flags) {
  util::ByteWriter body;
  body.str(m.from);
  body.str(m.to);
  body.str(m.subject);
  body.u64(m.ctx.trace_id);
  body.u64(m.ctx.span_id);
  body.u64(m.id);
  body.u8(flags);
  body.blob(m.payload);

  util::ByteWriter frame;
  frame.u32(static_cast<std::uint32_t>(body.bytes().size()));
  frame.raw(body.bytes());
  return frame.take();
}

mwsec::Result<DecodedFrame> decode_frame_body(const util::Bytes& body) {
  if (body.size() > kMaxFrameBytes) {
    return Error::make("frame body exceeds kMaxFrameBytes", "net");
  }
  util::ByteReader r(body);
  DecodedFrame out;
  auto from = r.str();
  if (!from.ok()) return Error::make("frame truncated in 'from'", "net");
  out.message.from = std::move(from).take();
  auto to = r.str();
  if (!to.ok()) return Error::make("frame truncated in 'to'", "net");
  out.message.to = std::move(to).take();
  auto subject = r.str();
  if (!subject.ok()) return Error::make("frame truncated in 'subject'", "net");
  out.message.subject = std::move(subject).take();
  auto trace_id = r.u64();
  auto span_id = trace_id.ok() ? r.u64() : trace_id;
  if (!trace_id.ok() || !span_id.ok()) {
    return Error::make("frame truncated in trace context", "net");
  }
  out.message.ctx = obs::TraceContext{*trace_id, *span_id};
  auto id = r.u64();
  if (!id.ok()) return Error::make("frame truncated in message id", "net");
  out.message.id = *id;
  auto flags = r.u8();
  if (!flags.ok()) return Error::make("frame truncated in flags", "net");
  out.flags = *flags;
  auto payload = r.blob();
  if (!payload.ok()) return Error::make("frame truncated in payload", "net");
  out.message.payload = std::move(payload).take();
  if (!r.exhausted()) {
    return Error::make("frame carries trailing garbage", "net");
  }
  return out;
}

mwsec::Status FrameAssembler::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) {
    return Error::make("frame stream poisoned by earlier violation", "net");
  }
  buffer_.insert(buffer_.end(), data, data + n);
  for (;;) {
    if (buffer_.size() < 4) return {};
    std::uint32_t len = 0;
    std::memcpy(&len, buffer_.data(), 4);  // little-endian hosts only,
                                           // matching util::ByteWriter
    if (len > kMaxFrameBytes) {
      poisoned_ = true;
      return Error::make("frame length prefix " + std::to_string(len) +
                             " exceeds limit",
                         "net");
    }
    if (buffer_.size() < 4u + len) return {};
    frames_.emplace_back(buffer_.begin() + 4, buffer_.begin() + 4 + len);
    buffer_.erase(buffer_.begin(), buffer_.begin() + 4 + len);
  }
}

std::optional<util::Bytes> FrameAssembler::next() {
  if (frames_.empty()) return std::nullopt;
  util::Bytes f = std::move(frames_.front());
  frames_.pop_front();
  return f;
}

}  // namespace mwsec::net::wire
