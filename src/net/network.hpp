// In-process message network (DESIGN.md §2: the stand-in for IIOP/DCOM
// RPC and WebCom's master/client links).
//
// MPI-style semantics, per the hpc-parallel guides: named endpoints own a
// mailbox; send() transfers ownership of a serialised payload into the
// destination's queue; receive() blocks with a deadline. Failure injection
// — message drop probability and explicit link partitions — models the
// "untrusted network" of Figure 3 and drives the scheduler's
// fault-tolerance tests.
//
// Concurrency (DESIGN.md §12): each mailbox is an MPSC queue under its own
// endpoint mutex, so concurrent senders to *different* endpoints share
// nothing and concurrent senders to the *same* endpoint serialise only on
// that endpoint's lock. The network-wide state splits by mutation rate:
// routing (the name→endpoint map) and partitions are read-mostly behind a
// shared_mutex (senders take it shared), traffic statistics are relaxed
// atomics, and the fault-injection RNG — only consulted when a fault
// probability is non-zero — has its own lock. The worker-pool WebCom
// master dispatches from many threads through one Network; none of them
// contend on a global lock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>

#include "obs/trace.hpp"
#include "util/byte_buffer.hpp"
#include "util/rng.hpp"

namespace mwsec::net {

struct Message {
  std::string from;
  std::string to;
  std::string subject;  ///< message type tag, e.g. "task", "task-result"
  util::Bytes payload;
  std::uint64_t id = 0;  ///< assigned by the network on send
  /// Causal envelope: the sender's span context. When valid and tracing
  /// is on, the network records a "net.deliver" hop span joined to it and
  /// rewrites this field to the hop's context before delivery, so the
  /// receiver's spans chain sender → net hop → receiver. (A socket
  /// transport would frame these 16 bytes after the subject; here the
  /// struct member *is* the wire slot.)
  obs::TraceContext ctx;
};

class Network;

/// A mailbox bound to a name on the network. Closed on destruction.
/// The queue is MPSC-safe: any number of concurrent senders, one (or
/// more) receivers, all under the endpoint's own lock.
class Endpoint {
 public:
  ~Endpoint();
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  const std::string& name() const { return name_; }

  /// Blocking receive; std::nullopt on deadline expiry or endpoint close.
  std::optional<Message> receive(std::chrono::milliseconds timeout);
  /// Non-blocking receive.
  std::optional<Message> try_receive();
  /// Convenience: send from this endpoint. `ctx` (optional) is the
  /// sender's span context to propagate in the message envelope.
  mwsec::Status send(const std::string& to, const std::string& subject,
                     util::Bytes payload, obs::TraceContext ctx = {});

  std::size_t pending() const;
  /// Stop accepting and wake blocked receivers.
  void close();
  bool closed() const;

 private:
  friend class Network;
  Endpoint(Network* network, std::string name)
      : network_(network), name_(std::move(name)) {}
  /// Enqueue one copy. `front` asks for reordered delivery (ahead of the
  /// queue); `*jumped` reports whether it actually overtook anything.
  /// Returns false if the endpoint closed (the copy is discarded) — the
  /// caller counts delivered per copy actually accepted.
  bool deliver(Message m, bool front, bool* jumped);

  Network* network_;
  std::string name_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
  bool closed_ = false;
};

class Network {
 public:
  struct Options {
    std::uint64_t seed = 1;
    double drop_probability = 0.0;  ///< uniform message loss
    /// Deliver the message twice (same id) — duplicate delivery, the
    /// failure mode that makes at-least-once protocols require idempotent
    /// application (the sync layer's delta epochs, in particular).
    double duplicate_probability = 0.0;
    /// Deliver the message ahead of everything already queued at the
    /// destination instead of behind it. Only reorders against messages
    /// still in the queue (an empty queue leaves nothing to jump), which
    /// is exactly the burst-reordering a real network exhibits under load.
    double reorder_probability = 0.0;
  };
  Network() : Network(Options{}) {}
  explicit Network(Options options);

  /// Bind a new endpoint; name must be unused.
  mwsec::Result<std::shared_ptr<Endpoint>> open(const std::string& name);

  /// Deliver (or drop) a message. Errors on unknown/closed destination.
  /// Safe for any number of concurrent senders.
  mwsec::Status send(Message m);

  /// Sever / restore the (bidirectional) link between two endpoints.
  void set_partitioned(const std::string& a, const std::string& b,
                       bool partitioned);
  /// Take an endpoint off the network entirely (crash simulation).
  void kill(const std::string& name);

  struct Stats {
    std::uint64_t sent = 0;
    std::uint64_t delivered = 0;     // copies actually enqueued
    std::uint64_t dropped = 0;       // random loss
    std::uint64_t duplicated = 0;    // extra copies delivered
    std::uint64_t reordered = 0;     // jumped ahead of queued messages
    std::uint64_t partitioned = 0;   // blocked by partition
    std::uint64_t undeliverable = 0; // unknown/closed destination
    std::uint64_t bytes = 0;
  };
  Stats stats() const;

 private:
  /// Counter twin of Stats: updated with relaxed atomics so concurrent
  /// senders never serialise on bookkeeping; stats() snapshots it.
  struct AtomicStats {
    std::atomic<std::uint64_t> sent{0};
    std::atomic<std::uint64_t> delivered{0};
    std::atomic<std::uint64_t> dropped{0};
    std::atomic<std::uint64_t> duplicated{0};
    std::atomic<std::uint64_t> reordered{0};
    std::atomic<std::uint64_t> partitioned{0};
    std::atomic<std::uint64_t> undeliverable{0};
    std::atomic<std::uint64_t> bytes{0};
  };

  /// Fault-injection decisions for one send. Off-path unless the matching
  /// probability is non-zero.
  bool roll(double probability);

  const Options options_;
  /// Routing state: read per send (shared), written by open/kill/
  /// set_partitioned (exclusive).
  mutable std::shared_mutex route_mu_;
  std::map<std::string, std::weak_ptr<Endpoint>> endpoints_;
  std::set<std::pair<std::string, std::string>> partitions_;
  /// The RNG is stateful; its lock is taken only when a fault probability
  /// asks for a roll (fault-injection runs, never the fast path).
  std::mutex rng_mu_;
  util::Rng rng_;
  AtomicStats stats_;
  std::atomic<std::uint64_t> next_id_{1};
};

}  // namespace mwsec::net
