// The in-process bus backend of `net::Transport` (DESIGN.md §2, §14: the
// stand-in for IIOP/DCOM RPC and WebCom's master/client links when every
// party lives in one process).
//
// MPI-style semantics, per the hpc-parallel guides: named endpoints own a
// mailbox; send() transfers ownership of a serialised payload into the
// destination's queue; receive() blocks with a deadline. Failure injection
// — message drop probability and explicit link partitions — models the
// "untrusted network" of Figure 3 and drives the scheduler's
// fault-tolerance tests.
//
// Concurrency (DESIGN.md §12): each mailbox is an MPSC queue under its own
// endpoint mutex, so concurrent senders to *different* endpoints share
// nothing and concurrent senders to the *same* endpoint serialise only on
// that endpoint's lock. The network-wide state splits by mutation rate:
// routing (the name→endpoint map) and partitions are read-mostly behind a
// shared_mutex (senders take it shared), traffic statistics are relaxed
// atomics, and the fault-injection RNG — only consulted when a fault
// probability is non-zero — has its own lock. The worker-pool WebCom
// master dispatches from many threads through one Network; none of them
// contend on a global lock.
#pragma once

#include "net/transport.hpp"

namespace mwsec::net {

class Network final : public Transport {
 public:
  using Options = Transport::Options;
  using Stats = Transport::Stats;

  Network() : Network(Options{}) {}
  explicit Network(Options options) : Transport(options) {}

  /// Deliver (or drop) a message. Errors on unknown/closed destination.
  /// Safe for any number of concurrent senders.
  mwsec::Status send(Message m) override;
};

}  // namespace mwsec::net
