#include "net/tcp_transport.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "util/logging.hpp"

namespace mwsec::net {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

bool set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

std::string peer_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

/// Numeric-address sockaddr; false when `host` is not a dotted quad.
bool make_addr(const std::string& host, std::uint16_t port,
               sockaddr_in* addr) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  return ::inet_pton(AF_INET, host.c_str(), &addr->sin_addr) == 1;
}

}  // namespace

TcpTransport::TcpTransport(TcpOptions options)
    : Transport(options.fault), options_tcp_(std::move(options)) {}

TcpTransport::~TcpTransport() { stop(); }

mwsec::Status TcpTransport::start() {
  if (running()) return {};
  sockaddr_in addr{};
  if (!make_addr(options_tcp_.listen_host, options_tcp_.listen_port, &addr)) {
    return Error::make("tcp: bad listen address " + options_tcp_.listen_host,
                       "net");
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error::make("tcp: socket() failed", "net");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Error::make("tcp: bind to " + options_tcp_.listen_host + ":" +
                           std::to_string(options_tcp_.listen_port) +
                           " failed: " + std::strerror(errno),
                       "net");
  }
  if (::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    ::close(fd);
    return Error::make("tcp: listen failed", "net");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  running_.store(true, std::memory_order_release);
  reader_ = std::thread([this] { reader_loop(); });
  return {};
}

void TcpTransport::stop() {
  if (!running_.exchange(false)) return;
  // Writers first: wake queue waits and blocked (backpressured) senders.
  std::vector<Peer*> peers;
  {
    std::scoped_lock lock(peers_mu_);
    for (auto& [key, peer] : peers_) peers.push_back(peer.get());
  }
  for (Peer* p : peers) {
    {
      std::scoped_lock lock(p->mu);
      p->stopping = true;
    }
    p->cv.notify_all();
    p->space_cv.notify_all();
  }
  for (Peer* p : peers) {
    if (p->writer.joinable()) p->writer.join();
  }
  if (reader_.joinable()) reader_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TcpTransport::add_route(const std::string& endpoint_name,
                             const std::string& host, std::uint16_t port) {
  std::scoped_lock lock(peers_mu_);
  routes_[endpoint_name] = peer_key(host, port);
}

TcpTransport::Peer* TcpTransport::peer_for_route(
    const std::string& endpoint_name) {
  std::scoped_lock lock(peers_mu_);
  auto route = routes_.find(endpoint_name);
  if (route == routes_.end()) return nullptr;
  auto it = peers_.find(route->second);
  if (it == peers_.end()) {
    // stop() flips running_ before collecting peers under this lock, so
    // refusing here guarantees every created writer gets joined.
    if (!running()) return nullptr;
    auto peer = std::make_unique<Peer>();
    const auto colon = route->second.rfind(':');
    peer->host = route->second.substr(0, colon);
    peer->port = static_cast<std::uint16_t>(
        std::stoul(route->second.substr(colon + 1)));
    Peer* raw = peer.get();
    raw->writer = std::thread([this, raw] { writer_loop(raw); });
    it = peers_.emplace(route->second, std::move(peer)).first;
  }
  return it->second.get();
}

mwsec::Status TcpTransport::send(Message m) {
  count_sent(m.payload.size());
  m.id = next_message_id();
  obs::Span hop = mint_hop(m);

  // Partitions are enforced sender-side, exactly as on the bus; an
  // orchestrated deployment applies the same partition set in every
  // participating process so both directions block.
  if (is_partitioned(m.from, m.to)) {
    count_partitioned();
    hop.set_status("partitioned");
    return Error::make("send to '" + m.to + "' failed: link partitioned (" +
                           m.from + " <-> " + m.to + ")",
                       "net");
  }

  // Local destinations take the bus fast path: synchronous delivery,
  // synchronous unknown/closed errors, identical fault injection.
  if (local_endpoint(m.to) != nullptr) {
    return send_local(std::move(m), hop);
  }

  if (!running()) {
    count_undeliverable();
    hop.set_status("undeliverable");
    return Error::make("send to '" + m.to + "' failed: transport stopped",
                       "net");
  }
  Peer* peer = peer_for_route(m.to);
  if (peer == nullptr) {
    count_undeliverable();
    hop.set_status("undeliverable");
    return Error::make("send to '" + m.to + "' failed: no such endpoint " +
                           "(not local, no route)",
                       "net");
  }

  // Sender-side fault rolls; the receiver owns the destination mailbox,
  // so the duplicate/reorder decisions travel in the frame flags.
  if (roll(options_.drop_probability)) {
    count_dropped();
    hop.set_status("dropped");
    return {};
  }
  const bool duplicate = roll(options_.duplicate_probability);
  std::uint8_t flags = 0;
  if (roll(options_.reorder_probability)) flags |= wire::kFlagReorder;

  auto status = enqueue(*peer, wire::encode_frame(m, flags), m.to);
  if (!status.ok()) {
    hop.set_status("backpressured");
    return status;
  }
  if (duplicate &&
      enqueue(*peer, wire::encode_frame(m, flags | wire::kFlagDuplicateCopy),
              m.to)
          .ok()) {
    // Same id, same payload: a true wire-level duplicate. Counted at the
    // sender (who decided to duplicate — and only if the copy actually
    // made the queue); the receiver counts both copies delivered but does
    // NOT count duplicated, keeping the deployment-wide books balanced.
    count_duplicated();
  }
  hop.set_status("enqueued");
  return {};
}

mwsec::Status TcpTransport::enqueue(Peer& peer, util::Bytes frame,
                                    const std::string& to) {
  std::unique_lock lock(peer.mu);
  if (!peer.space_cv.wait_for(lock, options_tcp_.backpressure_timeout, [&] {
        return peer.stopping ||
               peer.queue.size() < options_tcp_.writer_queue_limit;
      })) {
    count_backpressured();
    return Error::make("send to '" + to + "' failed: writer queue full (" +
                           std::to_string(options_tcp_.writer_queue_limit) +
                           " frames) — backpressure timeout",
                       "net");
  }
  if (peer.stopping) {
    count_undeliverable();
    return Error::make("send to '" + to + "' failed: transport stopped",
                       "net");
  }
  peer.queue.push_back(std::move(frame));
  lock.unlock();
  peer.cv.notify_one();
  return {};
}

void TcpTransport::writer_loop(Peer* peer) {
  int fd = -1;
  auto backoff = options_tcp_.reconnect_initial;
  bool ever_connected = false;

  auto close_conn = [&] {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  };

  // Attempt one non-blocking connect, waiting up to `backoff` for the
  // handshake. Returns a connected fd or -1.
  auto try_connect = [&]() -> int {
    sockaddr_in addr{};
    if (!make_addr(peer->host, peer->port, &addr)) return -1;
    int s = ::socket(AF_INET, SOCK_STREAM, 0);
    if (s < 0 || !set_nonblocking(s)) {
      if (s >= 0) ::close(s);
      return -1;
    }
    int rc = ::connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    if (rc != 0 && errno != EINPROGRESS) {
      ::close(s);
      return -1;
    }
    if (rc != 0) {
      pollfd pfd{s, POLLOUT, 0};
      const int timeout_ms =
          static_cast<int>(std::min<std::int64_t>(backoff.count(), 200));
      if (::poll(&pfd, 1, timeout_ms) <= 0) {
        ::close(s);
        return -1;
      }
      int err = 0;
      socklen_t len = sizeof(err);
      ::getsockopt(s, SOL_SOCKET, SO_ERROR, &err, &len);
      if (err != 0) {
        ::close(s);
        return -1;
      }
    }
    set_nodelay(s);
    return s;
  };

  for (;;) {
    // Wait for work (or shutdown).
    {
      std::unique_lock lock(peer->mu);
      peer->cv.wait(lock,
                    [&] { return peer->stopping || !peer->queue.empty(); });
      if (peer->stopping) break;
    }

    // A standing connection may have died while idle (peer FIN/RST
    // arrives between writes, but the kernel would still accept one more
    // send into the dead socket and the frame would vanish). Our frames
    // flow one way, so anything readable on the write side means EOF or
    // error: probe before committing a frame.
    if (fd >= 0) {
      std::uint8_t probe = 0;
      ssize_t pn = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (pn == 0 || (pn < 0 && errno != EAGAIN && errno != EWOULDBLOCK)) {
        close_conn();
      }
    }

    // Ensure a standing connection, reconnecting with exponential
    // backoff. The sleep waits on the cv so stop() interrupts it.
    while (fd < 0) {
      fd = try_connect();
      if (fd >= 0) {
        tcp_stats_.connects.fetch_add(1, kRelaxed);
        if (ever_connected) tcp_stats_.reconnects.fetch_add(1, kRelaxed);
        ever_connected = true;
        backoff = options_tcp_.reconnect_initial;
        break;
      }
      std::unique_lock lock(peer->mu);
      if (peer->stopping) return;
      peer->cv.wait_for(lock, backoff, [&] { return peer->stopping; });
      if (peer->stopping) return;
      backoff = std::min(backoff * 2, options_tcp_.reconnect_max);
    }

    // Write the frame at the queue front; pop only after a full write so
    // a frame cut off by connection loss is resent on the new stream.
    util::Bytes frame;
    {
      std::scoped_lock lock(peer->mu);
      if (peer->queue.empty()) continue;
      frame = peer->queue.front();
    }
    std::size_t written = 0;
    bool failed = false;
    while (written < frame.size()) {
      ssize_t n = ::send(fd, frame.data() + written, frame.size() - written,
                         MSG_NOSIGNAL);
      if (n > 0) {
        written += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 50);
        {
          std::scoped_lock lock(peer->mu);
          if (peer->stopping) return;
        }
        continue;
      }
      failed = true;
      break;
    }
    if (failed) {
      close_conn();
      continue;  // frame stays queued; reconnect and resend
    }
    tcp_stats_.frames_sent.fetch_add(1, kRelaxed);
    {
      std::scoped_lock lock(peer->mu);
      if (!peer->queue.empty()) peer->queue.pop_front();
    }
    peer->space_cv.notify_one();
  }
  close_conn();
}

void TcpTransport::reader_loop() {
  std::vector<Conn> conns;
  std::vector<pollfd> pfds;
  std::vector<std::uint8_t> buf(64 * 1024);

  while (running()) {
    pfds.clear();
    pfds.push_back({listen_fd_, POLLIN, 0});
    for (const Conn& c : conns) pfds.push_back({c.fd, POLLIN, 0});
    // Short timeout: the loop doubles as the shutdown poll.
    if (::poll(pfds.data(), pfds.size(), 20) < 0 && errno != EINTR) break;

    if ((pfds[0].revents & POLLIN) != 0) {
      for (;;) {
        int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) break;
        if (!set_nonblocking(fd)) {
          ::close(fd);
          continue;
        }
        set_nodelay(fd);
        tcp_stats_.connections_accepted.fetch_add(1, kRelaxed);
        conns.push_back(Conn{fd, {}});
      }
    }

    // pfds[pi] ↔ conns[i]: pi always advances, i only when the conn is
    // kept (erase shifts the rest down). Conns accepted above have no
    // pfd entry yet — the `pi` bound leaves them for the next round.
    std::size_t i = 0;
    for (std::size_t pi = 1; pi < pfds.size(); ++pi) {
      Conn& c = conns[i];
      const short revents = pfds[pi].revents;
      bool drop = (revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
      if (!drop && (revents & POLLIN) != 0) {
        for (;;) {
          ssize_t n = ::recv(c.fd, buf.data(), buf.size(), 0);
          if (n > 0) {
            if (!c.assembler.feed(buf.data(), static_cast<std::size_t>(n))
                     .ok()) {
              // Oversized length prefix: protocol violation, drop the
              // connection (the sender reconnects with a fresh stream).
              tcp_stats_.decode_errors.fetch_add(1, kRelaxed);
              drop = true;
              break;
            }
            while (auto body = c.assembler.next()) handle_frame(*body);
            continue;
          }
          if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          drop = true;  // EOF or hard error
          break;
        }
      }
      if (drop) {
        ::close(c.fd);
        conns.erase(conns.begin() + static_cast<std::ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (Conn& c : conns) ::close(c.fd);
}

void TcpTransport::handle_frame(const util::Bytes& body) {
  auto decoded = wire::decode_frame_body(body);
  if (!decoded.ok()) {
    // Sent but never deliverable: the malformed frame is dead on arrival.
    tcp_stats_.decode_errors.fetch_add(1, kRelaxed);
    count_undeliverable();
    MWSEC_LOG(kWarn, "net") << "tcp: dropping malformed frame: "
                            << decoded.error().message;
    return;
  }
  tcp_stats_.frames_received.fetch_add(1, kRelaxed);
  Message m = std::move(decoded.value().message);
  const std::uint8_t flags = decoded.value().flags;
  std::shared_ptr<Endpoint> dest = local_endpoint(m.to);
  if (dest == nullptr || dest->closed()) {
    count_undeliverable();
    return;
  }
  // duplicate_copy=false even for flagged copies: the *sender* counted
  // the duplication; the receiver only counts the deliveries.
  if (!accept_local(dest, std::move(m), (flags & wire::kFlagReorder) != 0,
                    /*duplicate_copy=*/false)) {
    count_undeliverable();
  }
}

TcpTransport::TcpStats TcpTransport::tcp_stats() const {
  TcpStats out;
  out.connections_accepted = tcp_stats_.connections_accepted.load(kRelaxed);
  out.connects = tcp_stats_.connects.load(kRelaxed);
  out.reconnects = tcp_stats_.reconnects.load(kRelaxed);
  out.frames_sent = tcp_stats_.frames_sent.load(kRelaxed);
  out.frames_received = tcp_stats_.frames_received.load(kRelaxed);
  out.decode_errors = tcp_stats_.decode_errors.load(kRelaxed);
  return out;
}

}  // namespace mwsec::net
