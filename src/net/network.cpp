#include "net/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace mwsec::net {

namespace {

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

/// Process-wide counters mirroring Network::Stats, so a metrics snapshot
/// shows traffic alongside the authorisation-pipeline counters.
struct NetMetrics {
  obs::Counter& sent;
  obs::Counter& delivered;
  obs::Counter& dropped;
  obs::Counter& duplicated;
  obs::Counter& reordered;
  obs::Counter& partitioned;
  obs::Counter& undeliverable;
  obs::Counter& bytes;

  static NetMetrics& get() {
    auto& r = obs::Registry::global();
    static NetMetrics m{
        r.counter("net.sent"),          r.counter("net.delivered"),
        r.counter("net.dropped"),       r.counter("net.duplicated"),
        r.counter("net.reordered"),     r.counter("net.partitioned"),
        r.counter("net.undeliverable"), r.counter("net.bytes"),
    };
    return m;
  }
};

}  // namespace

Endpoint::~Endpoint() { close(); }

std::optional<Message> Endpoint::receive(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Endpoint::try_receive() {
  std::scoped_lock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

mwsec::Status Endpoint::send(const std::string& to, const std::string& subject,
                             util::Bytes payload, obs::TraceContext ctx) {
  Message m;
  m.from = name_;
  m.to = to;
  m.subject = subject;
  m.payload = std::move(payload);
  m.ctx = ctx;
  return network_->send(std::move(m));
}

std::size_t Endpoint::pending() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void Endpoint::close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool Endpoint::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

bool Endpoint::deliver(Message m, bool front, bool* jumped) {
  std::scoped_lock lock(mu_);
  if (closed_) {
    if (jumped != nullptr) *jumped = false;
    return false;
  }
  const bool overtook = front && !queue_.empty();
  if (overtook) {
    queue_.push_front(std::move(m));
  } else {
    queue_.push_back(std::move(m));
  }
  if (jumped != nullptr) *jumped = overtook;
  cv_.notify_one();
  return true;
}

Network::Network(Options options) : options_(options), rng_(options.seed) {}

mwsec::Result<std::shared_ptr<Endpoint>> Network::open(
    const std::string& name) {
  std::unique_lock lock(route_mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && !it->second.expired()) {
    return Error::make("endpoint name already bound: " + name, "net");
  }
  std::shared_ptr<Endpoint> ep(new Endpoint(this, name));
  endpoints_[name] = ep;
  return ep;
}

bool Network::roll(double probability) {
  if (probability <= 0.0) return false;
  std::scoped_lock lock(rng_mu_);
  return rng_.chance(probability);
}

mwsec::Status Network::send(Message m) {
  auto& metrics = NetMetrics::get();
  stats_.sent.fetch_add(1, kRelaxed);
  stats_.bytes.fetch_add(m.payload.size(), kRelaxed);
  metrics.sent.inc();
  metrics.bytes.inc(m.payload.size());
  m.id = next_id_.fetch_add(1, kRelaxed);

  // One hop span per traced message: joined to the sender's context, and
  // the envelope is rewritten to the hop's own context so the receiver's
  // spans nest under it (sender → net.deliver → receiver). Inert unless
  // the message carries a context and tracing is on.
  obs::Span hop;
  if (m.ctx.valid()) {
    hop = obs::Tracer::global().join("net.deliver", m.ctx);
    if (hop.active()) {
      hop.set_attr("from", m.from);
      hop.set_attr("to", m.to);
      hop.set_attr("subject", m.subject);
      m.ctx = hop.context();
    }
  }

  // Route lookup + partition check under the shared lock only: concurrent
  // senders read the routing table together, writers (open/kill/
  // set_partitioned) are rare and take it exclusively.
  std::shared_ptr<Endpoint> dest;
  {
    std::shared_lock lock(route_mu_);
    // Failure Statuses name the destination, so a caller's retry log (the
    // scheduler's, in particular) identifies the dead endpoint without
    // having to thread it through separately.
    auto key = std::minmax(m.from, m.to);
    if (partitions_.count({key.first, key.second})) {
      stats_.partitioned.fetch_add(1, kRelaxed);
      metrics.partitioned.inc();
      hop.set_status("partitioned");
      return Error::make("send to '" + m.to + "' failed: link partitioned (" +
                             m.from + " <-> " + m.to + ")",
                         "net");
    }
    auto it = endpoints_.find(m.to);
    if (it != endpoints_.end()) dest = it->second.lock();
  }
  if (roll(options_.drop_probability)) {
    stats_.dropped.fetch_add(1, kRelaxed);
    metrics.dropped.inc();
    hop.set_status("dropped");
    return {};  // silently lost, as real networks do
  }
  if (dest == nullptr || dest->closed()) {
    stats_.undeliverable.fetch_add(1, kRelaxed);
    metrics.undeliverable.inc();
    hop.set_status("undeliverable");
    return Error::make(
        "send to '" + m.to + "' failed: " +
            (dest == nullptr ? "no such endpoint" : "endpoint closed"),
        "net");
  }
  const bool duplicate = roll(options_.duplicate_probability);
  const bool reorder = roll(options_.reorder_probability);
  Message copy;
  if (duplicate) copy = m;  // same id: a true wire-level duplicate

  // Delivered counts copies actually enqueued (a closed-endpoint race
  // discards the copy and counts undeliverable instead), so the invariant
  // delivered == sum of receivers' enqueues holds even with duplication.
  bool jumped = false;
  const bool accepted = dest->deliver(std::move(m), reorder, &jumped);
  if (!accepted) {
    stats_.undeliverable.fetch_add(1, kRelaxed);
    metrics.undeliverable.inc();
    hop.set_status("undeliverable");
    return Error::make("send to '" + m.to + "' failed: endpoint closed",
                       "net");
  }
  stats_.delivered.fetch_add(1, kRelaxed);
  metrics.delivered.inc();
  hop.set_status("delivered");
  std::uint64_t jumps = jumped ? 1u : 0u;
  if (duplicate) {
    bool dup_jumped = false;
    if (dest->deliver(std::move(copy), reorder, &dup_jumped)) {
      stats_.delivered.fetch_add(1, kRelaxed);
      metrics.delivered.inc();
      stats_.duplicated.fetch_add(1, kRelaxed);
      metrics.duplicated.inc();
      jumps += dup_jumped ? 1u : 0u;
    }
  }
  if (jumps != 0) {
    stats_.reordered.fetch_add(jumps, kRelaxed);
    metrics.reordered.inc(jumps);
  }
  return {};
}

void Network::set_partitioned(const std::string& a, const std::string& b,
                              bool partitioned) {
  std::unique_lock lock(route_mu_);
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

void Network::kill(const std::string& name) {
  std::shared_ptr<Endpoint> ep;
  {
    std::unique_lock lock(route_mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) return;
    ep = it->second.lock();
    endpoints_.erase(it);
  }
  if (ep) ep->close();
}

Network::Stats Network::stats() const {
  Stats out;
  out.sent = stats_.sent.load(kRelaxed);
  out.delivered = stats_.delivered.load(kRelaxed);
  out.dropped = stats_.dropped.load(kRelaxed);
  out.duplicated = stats_.duplicated.load(kRelaxed);
  out.reordered = stats_.reordered.load(kRelaxed);
  out.partitioned = stats_.partitioned.load(kRelaxed);
  out.undeliverable = stats_.undeliverable.load(kRelaxed);
  out.bytes = stats_.bytes.load(kRelaxed);
  return out;
}

}  // namespace mwsec::net
