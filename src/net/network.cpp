#include "net/network.hpp"

#include "util/result.hpp"

namespace mwsec::net {

mwsec::Status Network::send(Message m) {
  count_sent(m.payload.size());
  m.id = next_message_id();

  // One hop span per traced message: joined to the sender's context, and
  // the envelope is rewritten to the hop's own context so the receiver's
  // spans nest under it (sender → net.deliver → receiver). Inert unless
  // the message carries a context and tracing is on.
  obs::Span hop = mint_hop(m);

  // Failure Statuses name the destination, so a caller's retry log (the
  // scheduler's, in particular) identifies the dead endpoint without
  // having to thread it through separately.
  if (is_partitioned(m.from, m.to)) {
    count_partitioned();
    hop.set_status("partitioned");
    return Error::make("send to '" + m.to + "' failed: link partitioned (" +
                           m.from + " <-> " + m.to + ")",
                       "net");
  }
  return send_local(std::move(m), hop);
}

}  // namespace mwsec::net
