#include "net/network.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace mwsec::net {

namespace {

/// Process-wide counters mirroring Network::Stats, so a metrics snapshot
/// shows traffic alongside the authorisation-pipeline counters.
struct NetMetrics {
  obs::Counter& sent;
  obs::Counter& delivered;
  obs::Counter& dropped;
  obs::Counter& duplicated;
  obs::Counter& reordered;
  obs::Counter& partitioned;
  obs::Counter& undeliverable;
  obs::Counter& bytes;

  static NetMetrics& get() {
    auto& r = obs::Registry::global();
    static NetMetrics m{
        r.counter("net.sent"),          r.counter("net.delivered"),
        r.counter("net.dropped"),       r.counter("net.duplicated"),
        r.counter("net.reordered"),     r.counter("net.partitioned"),
        r.counter("net.undeliverable"), r.counter("net.bytes"),
    };
    return m;
  }
};

}  // namespace

Endpoint::~Endpoint() { close(); }

std::optional<Message> Endpoint::receive(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

std::optional<Message> Endpoint::try_receive() {
  std::scoped_lock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  Message m = std::move(queue_.front());
  queue_.pop_front();
  return m;
}

mwsec::Status Endpoint::send(const std::string& to, const std::string& subject,
                             util::Bytes payload) {
  Message m;
  m.from = name_;
  m.to = to;
  m.subject = subject;
  m.payload = std::move(payload);
  return network_->send(std::move(m));
}

std::size_t Endpoint::pending() const {
  std::scoped_lock lock(mu_);
  return queue_.size();
}

void Endpoint::close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool Endpoint::closed() const {
  std::scoped_lock lock(mu_);
  return closed_;
}

bool Endpoint::deliver(Message m, bool front) {
  std::scoped_lock lock(mu_);
  if (closed_) return false;
  const bool jumped = front && !queue_.empty();
  if (jumped) {
    queue_.push_front(std::move(m));
  } else {
    queue_.push_back(std::move(m));
  }
  cv_.notify_one();
  return jumped;
}

Network::Network(Options options) : options_(options), rng_(options.seed) {}

mwsec::Result<std::shared_ptr<Endpoint>> Network::open(
    const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = endpoints_.find(name);
  if (it != endpoints_.end() && !it->second.expired()) {
    return Error::make("endpoint name already bound: " + name, "net");
  }
  std::shared_ptr<Endpoint> ep(new Endpoint(this, name));
  endpoints_[name] = ep;
  return ep;
}

mwsec::Status Network::send(Message m) {
  auto& metrics = NetMetrics::get();
  std::shared_ptr<Endpoint> dest;
  bool duplicate = false;
  bool reorder = false;
  {
    std::scoped_lock lock(mu_);
    ++stats_.sent;
    stats_.bytes += m.payload.size();
    metrics.sent.inc();
    metrics.bytes.inc(m.payload.size());
    m.id = next_id_++;

    // Failure Statuses name the destination, so a caller's retry log (the
    // scheduler's, in particular) identifies the dead endpoint without
    // having to thread it through separately.
    auto key = std::minmax(m.from, m.to);
    if (partitions_.count({key.first, key.second})) {
      ++stats_.partitioned;
      metrics.partitioned.inc();
      return Error::make("send to '" + m.to + "' failed: link partitioned (" +
                             m.from + " <-> " + m.to + ")",
                         "net");
    }
    if (options_.drop_probability > 0.0 &&
        rng_.chance(options_.drop_probability)) {
      ++stats_.dropped;
      metrics.dropped.inc();
      return {};  // silently lost, as real networks do
    }
    auto it = endpoints_.find(m.to);
    if (it != endpoints_.end()) dest = it->second.lock();
    if (dest == nullptr || dest->closed()) {
      ++stats_.undeliverable;
      metrics.undeliverable.inc();
      return Error::make("send to '" + m.to + "' failed: " +
                             (dest == nullptr ? "no such endpoint"
                                              : "endpoint closed"),
                         "net");
    }
    ++stats_.delivered;
    metrics.delivered.inc();
    duplicate = options_.duplicate_probability > 0.0 &&
                rng_.chance(options_.duplicate_probability);
    reorder = options_.reorder_probability > 0.0 &&
              rng_.chance(options_.reorder_probability);
  }
  Message copy;
  if (duplicate) copy = m;  // same id: a true wire-level duplicate
  const bool jumped = dest->deliver(std::move(m), reorder);
  bool dup_jumped = false;
  if (duplicate) dup_jumped = dest->deliver(std::move(copy), reorder);
  if (duplicate || jumped || dup_jumped) {
    std::scoped_lock lock(mu_);
    if (duplicate) {
      ++stats_.duplicated;
      metrics.duplicated.inc();
    }
    const std::uint64_t jumps =
        (jumped ? 1u : 0u) + (dup_jumped ? 1u : 0u);
    if (jumps != 0) {
      stats_.reordered += jumps;
      metrics.reordered.inc(jumps);
    }
  }
  return {};
}

void Network::set_partitioned(const std::string& a, const std::string& b,
                              bool partitioned) {
  std::scoped_lock lock(mu_);
  auto key = std::minmax(a, b);
  if (partitioned) {
    partitions_.insert({key.first, key.second});
  } else {
    partitions_.erase({key.first, key.second});
  }
}

void Network::kill(const std::string& name) {
  std::shared_ptr<Endpoint> ep;
  {
    std::scoped_lock lock(mu_);
    auto it = endpoints_.find(name);
    if (it == endpoints_.end()) return;
    ep = it->second.lock();
    endpoints_.erase(it);
  }
  if (ep) ep->close();
}

Network::Stats Network::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace mwsec::net
