// The common authorisation core (Figures 1 and 10).
//
// The paper's central claim is one decision model mediating heterogeneous
// security technologies. Every decision surface in this repository — the
// Figure 10 stacked authoriser and each of its layers, the WebCom
// master/client scheduler, the KeyCOM administration service, and the
// native middleware mediators — answers the same question through the same
// interface: an `Authorizer` maps a `Request` (who, acting as what, doing
// what to what) to a `Verdict` (decision, deciding authority, store-version
// epoch). Decorators compose over that seam: `CachingAuthorizer` adds a
// sharded version-keyed decision cache in front of any backend, and
// `Stack` folds a pile of authorisers into one with a pluggable
// composition strategy.
//
// Obs spans and audit events both derive from a (Request, Verdict) pair
// via `decision_record`, so "who denied this and why" is attributed the
// same way no matter which surface produced the decision.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "keynote/assertion.hpp"
#include "keynote/query.hpp"
#include "obs/trace.hpp"

namespace mwsec::authz {

/// An authoriser may permit, deny, or abstain (it has no opinion — e.g.
/// the OS layer abstains on requests for objects it does not manage).
enum class Decision { kPermit, kDeny, kAbstain };

const char* decision_name(Decision d);

/// One mediation request, carrying everything any authoriser might need.
struct Request {
  std::string user;        ///< OS / middleware user name
  std::string principal;   ///< the user's key (for the TM layer)
  std::string object_type;
  std::string permission;
  std::string domain;      ///< RBAC domain context
  std::string role;        ///< RBAC role context
  /// Extra action-environment attributes beyond the fixed Figure 5
  /// vocabulary, e.g. the param_* bindings a parameterized role instance
  /// pins (translate::instance_param_attr). Sorted (name, value) pairs;
  /// they extend the KeyNote environment and the decision-cache key.
  std::vector<std::pair<std::string, std::string>> attributes;
  /// Credentials presented with the request (TM layer). A request carrying
  /// credentials is not a pure function of the fields above, so decision
  /// caches bypass it.
  std::vector<keynote::Assertion> credentials;
};

/// The outcome of one authorisation decision.
struct Verdict {
  Decision decision = Decision::kDeny;
  /// The deciding authority — e.g. "L2-keynote", "L1-CORBA", "stack".
  std::string authority;
  /// Why, when the producer had it cheaply at decision time. Usually empty
  /// on the hot path; `Authorizer::explain` recovers the full account.
  std::string explanation;
  /// Version of the backing policy store at decision time (0 when the
  /// backend is unversioned). Decision caches key on this.
  std::uint64_t epoch = 0;

  bool permitted() const { return decision == Decision::kPermit; }

  static Verdict permit(std::string authority, std::uint64_t epoch = 0) {
    return {Decision::kPermit, std::move(authority), {}, epoch};
  }
  static Verdict deny(std::string authority, std::uint64_t epoch = 0) {
    return {Decision::kDeny, std::move(authority), {}, epoch};
  }
  static Verdict abstain(std::string authority, std::uint64_t epoch = 0) {
    return {Decision::kAbstain, std::move(authority), {}, epoch};
  }

  /// A verdict compares equal to its decision, so call sites (and tests)
  /// that predate the refactor keep reading naturally.
  friend bool operator==(const Verdict& v, Decision d) {
    return v.decision == d;
  }
};

std::ostream& operator<<(std::ostream& os, const Verdict& v);

/// The one decision interface. Implementations must be safe to call from
/// multiple threads concurrently (decide is logically const).
class Authorizer {
 public:
  virtual ~Authorizer() = default;

  virtual std::string name() const = 0;

  virtual Verdict decide(const Request& request) const = 0;

  /// Decide many requests at once — e.g. the scheduler's per-task
  /// eligibility scan over every attached client. The default loops over
  /// `decide`; backends with batch-friendly structure may override.
  virtual std::vector<Verdict> decide_batch(
      std::span<const Request> requests) const;

  /// Human-readable account of why this authoriser reached `verdict` for
  /// `request` — the failing condition/constraint for a deny. Consulted
  /// only on the audit/trace path (never on the hot path), so an
  /// implementation may re-evaluate the request to explain it.
  virtual std::string explain(const Request& request,
                              const Verdict& verdict) const;

  /// Version of the backing policy store (0 = unversioned). A decision is
  /// a pure function of (request, epoch) for cacheable backends.
  virtual std::uint64_t epoch() const { return 0; }
};

/// The Figure 5 action-environment vocabulary shared by every KeyNote
/// surface: stack trust queries, scheduling queries, KeyCOM row checks.
/// Attributes are set unconditionally — a missing attribute evaluates as
/// the empty string, so setting "" is equivalent and keeps one encoding.
keynote::Query fig5_query(const Request& request);

/// The same environment rendered for humans — the "failing constraint" a
/// denied-request trace reports.
std::string fig5_env_text(const Request& request);

/// One decision record derived from (request, verdict): both the trace
/// span attributes and the audit event come from this, so attribution
/// (`decision` / `denied_by` / `reason`) is uniform across surfaces.
/// `reason` overrides `verdict.explanation` when non-empty.
obs::SpanRecord decision_record(std::string span_name, std::string system,
                                const Request& request, const Verdict& verdict,
                                std::string reason = {});

}  // namespace mwsec::authz
