#include "authz/middleware_authorizer.hpp"

namespace mwsec::authz {

Verdict MiddlewareAuthorizer::decide(const Request& request) const {
  // Does this middleware serve the object type at all?
  bool serves = false;
  for (const auto& component : system_.components()) {
    if (component.object_type == request.object_type) {
      serves = true;
      break;
    }
  }
  if (!serves) return Verdict::abstain(name_);
  return system_.mediate(request.user, request.object_type,
                         request.permission)
             ? Verdict::permit(name_)
             : Verdict::deny(name_);
}

std::string MiddlewareAuthorizer::explain(const Request& request,
                                          const Verdict& verdict) const {
  switch (verdict.decision) {
    case Decision::kDeny:
      return "no " + system_.kind() + " grant for user '" + request.user +
             "' on " + request.object_type + ":" + request.permission;
    case Decision::kPermit:
      return system_.kind() + " catalogue grants " + request.object_type +
             ":" + request.permission;
    case Decision::kAbstain:
      return request.object_type + " is not served by this middleware";
  }
  return {};
}

}  // namespace mwsec::authz
