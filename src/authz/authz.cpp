#include "authz/authz.hpp"

#include <ostream>

namespace mwsec::authz {

const char* decision_name(Decision d) {
  switch (d) {
    case Decision::kPermit: return "permit";
    case Decision::kDeny: return "deny";
    case Decision::kAbstain: return "abstain";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Verdict& v) {
  os << decision_name(v.decision) << " by '" << v.authority << "'";
  if (v.epoch != 0) os << " @" << v.epoch;
  if (!v.explanation.empty()) os << " (" << v.explanation << ")";
  return os;
}

std::vector<Verdict> Authorizer::decide_batch(
    std::span<const Request> requests) const {
  std::vector<Verdict> out;
  out.reserve(requests.size());
  for (const auto& request : requests) out.push_back(decide(request));
  return out;
}

std::string Authorizer::explain(const Request& request,
                                const Verdict& verdict) const {
  (void)request;
  if (!verdict.explanation.empty()) return verdict.explanation;
  return verdict.decision == Decision::kDeny ? "denied (no detail)"
                                             : std::string{};
}

keynote::Query fig5_query(const Request& request) {
  keynote::Query q;
  q.action_authorizers = {request.principal};
  q.env.set("app_domain", "WebCom");
  q.env.set("ObjectType", request.object_type);
  q.env.set("Permission", request.permission);
  q.env.set("Domain", request.domain);
  q.env.set("Role", request.role);
  for (const auto& [name, value] : request.attributes) {
    q.env.set(name, value);
  }
  return q;
}

std::string fig5_env_text(const Request& request) {
  std::string out = "{app_domain=WebCom, ObjectType=" + request.object_type +
                    ", Permission=" + request.permission +
                    ", Domain=" + request.domain + ", Role=" + request.role;
  for (const auto& [name, value] : request.attributes) {
    out += ", " + name + "=" + value;
  }
  out += "}";
  return out;
}

obs::SpanRecord decision_record(std::string span_name, std::string system,
                                const Request& request, const Verdict& verdict,
                                std::string reason) {
  obs::SpanRecord rec;
  rec.name = std::move(span_name);
  rec.status = decision_name(verdict.decision);
  rec.attrs = {
      {obs::kAttrSystem, std::move(system)},
      {obs::kAttrPrincipal,
       request.user.empty() ? request.principal : request.user},
      {obs::kAttrAction, request.object_type + ":" + request.permission},
      {obs::kAttrDecision, verdict.permitted() ? "permit" : "deny"},
  };
  if (!verdict.permitted()) {
    rec.attrs.emplace_back(obs::kAttrDeniedBy, verdict.authority);
    rec.attrs.emplace_back(obs::kAttrReason, reason.empty()
                                                 ? verdict.explanation
                                                 : std::move(reason));
  } else if (!reason.empty()) {
    rec.attrs.emplace_back(obs::kAttrReason, std::move(reason));
  }
  return rec;
}

}  // namespace mwsec::authz
