// Stacked authorisation (paper §5, Figure 10) over the authz core.
//
// Security mediation in Secure WebCom is a stack of pluggable authorisers:
//   L0 — operating system security,
//   L1 — middleware security (CORBASec / EJB descriptors / COM+ catalogue),
//   L2 — trust management (KeyNote, or SPKI/SDSI),
//   L3 — application/workflow security (a hook; the paper defers it).
// Layers are "pluggable in the sense of PAM" [17, 25]: any subset may be
// enabled — e.g. an ORB without CORBASec support runs with KeyNote + OS
// only — and the composition strategy decides how layer verdicts combine.
// The stack is itself an `Authorizer`, so stacks nest and decorate like
// any other backend; the tri-state fold and the fail-closed rule live
// here, in the core.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "authz/authz.hpp"
#include "middleware/common/audit.hpp"

namespace mwsec::authz {

/// How layer verdicts combine.
enum class Composition {
  kAllMustPermit,   ///< deny wins; every non-abstaining layer must permit
  kFirstDecisive,   ///< top-most non-abstaining layer decides
  kAnyPermits,      ///< a single permit suffices (audit-heavy deployments)
};

class Stack : public Authorizer {
 public:
  explicit Stack(Composition composition = Composition::kAllMustPermit,
                 middleware::AuditLog* audit = nullptr)
      : composition_(composition), audit_(audit) {}

  /// Push a layer on top of the stack (L0 first, L3 last, by convention).
  void push(std::shared_ptr<Authorizer> layer, bool enabled = true);

  /// Plug a layer in or out by name; returns false if unknown.
  bool set_enabled(const std::string& name, bool enabled);
  bool is_enabled(const std::string& name) const;
  std::vector<std::string> layer_names() const;

  void set_composition(Composition c) { composition_ = c; }

  std::string name() const override { return "stack"; }

  /// Mediate: combine the enabled layers' verdicts. Never abstains
  /// outward — an all-abstain stack denies (fail-closed), attributed to
  /// "stack". A deny is attributed to the first (top-most) denying layer.
  Verdict decide(const Request& request) const override;

  bool permitted(const Request& request) const {
    return decide(request).permitted();
  }

  /// The most recent epoch across enabled layers, so a cache in front of
  /// a stack invalidates when any constituent store moves.
  std::uint64_t epoch() const override;

  struct LayerStats {
    std::uint64_t permits = 0;
    std::uint64_t denies = 0;
    std::uint64_t abstains = 0;
  };
  LayerStats stats_for(const std::string& name) const;

 private:
  struct Slot {
    std::shared_ptr<Authorizer> layer;
    bool enabled;
    mutable LayerStats stats;
  };
  Composition composition_;
  middleware::AuditLog* audit_;
  std::vector<Slot> slots_;
};

}  // namespace mwsec::authz
