// A sharded, version-keyed decision cache usable in front of any
// `Authorizer` backend.
//
// A decision is a pure function of (request fields, backend epoch), so
// repeated requests are answered from a hash map instead of paying a
// backend query. Shards are keyed by *principal hash*: every request for
// one principal lands in one shard, which makes each shard an independent
// per-principal decision store. Each shard holds the epoch its entries
// were computed under; a shard that observes a moved epoch drops its
// entries before answering (the WebCom master's store mutations —
// attach_client admitting credentials, policy edits — invalidate this
// way). Requests presenting credentials are not pure functions of their
// fields and bypass the cache.
//
// With a `util::TaskPool` attached (Options::pool), `decide_batch` runs
// shared-nothing: the batch is partitioned by owning worker
// (worker = shard % pool->size()) and each partition is decided on the
// worker that owns those shards, so within a batch no two threads ever
// touch the same shard — the hit path fans out with no cross-shard lock
// contention. The shard mutexes remain (plain `decide` may be called from
// any thread), but on the pooled batch path they are uncontended.
//
// Statistics are kept in always-on relaxed atomics (`stats()`), separate
// from the obs registry counters (`<metric_prefix>_hits` / `_misses`),
// because the registry is off by default and consumers like `MasterStats`
// derive their counters from the cache rather than double-counting.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "authz/authz.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/task_pool.hpp"

namespace mwsec::authz {

class CachingAuthorizer final : public Authorizer {
 public:
  struct Options {
    /// Rounded up to a power of two.
    std::size_t shards = 8;
    /// Registry counters are published as "<prefix>_hits"/"<prefix>_misses".
    std::string metric_prefix = "authz.cache";
    /// When set, decide_batch partitions by shard owner and fans out
    /// across this pool (shared-nothing batches; see the header comment).
    /// The pool must outlive this authoriser. Null = decide in a loop on
    /// the calling thread.
    util::TaskPool* pool = nullptr;
    /// Batches smaller than this stay on the calling thread even with a
    /// pool attached (the scatter/gather costs more than a handful of
    /// cache hits).
    std::size_t min_batch_fanout = 8;
  };

  /// `inner` must outlive this decorator.
  explicit CachingAuthorizer(const Authorizer& inner);
  CachingAuthorizer(const Authorizer& inner, Options options);

  std::string name() const override { return inner_.name(); }
  std::uint64_t epoch() const override { return inner_.epoch(); }
  std::string explain(const Request& request,
                      const Verdict& verdict) const override {
    return inner_.explain(request, verdict);
  }

  Verdict decide(const Request& request) const override;

  /// Shared-nothing batch fan-out when a pool is attached; otherwise the
  /// base-class loop over decide().
  std::vector<Verdict> decide_batch(
      std::span<const Request> requests) const override;

  /// Drop every cached verdict regardless of epoch — e.g. a scheduler
  /// client attaching with no credentials must never be answered from
  /// decisions cached before it existed.
  void invalidate();

  /// Wire the causal origin of epoch movements. When a shard flushes
  /// because the backend epoch moved (a replicated delta landed, a policy
  /// changed) and the provenance yields a valid context, the flush emits
  /// an "authz.verdict_flip" span joined to it — the final hop of the
  /// revocation fan-out tree (publish → net → apply → flip). The WebCom
  /// master points this at its policy replica's last_applied_context().
  /// Not synchronised: wire before concurrent decide() traffic starts.
  void set_epoch_provenance(std::function<obs::TraceContext()> provenance);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        ///< backend queries paid
    std::uint64_t bypasses = 0;      ///< credential-bearing requests
    std::uint64_t invalidations = 0; ///< epoch flushes + explicit ones
    std::uint64_t batch_fanouts = 0; ///< decide_batch calls run on the pool
  };
  Stats stats() const;

  /// Cached entries across all shards (test/diagnostic use).
  std::size_t size() const;

  std::size_t shard_count() const { return shard_mask_ + 1; }
  /// The shard `request`'s principal maps to (tests assert the
  /// shared-nothing partition against this).
  std::size_t shard_index(const Request& request) const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Verdict> entries;
    /// Epoch the entries were computed under; kNoEpoch = not yet synced.
    std::uint64_t epoch;
  };
  static constexpr std::uint64_t kNoEpoch = ~0ull;

  static std::string cache_key(const Request& request);
  Shard& shard_for(const Request& request) const;
  Verdict decide_impl(const Request& request) const;

  const Authorizer& inner_;
  std::string metric_prefix_;
  std::function<obs::TraceContext()> provenance_;
  std::size_t shard_mask_;
  std::unique_ptr<Shard[]> shards_;
  util::TaskPool* pool_;
  std::size_t min_batch_fanout_;
  mutable std::atomic<std::uint64_t> hits_{0};
  mutable std::atomic<std::uint64_t> misses_{0};
  mutable std::atomic<std::uint64_t> bypasses_{0};
  mutable std::atomic<std::uint64_t> invalidations_{0};
  mutable std::atomic<std::uint64_t> batch_fanouts_{0};
  obs::Counter& obs_hits_;
  obs::Counter& obs_misses_;
};

}  // namespace mwsec::authz
