// A middleware's native mediation as an `authz::Authorizer` (Figure 10,
// L1). Wraps `middleware::SecuritySystem::mediate` so CORBA / EJB / COM+
// plug into the stack and the scheduler identically. Abstains when the
// object type is not served by this middleware (no component exposes it).
#pragma once

#include <string>

#include "authz/authz.hpp"
#include "middleware/common/system.hpp"

namespace mwsec::authz {

class MiddlewareAuthorizer final : public Authorizer {
 public:
  explicit MiddlewareAuthorizer(const middleware::SecuritySystem& system)
      : system_(system), name_("L1-" + system.kind()) {}

  std::string name() const override { return name_; }

  Verdict decide(const Request& request) const override;

  std::string explain(const Request& request,
                      const Verdict& verdict) const override;

 private:
  const middleware::SecuritySystem& system_;
  std::string name_;
};

}  // namespace mwsec::authz
