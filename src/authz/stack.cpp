#include "authz/stack.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace mwsec::authz {

namespace {

struct StackMetrics {
  obs::Counter& decisions;
  obs::Counter& permits;
  obs::Counter& denies;
  obs::Histogram& decide_us;

  static StackMetrics& get() {
    auto& r = obs::Registry::global();
    static StackMetrics m{
        r.counter("stack.decisions"),
        r.counter("stack.permits"),
        r.counter("stack.denies"),
        r.histogram("stack.decide_us"),
    };
    return m;
  }
};

}  // namespace

void Stack::push(std::shared_ptr<Authorizer> layer, bool enabled) {
  slots_.push_back(Slot{std::move(layer), enabled, {}});
}

bool Stack::set_enabled(const std::string& name, bool enabled) {
  for (auto& slot : slots_) {
    if (slot.layer->name() == name) {
      slot.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool Stack::is_enabled(const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.enabled;
  }
  return false;
}

std::vector<std::string> Stack::layer_names() const {
  std::vector<std::string> out;
  for (const auto& slot : slots_) out.push_back(slot.layer->name());
  return out;
}

std::uint64_t Stack::epoch() const {
  std::uint64_t e = 0;
  for (const auto& slot : slots_) {
    if (slot.enabled) e = std::max(e, slot.layer->epoch());
  }
  return e;
}

Verdict Stack::decide(const Request& request) const {
  auto& metrics = StackMetrics::get();
  metrics.decisions.inc();
  obs::ScopedTimer timer(metrics.decide_us);
  auto span = obs::Tracer::global().root("stack.decide");
  // The audit event is derived from the same decision record the trace
  // exports (explain() is only consulted when one of the two wants it).
  const bool explaining = span.active() || audit_ != nullptr;

  Decision fold = Decision::kAbstain;
  bool any_permit = false;
  bool any_deny = false;
  std::string denied_by;   // first (top-most) denying layer
  std::string deny_reason;
  std::string decisive;    // kFirstDecisive: the layer that decided
  std::uint64_t epoch_seen = 0;

  // Layers are consulted top-down: last pushed (highest layer) first,
  // mirroring Figure 10 where trust management sits above the middleware.
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (!it->enabled) continue;
    Verdict v = it->layer->decide(request);
    epoch_seen = std::max(epoch_seen, v.epoch);
    switch (v.decision) {
      case Decision::kPermit: ++it->stats.permits; any_permit = true; break;
      case Decision::kDeny: ++it->stats.denies; any_deny = true; break;
      case Decision::kAbstain: ++it->stats.abstains; break;
    }
    if (span.active()) {
      auto layer_span = span.child("stack.layer");
      layer_span.set_attr("layer", it->layer->name());
      layer_span.set_status(decision_name(v.decision));
      if (v.decision == Decision::kDeny) {
        layer_span.set_attr(obs::kAttrReason, it->layer->explain(request, v));
      }
    }
    if (v.decision == Decision::kDeny && denied_by.empty()) {
      denied_by = it->layer->name();
      if (explaining) deny_reason = it->layer->explain(request, v);
    }
    if (composition_ == Composition::kFirstDecisive &&
        v.decision != Decision::kAbstain) {
      fold = v.decision;
      decisive = it->layer->name();
      break;
    }
  }

  if (composition_ == Composition::kAllMustPermit) {
    if (any_deny) fold = Decision::kDeny;
    else if (any_permit) fold = Decision::kPermit;
    else fold = Decision::kAbstain;
  } else if (composition_ == Composition::kAnyPermits) {
    if (any_permit) fold = Decision::kPermit;
    else if (any_deny) fold = Decision::kDeny;
    else fold = Decision::kAbstain;
  }

  // Fail closed: a stack with no opinion denies.
  const Decision final_decision =
      fold == Decision::kAbstain ? Decision::kDeny : fold;
  if (final_decision == Decision::kPermit) {
    metrics.permits.inc();
  } else {
    metrics.denies.inc();
  }
  if (final_decision == Decision::kDeny && denied_by.empty()) {
    denied_by = "stack";
    deny_reason = "all enabled layers abstained (fail-closed)";
  }

  Verdict verdict;
  verdict.decision = final_decision;
  verdict.epoch = epoch_seen;
  if (final_decision == Decision::kDeny) {
    verdict.authority = denied_by;
    if (explaining) verdict.explanation = deny_reason;
  } else {
    verdict.authority = decisive.empty() ? std::string("stack") : decisive;
  }

  if (span.active() || audit_ != nullptr) {
    // `fold` (pre-fail-closed) is the recorded reason on a permit, so a
    // trace distinguishes an explicit permit from a default.
    auto rec = decision_record(
        "stack.decide", "stack", request, verdict,
        final_decision == Decision::kDeny ? deny_reason
                                          : std::string(decision_name(fold)));
    if (audit_ != nullptr) audit_->record_from(rec);
    if (span.active()) {
      for (const auto& [k, v] : rec.attrs) span.set_attr(k, v);
      span.set_status(rec.status);
    }
  }
  return verdict;
}

Stack::LayerStats Stack::stats_for(const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.stats;
  }
  return {};
}

}  // namespace mwsec::authz
