#include "authz/caching.hpp"

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <vector>

#include "obs/flight_recorder.hpp"

namespace mwsec::authz {

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

/// One process-wide decide-latency histogram across every decision
/// surface fronted by a CachingAuthorizer — the series the SLO
/// "decide_p99_us" objective reads (per-instance hit/miss counters stay
/// under the instance's metric_prefix).
obs::Histogram& decide_us_histogram() {
  static obs::Histogram& h = obs::Registry::global().histogram(
      "authz.decide_us");
  return h;
}

}  // namespace

CachingAuthorizer::CachingAuthorizer(const Authorizer& inner)
    : CachingAuthorizer(inner, Options{}) {}

CachingAuthorizer::CachingAuthorizer(const Authorizer& inner, Options options)
    : inner_(inner),
      metric_prefix_(options.metric_prefix),
      shard_mask_(round_up_pow2(options.shards == 0 ? 1 : options.shards) - 1),
      shards_(new Shard[shard_mask_ + 1]),
      pool_(options.pool),
      min_batch_fanout_(options.min_batch_fanout),
      obs_hits_(
          obs::Registry::global().counter(options.metric_prefix + "_hits")),
      obs_misses_(
          obs::Registry::global().counter(options.metric_prefix + "_misses")) {
  for (std::size_t i = 0; i <= shard_mask_; ++i) shards_[i].epoch = kNoEpoch;
}

std::string CachingAuthorizer::cache_key(const Request& request) {
  // One allocation: the identity fields joined on a separator that cannot
  // occur in them (0x1f, ASCII unit separator).
  std::string key;
  key.reserve(request.user.size() + request.principal.size() +
              request.object_type.size() + request.permission.size() +
              request.domain.size() + request.role.size() + 5);
  key += request.user;
  key += '\x1f';
  key += request.principal;
  key += '\x1f';
  key += request.object_type;
  key += '\x1f';
  key += request.permission;
  key += '\x1f';
  key += request.domain;
  key += '\x1f';
  key += request.role;
  for (const auto& [name, value] : request.attributes) {
    key += '\x1f';
    key += name;
    key += '\x1e';
    key += value;
  }
  return key;
}

std::size_t CachingAuthorizer::shard_index(const Request& request) const {
  // Principal hash, not full-key hash: one principal's decisions live in
  // one shard, so shards partition the principal space and a worker that
  // owns a shard owns those principals outright.
  return std::hash<std::string>{}(request.principal) & shard_mask_;
}

CachingAuthorizer::Shard& CachingAuthorizer::shard_for(
    const Request& request) const {
  return shards_[shard_index(request)];
}

void CachingAuthorizer::set_epoch_provenance(
    std::function<obs::TraceContext()> provenance) {
  provenance_ = std::move(provenance);
}

Verdict CachingAuthorizer::decide(const Request& request) const {
  // Timing wrapper: one clock pair feeds both the decide-latency
  // histogram (metrics on) and the flight recorder (armed). With both
  // off — the default — this is two relaxed loads and a tail call.
  auto& recorder = obs::FlightRecorder::global();
  const bool timed = recorder.armed() || obs::metrics_enabled();
  if (!timed) return decide_impl(request);
  const auto t0 = std::chrono::steady_clock::now();
  Verdict verdict = decide_impl(request);
  const double us = std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  decide_us_histogram().observe(us);
  recorder.record(obs::FlightKind::kDecision, us,
                  obs::current_context().trace_id);
  return verdict;
}

Verdict CachingAuthorizer::decide_impl(const Request& request) const {
  if (!request.credentials.empty()) {
    bypasses_.fetch_add(1, kRelaxed);
    return inner_.decide(request);
  }
  const std::uint64_t now = inner_.epoch();
  std::string key = cache_key(request);
  Shard& shard = shard_for(request);
  {
    std::scoped_lock lock(shard.mu);
    if (shard.epoch != now) {
      if (!shard.entries.empty()) {
        shard.entries.clear();
        invalidations_.fetch_add(1, kRelaxed);
        // The flush is *the* observable verdict flip: whatever this
        // shard answered before, it re-derives under the new epoch from
        // here on. Join the span to whatever moved the epoch (the
        // replica's apply, via the wired provenance) to close the
        // revocation fan-out tree.
        if (provenance_ && obs::Tracer::global().enabled()) {
          if (obs::TraceContext origin = provenance_(); origin.valid()) {
            obs::Span flip =
                obs::Tracer::global().join("authz.verdict_flip", origin);
            flip.set_attr("cache", metric_prefix_);
            flip.set_attr("epoch", std::to_string(now));
            flip.set_attr(obs::kAttrPrincipal, request.principal);
            flip.set_status("flushed");
          }
        }
      }
      shard.epoch = now;
    }
    if (auto it = shard.entries.find(key); it != shard.entries.end()) {
      hits_.fetch_add(1, kRelaxed);
      obs_hits_.inc();
      return it->second;
    }
  }
  misses_.fetch_add(1, kRelaxed);
  obs_misses_.inc();
  // The backend query runs outside the shard lock (it may be slow);
  // concurrent misses on the same key duplicate the query harmlessly.
  Verdict verdict = inner_.decide(request);
  {
    std::scoped_lock lock(shard.mu);
    // Only cache a verdict computed under the epoch the shard is at — a
    // store mutation racing the query would otherwise pin a stale answer.
    if (shard.epoch == verdict.epoch) {
      shard.entries.emplace(std::move(key), verdict);
    }
  }
  return verdict;
}

std::vector<Verdict> CachingAuthorizer::decide_batch(
    std::span<const Request> requests) const {
  if (pool_ == nullptr || requests.size() < min_batch_fanout_) {
    return Authorizer::decide_batch(requests);
  }
  batch_fanouts_.fetch_add(1, kRelaxed);
  // Partition by owning worker so each shard's requests are decided by
  // exactly one thread: shared-nothing within the batch, and shard-affine
  // across batches (the same principal always lands on the same worker's
  // shard group, whose map stays warm in that worker's cache).
  const std::size_t n_workers = pool_->size();
  std::vector<std::vector<std::uint32_t>> by_worker(n_workers);
  for (std::uint32_t i = 0; i < requests.size(); ++i) {
    by_worker[shard_index(requests[i]) % n_workers].push_back(i);
  }
  std::vector<Verdict> out(requests.size());
  std::size_t populated = 0;
  std::size_t caller_worker = n_workers;  // first populated group, run inline
  for (std::size_t w = 0; w < n_workers; ++w) {
    if (by_worker[w].empty()) continue;
    ++populated;
    if (caller_worker == n_workers) caller_worker = w;
  }
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t remaining;
  } gather{{}, {}, populated == 0 ? 0 : populated - 1};
  for (std::size_t w = 0; w < n_workers; ++w) {
    if (w == caller_worker || by_worker[w].empty()) continue;
    pool_->submit_to(w, [this, &requests, &out, &gather,
                         group = &by_worker[w]] {
      for (std::uint32_t i : *group) out[i] = decide(requests[i]);
      std::scoped_lock lock(gather.mu);
      if (--gather.remaining == 0) gather.cv.notify_one();
    });
  }
  if (caller_worker != n_workers) {
    for (std::uint32_t i : by_worker[caller_worker]) {
      out[i] = decide(requests[i]);
    }
  }
  std::unique_lock lock(gather.mu);
  gather.cv.wait(lock, [&] { return gather.remaining == 0; });
  return out;
}

void CachingAuthorizer::invalidate() {
  bool dropped = false;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::scoped_lock lock(shards_[i].mu);
    dropped = dropped || !shards_[i].entries.empty();
    shards_[i].entries.clear();
    shards_[i].epoch = kNoEpoch;
  }
  if (dropped) invalidations_.fetch_add(1, kRelaxed);
}

CachingAuthorizer::Stats CachingAuthorizer::stats() const {
  return Stats{hits_.load(kRelaxed), misses_.load(kRelaxed),
               bypasses_.load(kRelaxed), invalidations_.load(kRelaxed),
               batch_fanouts_.load(kRelaxed)};
}

std::size_t CachingAuthorizer::size() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i <= shard_mask_; ++i) {
    std::scoped_lock lock(shards_[i].mu);
    n += shards_[i].entries.size();
  }
  return n;
}

}  // namespace mwsec::authz
