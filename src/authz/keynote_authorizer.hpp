// KeyNote trust management as an `authz::Authorizer` (Figure 10, L2).
//
// Two modes share one decision path:
//
//   live store   — decisions run against a `keynote::CompiledStore`; the
//     store's version() is the verdict epoch, so a `CachingAuthorizer` in
//     front invalidates exactly when the credential set changes. Requests
//     carrying presented credentials are compiled into a one-shot snapshot
//     by the store (and bypass caches, see authz.hpp).
//   fixed snapshot — decisions run against one immutable
//     `CompiledStore::Snapshot`, e.g. KeyCOM authorising every row of an
//     update request against the same store-plus-presented-bundle view.
#pragma once

#include <memory>
#include <string>

#include "authz/authz.hpp"
#include "keynote/compiled_store.hpp"

namespace mwsec::authz {

class KeyNoteAuthorizer final : public Authorizer {
 public:
  /// Live mode. `store` must outlive this authoriser.
  explicit KeyNoteAuthorizer(const keynote::CompiledStore& store,
                             std::string name = "L2-keynote")
      : store_(&store), name_(std::move(name)) {}

  /// Fixed-snapshot mode. `epoch` is the source store's version at the
  /// time the snapshot was taken. Request credentials are ignored — a
  /// snapshot's assertion set is closed (bake presented credentials in
  /// via CompiledStore::snapshot_with).
  KeyNoteAuthorizer(std::shared_ptr<const keynote::CompiledStore::Snapshot>
                        snapshot,
                    std::uint64_t epoch, std::string name = "L2-keynote")
      : snapshot_(std::move(snapshot)), fixed_epoch_(epoch),
        name_(std::move(name)) {}

  std::string name() const override { return name_; }
  std::uint64_t epoch() const override {
    return store_ != nullptr ? store_->version() : fixed_epoch_;
  }

  /// Permit on _MAX_TRUST, deny otherwise (including query errors). Never
  /// abstains — trust management always has an opinion (deny-by-default).
  Verdict decide(const Request& request) const override;

  std::string explain(const Request& request,
                      const Verdict& verdict) const override;

 private:
  mwsec::Result<keynote::QueryResult> run(const Request& request) const;

  const keynote::CompiledStore* store_ = nullptr;
  std::shared_ptr<const keynote::CompiledStore::Snapshot> snapshot_;
  std::uint64_t fixed_epoch_ = 0;
  std::string name_;
};

}  // namespace mwsec::authz
