#include "authz/keynote_authorizer.hpp"

namespace mwsec::authz {

mwsec::Result<keynote::QueryResult> KeyNoteAuthorizer::run(
    const Request& request) const {
  auto q = fig5_query(request);
  if (store_ != nullptr) return store_->query(q, request.credentials);
  return snapshot_->query(q);
}

Verdict KeyNoteAuthorizer::decide(const Request& request) const {
  // Live-store, no-presented-credentials path: acquire one RCU handle so
  // the verdict's epoch is exactly the version of the snapshot it was
  // computed from. (Reading epoch() and querying separately would let a
  // concurrent mutation slip between the two, labelling a new-store
  // verdict with the old epoch — the coherence the caching layer and the
  // concurrency stress tests depend on.)
  if (store_ != nullptr && request.credentials.empty()) {
    auto handle = store_->acquire();
    auto q = fig5_query(request);
    auto r = handle.snapshot->query(q);
    if (!r.ok()) {
      Verdict v = Verdict::deny(name_, handle.version);
      v.explanation = "query failed: " + r.error().message;
      return v;
    }
    return r->authorized() ? Verdict::permit(name_, handle.version)
                           : Verdict::deny(name_, handle.version);
  }
  const std::uint64_t at = epoch();
  auto r = run(request);
  if (!r.ok()) {
    Verdict v = Verdict::deny(name_, at);
    v.explanation = "query failed: " + r.error().message;
    return v;
  }
  return r->authorized() ? Verdict::permit(name_, at)
                         : Verdict::deny(name_, at);
}

std::string KeyNoteAuthorizer::explain(const Request& request,
                                       const Verdict& verdict) const {
  // Re-evaluate to recover the compliance value and any dropped
  // credentials; explain() runs on the trace/audit path only.
  auto r = run(request);
  if (!r.ok()) {
    return "query failed: " + r.error().message;
  }
  std::string out = "compliance '" + r->value_name + "' for principal '" +
                    request.principal + "' under " + fig5_env_text(request);
  if (!verdict.permitted() && !r->dropped_credentials.empty()) {
    out += "; dropped credentials: " + r->dropped_credentials.front();
  }
  return out;
}

}  // namespace mwsec::authz
