#include "middleware/common/audit.hpp"

namespace mwsec::middleware {

void AuditLog::record(AuditEvent event) {
  std::scoped_lock lock(mu_);
  if (event.allowed) {
    ++allowed_total_;
  } else {
    ++denied_total_;
  }
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

std::vector<AuditEvent> AuditLog::events() const {
  std::scoped_lock lock(mu_);
  return {events_.begin(), events_.end()};
}

std::size_t AuditLog::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::size_t AuditLog::allowed_count() const {
  std::scoped_lock lock(mu_);
  return allowed_total_;
}

std::size_t AuditLog::denied_count() const {
  std::scoped_lock lock(mu_);
  return denied_total_;
}

void AuditLog::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
  allowed_total_ = 0;
  denied_total_ = 0;
}

}  // namespace mwsec::middleware
