#include "middleware/common/audit.hpp"

namespace mwsec::middleware {

void AuditLog::record(AuditEvent event) {
  std::scoped_lock lock(mu_);
  if (event.allowed) {
    ++allowed_total_;
  } else {
    ++denied_total_;
  }
  events_.push_back(std::move(event));
  while (events_.size() > capacity_) events_.pop_front();
}

void AuditLog::record_from(const obs::SpanRecord& span) {
  const std::string* decision = span.attr(obs::kAttrDecision);
  if (decision == nullptr) return;
  AuditEvent event;
  if (const auto* v = span.attr(obs::kAttrSystem)) event.system = *v;
  if (const auto* v = span.attr(obs::kAttrPrincipal)) event.principal = *v;
  if (const auto* v = span.attr(obs::kAttrAction)) event.action = *v;
  event.allowed = *decision == "permit" || *decision == "allow";
  if (const auto* v = span.attr(obs::kAttrReason)) {
    event.detail = *v;
  }
  if (const auto* v = span.attr(obs::kAttrDeniedBy)) {
    event.detail = event.detail.empty() ? "denied by " + *v
                                        : *v + ": " + event.detail;
  }
  record(std::move(event));
}

std::uint64_t AuditLog::attach(obs::Tracer& tracer) {
  return tracer.add_sink(
      [this](const obs::SpanRecord& span) { record_from(span); });
}

void AuditLog::detach(obs::Tracer& tracer, std::uint64_t sink_id) {
  tracer.remove_sink(sink_id);
}

std::vector<AuditEvent> AuditLog::events() const {
  std::scoped_lock lock(mu_);
  return {events_.begin(), events_.end()};
}

std::size_t AuditLog::size() const {
  std::scoped_lock lock(mu_);
  return events_.size();
}

std::size_t AuditLog::allowed_count() const {
  std::scoped_lock lock(mu_);
  return allowed_total_;
}

std::size_t AuditLog::denied_count() const {
  std::scoped_lock lock(mu_);
  return denied_total_;
}

void AuditLog::clear() {
  std::scoped_lock lock(mu_);
  events_.clear();
  allowed_total_ = 0;
  denied_total_ = 0;
}

}  // namespace mwsec::middleware
