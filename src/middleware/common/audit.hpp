// Mediation audit log, shared by the middleware simulators, the stacked
// authoriser and the KeyCOM administration service. Thread-safe; bounded.
//
// The audit log is a consumer of the observability trace stream: every
// decision a mediation point makes is described by one obs::SpanRecord
// carrying the shared attribute vocabulary (obs::kAttrSystem,
// kAttrPrincipal, kAttrAction, kAttrDecision, kAttrReason...), and the
// audit event is derived from that record — either directly
// (record_from, used by producers holding an AuditLog*) or by
// subscribing the log to a tracer (attach), which audits every decision
// span any component emits.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mwsec::middleware {

struct AuditEvent {
  std::string system;     ///< who mediated, e.g. "COM+/DomainA", "KeyCOM"
  std::string principal;  ///< requesting user / key
  std::string action;     ///< e.g. "SalariesDB:write", "policy-update"
  bool allowed = false;
  std::string detail;     ///< reason / dropped-credential info
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(AuditEvent event);
  /// Derive an AuditEvent from a decision span (a record carrying
  /// obs::kAttrDecision) and record it. Spans without a decision
  /// attribute are ignored — they are timing detail, not decisions.
  void record_from(const obs::SpanRecord& span);

  /// Subscribe this log to `tracer`: every finished decision span is
  /// audited via record_from. Returns the sink id for detach(). The log
  /// must outlive the subscription.
  std::uint64_t attach(obs::Tracer& tracer);
  void detach(obs::Tracer& tracer, std::uint64_t sink_id);

  std::vector<AuditEvent> events() const;
  std::size_t size() const;
  /// Counts of allowed/denied events recorded so far (monotonic, not
  /// affected by capacity eviction).
  std::size_t allowed_count() const;
  std::size_t denied_count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<AuditEvent> events_;
  std::size_t allowed_total_ = 0;
  std::size_t denied_total_ = 0;
};

}  // namespace mwsec::middleware
