// Mediation audit log, shared by the middleware simulators, the stacked
// authoriser and the KeyCOM administration service. Thread-safe; bounded.
#pragma once

#include <cstddef>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace mwsec::middleware {

struct AuditEvent {
  std::string system;     ///< who mediated, e.g. "COM+/DomainA", "KeyCOM"
  std::string principal;  ///< requesting user / key
  std::string action;     ///< e.g. "SalariesDB:write", "policy-update"
  bool allowed = false;
  std::string detail;     ///< reason / dropped-credential info
};

class AuditLog {
 public:
  explicit AuditLog(std::size_t capacity = 4096) : capacity_(capacity) {}

  void record(AuditEvent event);
  std::vector<AuditEvent> events() const;
  std::size_t size() const;
  /// Counts of allowed/denied events recorded so far (monotonic, not
  /// affected by capacity eviction).
  std::size_t allowed_count() const;
  std::size_t denied_count() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::deque<AuditEvent> events_;
  std::size_t allowed_total_ = 0;
  std::size_t denied_total_ = 0;
};

}  // namespace mwsec::middleware
