// The common surface every simulated middleware exposes (DESIGN.md §2-3).
//
// Each middleware owns a *native* security model (COM+ catalogue, EJB
// deployment descriptors, CORBASec-like access policy). The SecuritySystem
// interface is the seam the paper's machinery plugs into:
//   * export_policy()  — project the native policy onto the common RBAC
//                        model of Section 2 ("policy comprehension");
//   * import_policy()  — commission RBAC rows into the native model
//                        ("policy configuration", what KeyCOM drives);
//   * mediate()        — the native access decision, used as layer L1 of
//                        the stacked authoriser (Figure 10);
//   * components()     — interrogation for the IDE palette (Section 6).
#pragma once

#include <string>
#include <vector>

#include "rbac/model.hpp"
#include "util/result.hpp"

namespace mwsec::middleware {

/// An invocable middleware component, as surfaced to the WebCom IDE
/// palette: the unit the paper's condensed graphs schedule.
struct Component {
  std::string id;           ///< globally unique, e.g. "ejb://x/srv/Payroll#pay"
  std::string object_type;  ///< RBAC ObjectType (bean / interface / AppID)
  std::string operation;    ///< RBAC Permission required to execute it
  std::string description;

  auto operator<=>(const Component&) const = default;
};

/// Outcome of commissioning RBAC rows into a native policy store. Rows the
/// native vocabulary cannot express (e.g. permission "read" offered to
/// COM+, whose permissions are exactly Launch/Access/RunAs) are skipped
/// and reported, not silently dropped.
struct ImportStats {
  std::size_t grants_applied = 0;
  std::size_t assignments_applied = 0;
  std::vector<std::string> skipped;  ///< human-readable reasons
};

class SecuritySystem {
 public:
  virtual ~SecuritySystem() = default;

  /// Technology tag: "COM+", "EJB" or "CORBA".
  virtual std::string kind() const = 0;
  /// Instance name (host / server), unique in a deployment.
  virtual std::string name() const = 0;

  /// Project the native policy onto the common RBAC model.
  virtual rbac::Policy export_policy() const = 0;

  /// Commission RBAC rows into the native model (additive).
  virtual mwsec::Result<ImportStats> import_policy(const rbac::Policy& p) = 0;

  /// Withdraw one UserRole row from the native model (revocation — what
  /// KeyCOM drives when a credential is withdrawn). Errors if the domain
  /// is not served here or the membership does not exist.
  virtual mwsec::Status remove_assignment(const rbac::RoleAssignment& a) = 0;

  /// Native access decision: may `user` exercise `permission` on objects
  /// of `object_type`?
  virtual bool mediate(const std::string& user, const std::string& object_type,
                       const std::string& permission) const = 0;

  /// Interrogation: the components this system offers (Section 6).
  virtual std::vector<Component> components() const = 0;
};

}  // namespace mwsec::middleware
