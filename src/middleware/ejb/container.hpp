// Enterprise JavaBeans container simulator (Section 2 of the paper; [27]).
//
// The paper's EJB RBAC view: the combination of host, EJB server and the
// bean container's JNDI name forms the Domain; roles are bean-specific on
// each server; users exist globally per server and may belong to roles in
// different domains; permissions are the method calls a role may make on
// a bean.
//
// The simulator models a server holding a JNDI naming tree of bean
// containers; each container holds deployed beans described by EJB 2.x
// style deployment descriptors: declared security roles plus
// <method-permission> entries mapping methods to the roles allowed to
// call them.
//
// Mapping onto the common RBAC model:
//   Domain     <- host "/" server "/" jndi-name
//   Role       <- descriptor security role (container-scoped)
//   ObjectType <- bean name
//   Permission <- bean method name
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "middleware/common/audit.hpp"
#include "middleware/common/system.hpp"

namespace mwsec::middleware::ejb {

/// Deployment descriptor for one bean (the security part of ejb-jar.xml).
struct BeanDescriptor {
  std::string bean_name;                      // ObjectType
  std::string description;
  std::set<std::string> security_roles;       // <security-role>
  // <method-permission>: method -> roles allowed to call it.
  std::map<std::string, std::set<std::string>> method_permissions;
  // <unchecked/> methods: any authenticated (registered) user may call.
  std::set<std::string> unchecked_methods;
};

class Server final : public SecuritySystem {
 public:
  Server(std::string host, std::string server_name, AuditLog* audit = nullptr);

  // --- deployment ---------------------------------------------------------
  /// Create a bean container bound at `jndi_name` (e.g. "ejb/payroll").
  mwsec::Status create_container(const std::string& jndi_name);
  /// Deploy a bean into a container; validates that every role referenced
  /// by a method-permission is declared.
  mwsec::Status deploy(const std::string& jndi_name, BeanDescriptor bean);

  /// Server-global user registry.
  mwsec::Status register_user(const std::string& user);
  /// Put a user into a role of the container at `jndi_name`.
  mwsec::Status add_user_to_role(const std::string& user,
                                 const std::string& jndi_name,
                                 const std::string& role);
  mwsec::Status remove_user_from_role(const std::string& user,
                                      const std::string& jndi_name,
                                      const std::string& role);

  using Method = std::function<std::string(const std::string& user,
                                           const std::string& args)>;
  mwsec::Status install_method(const std::string& jndi_name,
                               const std::string& bean_name,
                               const std::string& method, Method impl);

  // --- invocation ---------------------------------------------------------
  /// Container-managed invocation: JNDI lookup, method-permission check,
  /// then the bean method runs.
  mwsec::Result<std::string> invoke(const std::string& user,
                                    const std::string& jndi_name,
                                    const std::string& bean_name,
                                    const std::string& method,
                                    const std::string& args = {});

  /// JNDI lookup: bean names bound under a container path.
  mwsec::Result<std::vector<std::string>> lookup(
      const std::string& jndi_name) const;

  /// The RBAC domain name for one of this server's containers.
  std::string domain_of(const std::string& jndi_name) const;
  std::vector<std::string> containers() const;

  // --- SecuritySystem -------------------------------------------------------
  std::string kind() const override { return "EJB"; }
  std::string name() const override { return host_ + "/" + server_name_; }
  rbac::Policy export_policy() const override;
  mwsec::Result<ImportStats> import_policy(const rbac::Policy& p) override;
  mwsec::Status remove_assignment(const rbac::RoleAssignment& a) override;
  bool mediate(const std::string& user, const std::string& object_type,
               const std::string& permission) const override;
  std::vector<Component> components() const override;

 private:
  struct Container {
    std::map<std::string, BeanDescriptor> beans;
    std::map<std::string, std::set<std::string>> role_members;  // role->users
    std::map<std::string, std::map<std::string, Method>> methods;  // bean->m
  };

  bool mediate_locked(const std::string& user, const Container& c,
                      const BeanDescriptor& bean,
                      const std::string& method) const;
  void record(const std::string& user, const std::string& action, bool allowed,
              const std::string& detail = {}) const;
  /// Reverse of domain_of: container path if `domain` names one of ours.
  mwsec::Result<std::string> container_of_domain(
      const std::string& domain) const;

  std::string host_;
  std::string server_name_;
  AuditLog* audit_;

  // Held behind unique_ptr so simulator instances are movable
  // (fixtures build them in factory functions); moving while other
  // threads hold references is, as always, a race.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::set<std::string> users_;
  std::map<std::string, Container> containers_;  // jndi path -> container
};

}  // namespace mwsec::middleware::ejb
