#include "middleware/ejb/container.hpp"

#include "util/strings.hpp"

namespace mwsec::middleware::ejb {

Server::Server(std::string host, std::string server_name, AuditLog* audit)
    : host_(std::move(host)), server_name_(std::move(server_name)),
      audit_(audit) {}

mwsec::Status Server::create_container(const std::string& jndi_name) {
  if (jndi_name.empty()) {
    return Error::make("JNDI name must be non-empty", "ejb");
  }
  std::scoped_lock lock(*mu_);
  if (!containers_.emplace(jndi_name, Container{}).second) {
    return Error::make("JNDI name already bound: " + jndi_name, "ejb");
  }
  return {};
}

mwsec::Status Server::deploy(const std::string& jndi_name,
                             BeanDescriptor bean) {
  if (bean.bean_name.empty()) {
    return Error::make("bean needs a name", "ejb");
  }
  for (const auto& [method, roles] : bean.method_permissions) {
    for (const auto& role : roles) {
      if (!bean.security_roles.count(role)) {
        return Error::make("method-permission for " + bean.bean_name + "." +
                               method + " references undeclared role " + role,
                           "ejb");
      }
    }
    (void)method;
  }
  std::scoped_lock lock(*mu_);
  auto it = containers_.find(jndi_name);
  if (it == containers_.end()) {
    return Error::make("no container at " + jndi_name, "ejb");
  }
  if (!it->second.beans.emplace(bean.bean_name, bean).second) {
    return Error::make("bean already deployed: " + bean.bean_name, "ejb");
  }
  return {};
}

mwsec::Status Server::register_user(const std::string& user) {
  if (user.empty()) return Error::make("user must be non-empty", "ejb");
  std::scoped_lock lock(*mu_);
  users_.insert(user);
  return {};
}

mwsec::Status Server::add_user_to_role(const std::string& user,
                                       const std::string& jndi_name,
                                       const std::string& role) {
  std::scoped_lock lock(*mu_);
  if (!users_.count(user)) {
    return Error::make("unknown user: " + user +
                           " (users are server-global; register first)",
                       "ejb");
  }
  auto it = containers_.find(jndi_name);
  if (it == containers_.end()) {
    return Error::make("no container at " + jndi_name, "ejb");
  }
  // The role must be declared by some bean in the container.
  bool declared = false;
  for (const auto& [_, bean] : it->second.beans) {
    if (bean.security_roles.count(role)) {
      declared = true;
      break;
    }
  }
  if (!declared) {
    return Error::make("role " + role + " is not declared by any bean in " +
                           jndi_name,
                       "ejb");
  }
  it->second.role_members[role].insert(user);
  return {};
}

mwsec::Status Server::remove_user_from_role(const std::string& user,
                                            const std::string& jndi_name,
                                            const std::string& role) {
  std::scoped_lock lock(*mu_);
  auto it = containers_.find(jndi_name);
  if (it == containers_.end()) {
    return Error::make("no container at " + jndi_name, "ejb");
  }
  auto rit = it->second.role_members.find(role);
  if (rit == it->second.role_members.end() || rit->second.erase(user) == 0) {
    return Error::make(user + " is not in role " + role, "ejb");
  }
  return {};
}

mwsec::Status Server::install_method(const std::string& jndi_name,
                                     const std::string& bean_name,
                                     const std::string& method, Method impl) {
  std::scoped_lock lock(*mu_);
  auto it = containers_.find(jndi_name);
  if (it == containers_.end()) {
    return Error::make("no container at " + jndi_name, "ejb");
  }
  if (!it->second.beans.count(bean_name)) {
    return Error::make("no such bean: " + bean_name, "ejb");
  }
  it->second.methods[bean_name][method] = std::move(impl);
  return {};
}

bool Server::mediate_locked(const std::string& user, const Container& c,
                            const BeanDescriptor& bean,
                            const std::string& method) const {
  // <unchecked/>: any authenticated (i.e. registered) user may call.
  if (bean.unchecked_methods.count(method)) return users_.count(user) > 0;
  auto mp = bean.method_permissions.find(method);
  if (mp == bean.method_permissions.end()) return false;  // deny-by-default
  for (const auto& role : mp->second) {
    auto rm = c.role_members.find(role);
    if (rm != c.role_members.end() && rm->second.count(user)) return true;
  }
  return false;
}

void Server::record(const std::string& user, const std::string& action,
                    bool allowed, const std::string& detail) const {
  if (audit_ != nullptr) {
    audit_->record(AuditEvent{name(), user, action, allowed, detail});
  }
}

mwsec::Result<std::string> Server::invoke(const std::string& user,
                                          const std::string& jndi_name,
                                          const std::string& bean_name,
                                          const std::string& method,
                                          const std::string& args) {
  Method impl;
  {
    std::scoped_lock lock(*mu_);
    auto it = containers_.find(jndi_name);
    if (it == containers_.end()) {
      return Error::make("javax.naming.NameNotFoundException: " + jndi_name,
                         "ejb");
    }
    auto bit = it->second.beans.find(bean_name);
    if (bit == it->second.beans.end()) {
      return Error::make("no such bean: " + bean_name, "ejb");
    }
    bool ok = mediate_locked(user, it->second, bit->second, method);
    record(user, bean_name + "." + method, ok);
    if (!ok) {
      return Error::make("java.rmi.AccessException: " + user +
                             " may not call " + bean_name + "." + method,
                         "denied");
    }
    auto ms = it->second.methods.find(bean_name);
    if (ms != it->second.methods.end()) {
      auto mi = ms->second.find(method);
      if (mi != ms->second.end()) impl = mi->second;
    }
    if (!impl) {
      return Error::make("method not installed: " + bean_name + "." + method,
                         "ejb");
    }
  }
  return impl(user, args);
}

mwsec::Result<std::vector<std::string>> Server::lookup(
    const std::string& jndi_name) const {
  std::scoped_lock lock(*mu_);
  auto it = containers_.find(jndi_name);
  if (it == containers_.end()) {
    return Error::make("javax.naming.NameNotFoundException: " + jndi_name,
                       "ejb");
  }
  std::vector<std::string> out;
  for (const auto& [bean_name, _] : it->second.beans) out.push_back(bean_name);
  return out;
}

std::string Server::domain_of(const std::string& jndi_name) const {
  return host_ + "/" + server_name_ + "/" + jndi_name;
}

std::vector<std::string> Server::containers() const {
  std::scoped_lock lock(*mu_);
  std::vector<std::string> out;
  for (const auto& [path, _] : containers_) out.push_back(path);
  return out;
}

mwsec::Result<std::string> Server::container_of_domain(
    const std::string& domain) const {
  const std::string prefix = host_ + "/" + server_name_ + "/";
  if (!util::starts_with(domain, prefix)) {
    return Error::make("domain " + domain + " is not served by " + name(),
                       "ejb");
  }
  return domain.substr(prefix.size());
}

rbac::Policy Server::export_policy() const {
  std::scoped_lock lock(*mu_);
  rbac::Policy p;
  for (const auto& [jndi, container] : containers_) {
    const std::string domain = host_ + "/" + server_name_ + "/" + jndi;
    for (const auto& [bean_name, bean] : container.beans) {
      for (const auto& [method, roles] : bean.method_permissions) {
        for (const auto& role : roles) {
          p.grant(domain, role, bean_name, method).ok();
        }
      }
    }
    for (const auto& [role, users] : container.role_members) {
      for (const auto& user : users) {
        p.assign(user, domain, role).ok();
      }
    }
  }
  return p;
}

mwsec::Result<ImportStats> Server::import_policy(const rbac::Policy& p) {
  ImportStats stats;
  std::scoped_lock lock(*mu_);
  auto find_container = [&](const std::string& domain) -> Container* {
    const std::string prefix = host_ + "/" + server_name_ + "/";
    if (!util::starts_with(domain, prefix)) return nullptr;
    std::string jndi = domain.substr(prefix.size());
    // Auto-create the container: commissioning may precede deployment.
    return &containers_[jndi];
  };
  for (const auto& g : p.grants()) {
    Container* c = find_container(g.domain);
    if (c == nullptr) {
      stats.skipped.push_back("grant for foreign domain " + g.domain);
      continue;
    }
    BeanDescriptor& bean = c->beans[g.object_type];
    if (bean.bean_name.empty()) bean.bean_name = g.object_type;
    bean.security_roles.insert(g.role);
    bean.method_permissions[g.permission].insert(g.role);
    ++stats.grants_applied;
  }
  for (const auto& a : p.assignments()) {
    Container* c = find_container(a.domain);
    if (c == nullptr) {
      stats.skipped.push_back("assignment for foreign domain " + a.domain);
      continue;
    }
    users_.insert(a.user);
    c->role_members[a.role].insert(a.user);
    ++stats.assignments_applied;
  }
  return stats;
}

mwsec::Status Server::remove_assignment(const rbac::RoleAssignment& a) {
  auto jndi = container_of_domain(a.domain);
  if (!jndi.ok()) return jndi.error();
  return remove_user_from_role(a.user, *jndi, a.role);
}

bool Server::mediate(const std::string& user, const std::string& object_type,
                     const std::string& permission) const {
  std::scoped_lock lock(*mu_);
  for (const auto& [_, container] : containers_) {
    auto bit = container.beans.find(object_type);
    if (bit == container.beans.end()) continue;
    if (mediate_locked(user, container, bit->second, permission)) {
      record(user, object_type + ":" + permission, true, "mediate");
      return true;
    }
  }
  record(user, object_type + ":" + permission, false, "mediate");
  return false;
}

std::vector<Component> Server::components() const {
  std::scoped_lock lock(*mu_);
  std::vector<Component> out;
  for (const auto& [jndi, container] : containers_) {
    for (const auto& [bean_name, bean] : container.beans) {
      for (const auto& [method, _] : bean.method_permissions) {
        out.push_back(Component{"ejb://" + name() + "/" + jndi + "/" +
                                    bean_name + "#" + method,
                                bean_name, method, bean.description});
      }
    }
  }
  return out;
}

}  // namespace mwsec::middleware::ejb
