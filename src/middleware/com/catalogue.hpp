// COM+ catalogue simulator (Section 2 of the paper; [20]).
//
// The paper's COM+ RBAC view: Windows NT Domains; roles unique to each
// domain; permissions exactly {Launch, Access, RunAs} over applications
// (AppIDs). The catalogue is the registry-like store a Windows server
// keeps per NT domain (Figure 8: "COM Catalogue security policy"), and
// which the KeyCOM service updates with authorisations derived from
// KeyNote credentials.
//
// Mapping onto the common RBAC model:
//   Domain     <- the NT domain name
//   Role       <- catalogue role (domain-scoped)
//   ObjectType <- application name (AppID)
//   Permission <- Launch | Access | RunAs
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "middleware/common/audit.hpp"
#include "middleware/common/system.hpp"

namespace mwsec::middleware::com {

inline constexpr const char* kLaunch = "Launch";
inline constexpr const char* kAccess = "Access";
inline constexpr const char* kRunAs = "RunAs";

/// True for the three COM permission verbs.
bool is_com_permission(const std::string& permission);

/// A registered COM application: its AppID plus the methods exposed when a
/// client Accesses it. Methods are the units the WebCom IDE palettes.
struct Application {
  std::string app_id;  // e.g. "SalariesDB"
  std::string description;
  std::set<std::string> methods;
};

class Catalogue final : public SecuritySystem {
 public:
  /// A catalogue serves one Windows NT domain on one host.
  Catalogue(std::string host, std::string nt_domain,
            AuditLog* audit = nullptr);

  // --- native administration ------------------------------------------------
  mwsec::Status register_application(Application app);
  mwsec::Status define_role(const std::string& role);
  /// Grant `role` a COM permission (Launch/Access/RunAs) on `app_id`.
  mwsec::Status grant(const std::string& role, const std::string& app_id,
                      const std::string& permission);
  mwsec::Status add_user_to_role(const std::string& user,
                                 const std::string& role);
  mwsec::Status remove_user_from_role(const std::string& user,
                                      const std::string& role);

  /// Install a handler for a method of an application (the "business
  /// logic"); invoked through launch()/call() under mediation.
  using Handler = std::function<std::string(const std::string& user,
                                            const std::string& args)>;
  mwsec::Status install_handler(const std::string& app_id,
                                const std::string& method, Handler handler);

  // --- native invocation path -------------------------------------------
  /// Configure the account an application executes under ("RunAs" in the
  /// COM+ catalogue). The configuring user must hold the RunAs permission
  /// on the application.
  mwsec::Status set_run_as(const std::string& configurer,
                           const std::string& app_id,
                           const std::string& account);
  /// The configured RunAs account; "interactive user" when unset.
  std::string run_as(const std::string& app_id) const;

  /// DCOM-style activation: requires the Launch permission. Reports the
  /// identity the application runs under.
  mwsec::Result<std::string> launch(const std::string& user,
                                    const std::string& app_id);
  /// Method call on a running application: requires Access.
  mwsec::Result<std::string> call(const std::string& user,
                                  const std::string& app_id,
                                  const std::string& method,
                                  const std::string& args = {});

  const std::string& nt_domain() const { return nt_domain_; }

  // --- SecuritySystem ---------------------------------------------------
  std::string kind() const override { return "COM+"; }
  std::string name() const override { return host_ + "/" + nt_domain_; }
  rbac::Policy export_policy() const override;
  mwsec::Result<ImportStats> import_policy(const rbac::Policy& p) override;
  mwsec::Status remove_assignment(const rbac::RoleAssignment& a) override;
  bool mediate(const std::string& user, const std::string& object_type,
               const std::string& permission) const override;
  std::vector<Component> components() const override;

 private:
  bool mediate_locked(const std::string& user, const std::string& app_id,
                      const std::string& permission) const;
  void record(const std::string& user, const std::string& action,
              bool allowed, const std::string& detail = {}) const;

  std::string host_;
  std::string nt_domain_;
  AuditLog* audit_;

  // Held behind unique_ptr so simulator instances are movable
  // (fixtures build them in factory functions); moving while other
  // threads hold references is, as always, a race.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::map<std::string, Application> applications_;
  std::set<std::string> roles_;
  // role -> app_id -> permissions
  std::map<std::string, std::map<std::string, std::set<std::string>>> grants_;
  // role -> users
  std::map<std::string, std::set<std::string>> members_;
  // app_id -> method -> handler
  std::map<std::string, std::map<std::string, Handler>> handlers_;
  std::map<std::string, std::string> run_as_;  // app_id -> account
};

}  // namespace mwsec::middleware::com
