#include "middleware/com/catalogue.hpp"

namespace mwsec::middleware::com {

bool is_com_permission(const std::string& permission) {
  return permission == kLaunch || permission == kAccess ||
         permission == kRunAs;
}

Catalogue::Catalogue(std::string host, std::string nt_domain, AuditLog* audit)
    : host_(std::move(host)), nt_domain_(std::move(nt_domain)),
      audit_(audit) {}

mwsec::Status Catalogue::register_application(Application app) {
  if (app.app_id.empty()) {
    return Error::make("application needs an AppID", "com");
  }
  std::scoped_lock lock(*mu_);
  if (!applications_.emplace(app.app_id, app).second) {
    return Error::make("AppID already registered: " + app.app_id, "com");
  }
  return {};
}

mwsec::Status Catalogue::define_role(const std::string& role) {
  if (role.empty()) return Error::make("role name must be non-empty", "com");
  std::scoped_lock lock(*mu_);
  roles_.insert(role);
  return {};
}

mwsec::Status Catalogue::grant(const std::string& role,
                               const std::string& app_id,
                               const std::string& permission) {
  if (!is_com_permission(permission)) {
    return Error::make("not a COM permission: " + permission +
                           " (must be Launch, Access or RunAs)",
                       "com");
  }
  std::scoped_lock lock(*mu_);
  if (!roles_.count(role)) {
    return Error::make("undefined role: " + role, "com");
  }
  if (!applications_.count(app_id)) {
    return Error::make("unknown AppID: " + app_id, "com");
  }
  grants_[role][app_id].insert(permission);
  return {};
}

mwsec::Status Catalogue::add_user_to_role(const std::string& user,
                                          const std::string& role) {
  if (user.empty()) return Error::make("user must be non-empty", "com");
  std::scoped_lock lock(*mu_);
  if (!roles_.count(role)) {
    return Error::make("undefined role: " + role, "com");
  }
  members_[role].insert(user);
  return {};
}

mwsec::Status Catalogue::remove_user_from_role(const std::string& user,
                                               const std::string& role) {
  std::scoped_lock lock(*mu_);
  auto it = members_.find(role);
  if (it == members_.end() || it->second.erase(user) == 0) {
    return Error::make(user + " is not a member of " + role, "com");
  }
  return {};
}

mwsec::Status Catalogue::install_handler(const std::string& app_id,
                                         const std::string& method,
                                         Handler handler) {
  std::scoped_lock lock(*mu_);
  auto it = applications_.find(app_id);
  if (it == applications_.end()) {
    return Error::make("unknown AppID: " + app_id, "com");
  }
  it->second.methods.insert(method);
  handlers_[app_id][method] = std::move(handler);
  return {};
}

bool Catalogue::mediate_locked(const std::string& user,
                               const std::string& app_id,
                               const std::string& permission) const {
  for (const auto& [role, users] : members_) {
    if (!users.count(user)) continue;
    auto git = grants_.find(role);
    if (git == grants_.end()) continue;
    auto ait = git->second.find(app_id);
    if (ait == git->second.end()) continue;
    if (ait->second.count(permission)) return true;
  }
  return false;
}

void Catalogue::record(const std::string& user, const std::string& action,
                       bool allowed, const std::string& detail) const {
  if (audit_ != nullptr) {
    audit_->record(AuditEvent{name(), user, action, allowed, detail});
  }
}

mwsec::Status Catalogue::set_run_as(const std::string& configurer,
                                    const std::string& app_id,
                                    const std::string& account) {
  std::scoped_lock lock(*mu_);
  if (!applications_.count(app_id)) {
    return Error::make("unknown AppID: " + app_id, "com");
  }
  bool ok = mediate_locked(configurer, app_id, kRunAs);
  record(configurer, app_id + ":RunAs", ok, "configure run-as");
  if (!ok) {
    return Error::make("E_ACCESSDENIED: " + configurer +
                           " may not configure RunAs for " + app_id,
                       "denied");
  }
  run_as_[app_id] = account;
  return {};
}

std::string Catalogue::run_as(const std::string& app_id) const {
  std::scoped_lock lock(*mu_);
  auto it = run_as_.find(app_id);
  return it == run_as_.end() ? std::string("interactive user") : it->second;
}

mwsec::Result<std::string> Catalogue::launch(const std::string& user,
                                             const std::string& app_id) {
  std::scoped_lock lock(*mu_);
  if (!applications_.count(app_id)) {
    return Error::make("unknown AppID: " + app_id, "com");
  }
  bool ok = mediate_locked(user, app_id, kLaunch);
  record(user, app_id + ":Launch", ok);
  if (!ok) {
    return Error::make("E_ACCESSDENIED: " + user + " may not launch " +
                           app_id,
                       "denied");
  }
  auto ra = run_as_.find(app_id);
  return "activated " + app_id + " as " +
         (ra == run_as_.end() ? std::string("interactive user") : ra->second);
}

mwsec::Result<std::string> Catalogue::call(const std::string& user,
                                           const std::string& app_id,
                                           const std::string& method,
                                           const std::string& args) {
  Handler handler;
  {
    std::scoped_lock lock(*mu_);
    if (!applications_.count(app_id)) {
      return Error::make("unknown AppID: " + app_id, "com");
    }
    bool ok = mediate_locked(user, app_id, kAccess);
    record(user, app_id + ":" + method, ok);
    if (!ok) {
      return Error::make("E_ACCESSDENIED: " + user + " may not access " +
                             app_id,
                         "denied");
    }
    auto ait = handlers_.find(app_id);
    if (ait != handlers_.end()) {
      auto mit = ait->second.find(method);
      if (mit != ait->second.end()) handler = mit->second;
    }
    if (!handler) {
      return Error::make("no such method: " + app_id + "." + method, "com");
    }
  }
  // Run business logic outside the catalogue lock (CP.22: never call
  // unknown code while holding a lock).
  return handler(user, args);
}

rbac::Policy Catalogue::export_policy() const {
  std::scoped_lock lock(*mu_);
  rbac::Policy p;
  for (const auto& [role, apps] : grants_) {
    for (const auto& [app_id, permissions] : apps) {
      for (const auto& permission : permissions) {
        p.grant(nt_domain_, role, app_id, permission).ok();
      }
    }
  }
  for (const auto& [role, users] : members_) {
    for (const auto& user : users) {
      p.assign(user, nt_domain_, role).ok();
    }
  }
  return p;
}

mwsec::Result<ImportStats> Catalogue::import_policy(const rbac::Policy& p) {
  ImportStats stats;
  std::scoped_lock lock(*mu_);
  for (const auto& g : p.grants()) {
    if (g.domain != nt_domain_) {
      stats.skipped.push_back("grant for foreign domain " + g.domain);
      continue;
    }
    if (!is_com_permission(g.permission)) {
      stats.skipped.push_back("permission '" + g.permission +
                              "' is not expressible in COM+ (" + g.domain +
                              "/" + g.role + " on " + g.object_type + ")");
      continue;
    }
    // Auto-register unknown AppIDs: commissioning a policy for an app that
    // is not yet installed records the authorisation for when it is.
    applications_.emplace(g.object_type,
                          Application{g.object_type, "imported", {}});
    roles_.insert(g.role);
    grants_[g.role][g.object_type].insert(g.permission);
    ++stats.grants_applied;
  }
  for (const auto& a : p.assignments()) {
    if (a.domain != nt_domain_) {
      stats.skipped.push_back("assignment for foreign domain " + a.domain);
      continue;
    }
    roles_.insert(a.role);
    members_[a.role].insert(a.user);
    ++stats.assignments_applied;
  }
  return stats;
}

mwsec::Status Catalogue::remove_assignment(const rbac::RoleAssignment& a) {
  if (a.domain != nt_domain_) {
    return Error::make("domain " + a.domain + " is not served by " + name(),
                       "com");
  }
  return remove_user_from_role(a.user, a.role);
}

bool Catalogue::mediate(const std::string& user,
                        const std::string& object_type,
                        const std::string& permission) const {
  std::scoped_lock lock(*mu_);
  bool ok = is_com_permission(permission) &&
            mediate_locked(user, object_type, permission);
  record(user, object_type + ":" + permission, ok, "mediate");
  return ok;
}

std::vector<Component> Catalogue::components() const {
  std::scoped_lock lock(*mu_);
  std::vector<Component> out;
  for (const auto& [app_id, app] : applications_) {
    // Launching the application is itself a schedulable component...
    out.push_back(Component{"com://" + name() + "/" + app_id, app_id, kLaunch,
                            app.description});
    // ...and so is each method (requiring Access).
    for (const auto& method : app.methods) {
      out.push_back(Component{"com://" + name() + "/" + app_id + "#" + method,
                              app_id, kAccess, app.description});
    }
  }
  return out;
}

}  // namespace mwsec::middleware::com
