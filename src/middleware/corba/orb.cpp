#include "middleware/corba/orb.hpp"

namespace mwsec::middleware::corba {

Orb::Orb(std::string machine, std::string orb_name, AuditLog* audit)
    : machine_(std::move(machine)), orb_name_(std::move(orb_name)),
      audit_(audit) {}

mwsec::Status Orb::define_interface(InterfaceDef def) {
  if (def.name.empty()) {
    return Error::make("interface needs a name", "corba");
  }
  std::scoped_lock lock(*mu_);
  if (!interfaces_.emplace(def.name, def).second) {
    return Error::make("interface already defined: " + def.name, "corba");
  }
  return {};
}

mwsec::Result<std::string> Orb::activate_object(
    const std::string& interface_name, Servant servant) {
  std::scoped_lock lock(*mu_);
  if (!interfaces_.count(interface_name)) {
    return Error::make("unknown interface: " + interface_name, "corba");
  }
  std::string ior = "IOR:" + machine_ + "/" + orb_name_ + "/" +
                    interface_name + "/" + std::to_string(next_object_id_++);
  objects_.emplace(ior, ActiveObject{interface_name, std::move(servant)});
  return ior;
}

mwsec::Status Orb::define_role(const std::string& role) {
  if (role.empty()) return Error::make("role name must be non-empty", "corba");
  std::scoped_lock lock(*mu_);
  roles_.insert(role);
  return {};
}

mwsec::Status Orb::grant(const std::string& role,
                         const std::string& interface_name,
                         const std::string& operation) {
  std::scoped_lock lock(*mu_);
  if (!roles_.count(role)) {
    return Error::make("undefined role: " + role, "corba");
  }
  auto it = interfaces_.find(interface_name);
  if (it == interfaces_.end()) {
    return Error::make("unknown interface: " + interface_name, "corba");
  }
  if (!it->second.operations.count(operation)) {
    return Error::make("interface " + interface_name +
                           " has no operation " + operation,
                       "corba");
  }
  grants_[role][interface_name].insert(operation);
  return {};
}

mwsec::Status Orb::add_user_to_role(const std::string& user,
                                    const std::string& role) {
  if (user.empty()) return Error::make("user must be non-empty", "corba");
  std::scoped_lock lock(*mu_);
  if (!roles_.count(role)) {
    return Error::make("undefined role: " + role, "corba");
  }
  members_[role].insert(user);
  return {};
}

mwsec::Status Orb::remove_user_from_role(const std::string& user,
                                         const std::string& role) {
  std::scoped_lock lock(*mu_);
  auto it = members_.find(role);
  if (it == members_.end() || it->second.erase(user) == 0) {
    return Error::make(user + " is not a member of " + role, "corba");
  }
  return {};
}

bool Orb::mediate_locked(const std::string& user,
                         const std::string& interface_name,
                         const std::string& operation) const {
  for (const auto& [role, users] : members_) {
    if (!users.count(user)) continue;
    auto git = grants_.find(role);
    if (git == grants_.end()) continue;
    auto iit = git->second.find(interface_name);
    if (iit == git->second.end()) continue;
    if (iit->second.count(operation)) return true;
  }
  return false;
}

void Orb::record(const std::string& user, const std::string& action,
                 bool allowed, const std::string& detail) const {
  if (audit_ != nullptr) {
    audit_->record(AuditEvent{name(), user, action, allowed, detail});
  }
}

mwsec::Result<std::string> Orb::invoke(const std::string& user,
                                       const std::string& ior,
                                       const std::string& operation,
                                       const std::string& args) {
  Servant servant;
  {
    std::scoped_lock lock(*mu_);
    auto it = objects_.find(ior);
    if (it == objects_.end()) {
      return Error::make("OBJECT_NOT_EXIST: " + ior, "corba");
    }
    const auto& obj = it->second;
    auto iface = interfaces_.find(obj.interface_name);
    if (iface == interfaces_.end() ||
        !iface->second.operations.count(operation)) {
      return Error::make("BAD_OPERATION: " + operation, "corba");
    }
    bool ok = mediate_locked(user, obj.interface_name, operation);
    record(user, obj.interface_name + "." + operation, ok);
    if (!ok) {
      return Error::make("NO_PERMISSION: " + user + " may not call " +
                             obj.interface_name + "." + operation,
                         "denied");
    }
    servant = obj.servant;
  }
  return servant(operation, args);
}

std::vector<std::string> Orb::iors_of(const std::string& interface_name) const {
  std::scoped_lock lock(*mu_);
  std::vector<std::string> out;
  for (const auto& [ior, obj] : objects_) {
    if (obj.interface_name == interface_name) out.push_back(ior);
  }
  return out;
}

rbac::Policy Orb::export_policy() const {
  std::scoped_lock lock(*mu_);
  rbac::Policy p;
  for (const auto& [role, ifaces] : grants_) {
    for (const auto& [iface, ops] : ifaces) {
      for (const auto& op : ops) {
        p.grant(domain(), role, iface, op).ok();
      }
    }
  }
  for (const auto& [role, users] : members_) {
    for (const auto& user : users) {
      p.assign(user, domain(), role).ok();
    }
  }
  return p;
}

mwsec::Result<ImportStats> Orb::import_policy(const rbac::Policy& p) {
  ImportStats stats;
  std::scoped_lock lock(*mu_);
  for (const auto& g : p.grants()) {
    if (g.domain != domain()) {
      stats.skipped.push_back("grant for foreign domain " + g.domain);
      continue;
    }
    // Auto-extend the interface repository: commissioning can precede the
    // IDL being loaded.
    InterfaceDef& def = interfaces_[g.object_type];
    if (def.name.empty()) def.name = g.object_type;
    def.operations.insert(g.permission);
    roles_.insert(g.role);
    grants_[g.role][g.object_type].insert(g.permission);
    ++stats.grants_applied;
  }
  for (const auto& a : p.assignments()) {
    if (a.domain != domain()) {
      stats.skipped.push_back("assignment for foreign domain " + a.domain);
      continue;
    }
    roles_.insert(a.role);
    members_[a.role].insert(a.user);
    ++stats.assignments_applied;
  }
  return stats;
}

mwsec::Status Orb::remove_assignment(const rbac::RoleAssignment& a) {
  if (a.domain != domain()) {
    return Error::make("domain " + a.domain + " is not served by " + name(),
                       "corba");
  }
  return remove_user_from_role(a.user, a.role);
}

bool Orb::mediate(const std::string& user, const std::string& object_type,
                  const std::string& permission) const {
  std::scoped_lock lock(*mu_);
  bool ok = mediate_locked(user, object_type, permission);
  record(user, object_type + ":" + permission, ok, "mediate");
  return ok;
}

std::vector<Component> Orb::components() const {
  std::scoped_lock lock(*mu_);
  std::vector<Component> out;
  for (const auto& [iface_name, def] : interfaces_) {
    for (const auto& op : def.operations) {
      out.push_back(Component{"corba://" + name() + "/" + iface_name + "#" + op,
                              iface_name, op, def.description});
    }
  }
  return out;
}

}  // namespace mwsec::middleware::corba
