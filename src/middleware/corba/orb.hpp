// CORBA ORB simulator with a CORBASec-like access policy (Section 2; [2]).
//
// The paper's CORBA RBAC view: Domain = machine name + ORB server name;
// roles unique to each domain; users members of one or many roles;
// permissions are method calls on objects of a given interface (object
// type).
//
// The simulator models: an interface repository (interface name ->
// operations), an object adapter binding object references (IORs) to
// servants implementing an interface, and an access policy interceptor
// consulted on every invocation — the moral equivalent of CORBASec
// AccessDecision.
//
// Mapping onto the common RBAC model:
//   Domain     <- machine "/" orb-name
//   Role       <- access-policy role
//   ObjectType <- interface (repository id)
//   Permission <- operation name
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "middleware/common/audit.hpp"
#include "middleware/common/system.hpp"

namespace mwsec::middleware::corba {

/// An entry in the interface repository.
struct InterfaceDef {
  std::string name;  // e.g. "SalariesDB"
  std::string description;
  std::set<std::string> operations;
};

class Orb final : public SecuritySystem {
 public:
  Orb(std::string machine, std::string orb_name, AuditLog* audit = nullptr);

  // --- interface repository & object adapter -----------------------------
  mwsec::Status define_interface(InterfaceDef def);

  using Servant = std::function<std::string(const std::string& operation,
                                            const std::string& args)>;
  /// Activate an object implementing `interface_name`; returns its IOR.
  mwsec::Result<std::string> activate_object(const std::string& interface_name,
                                             Servant servant);

  // --- access policy ------------------------------------------------------
  mwsec::Status define_role(const std::string& role);
  /// Allow `role` to call `operation` on objects of `interface_name`.
  mwsec::Status grant(const std::string& role,
                      const std::string& interface_name,
                      const std::string& operation);
  mwsec::Status add_user_to_role(const std::string& user,
                                 const std::string& role);
  mwsec::Status remove_user_from_role(const std::string& user,
                                      const std::string& role);

  // --- invocation (IIOP stand-in) ----------------------------------------
  /// Invoke `operation` on the object behind `ior` as `user`; the access
  /// interceptor runs first, then the servant.
  mwsec::Result<std::string> invoke(const std::string& user,
                                    const std::string& ior,
                                    const std::string& operation,
                                    const std::string& args = {});

  /// Objects currently activated for an interface.
  std::vector<std::string> iors_of(const std::string& interface_name) const;

  std::string domain() const { return machine_ + "/" + orb_name_; }

  // --- SecuritySystem -------------------------------------------------------
  std::string kind() const override { return "CORBA"; }
  std::string name() const override { return domain(); }
  rbac::Policy export_policy() const override;
  mwsec::Result<ImportStats> import_policy(const rbac::Policy& p) override;
  mwsec::Status remove_assignment(const rbac::RoleAssignment& a) override;
  bool mediate(const std::string& user, const std::string& object_type,
               const std::string& permission) const override;
  std::vector<Component> components() const override;

 private:
  struct ActiveObject {
    std::string interface_name;
    Servant servant;
  };

  bool mediate_locked(const std::string& user,
                      const std::string& interface_name,
                      const std::string& operation) const;
  void record(const std::string& user, const std::string& action, bool allowed,
              const std::string& detail = {}) const;

  std::string machine_;
  std::string orb_name_;
  AuditLog* audit_;

  // Held behind unique_ptr so simulator instances are movable
  // (fixtures build them in factory functions); moving while other
  // threads hold references is, as always, a race.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::map<std::string, InterfaceDef> interfaces_;
  std::map<std::string, ActiveObject> objects_;  // ior -> object
  std::set<std::string> roles_;
  // role -> interface -> operations
  std::map<std::string, std::map<std::string, std::set<std::string>>> grants_;
  std::map<std::string, std::set<std::string>> members_;  // role -> users
  std::uint64_t next_object_id_ = 1;
};

}  // namespace mwsec::middleware::corba
