// User <-> principal directory.
//
// Middleware policies speak about *users* ("Alice"); KeyNote credentials
// speak about *keys*. The directory maps between them. The paper's
// figures use opaque tags (Kalice); deployments use a KeyRing so every
// user has a real keypair and membership credentials can be signed.
#pragma once

#include <map>
#include <string>

#include "crypto/keys.hpp"
#include "util/result.hpp"

namespace mwsec::translate {

class PrincipalDirectory {
 public:
  virtual ~PrincipalDirectory() = default;
  /// Principal string for a middleware user.
  virtual std::string principal_of(const std::string& user) = 0;
  /// Middleware user for a principal string, if known.
  virtual mwsec::Result<std::string> user_of(const std::string& principal) = 0;
};

/// Paper-style directory: user "Alice" <-> principal "Kalice".
class OpaqueDirectory final : public PrincipalDirectory {
 public:
  std::string principal_of(const std::string& user) override {
    return "K" + user;
  }
  mwsec::Result<std::string> user_of(const std::string& principal) override {
    if (principal.size() < 2 || principal[0] != 'K') {
      return Error::make("not an opaque user principal: " + principal,
                         "directory");
    }
    return principal.substr(1);
  }
};

/// Real-key directory backed by a KeyRing: mints an RSA identity per user.
class KeyRingDirectory final : public PrincipalDirectory {
 public:
  explicit KeyRingDirectory(crypto::KeyRing& ring) : ring_(ring) {}

  std::string principal_of(const std::string& user) override {
    return ring_.principal("K" + user);
  }
  mwsec::Result<std::string> user_of(const std::string& principal) override {
    auto name = ring_.name_of(principal);
    if (!name.ok()) return name;
    if (name->size() < 2 || (*name)[0] != 'K') {
      return Error::make("principal does not denote a user: " + *name,
                         "directory");
    }
    return name->substr(1);
  }
  /// The signing identity for a user (to let users re-delegate).
  const crypto::Identity& identity_of(const std::string& user) {
    return ring_.identity("K" + user);
  }

 private:
  crypto::KeyRing& ring_;
};

}  // namespace mwsec::translate
