#include "translate/similarity.hpp"

#include <algorithm>
#include <cctype>

#include "util/strings.hpp"

namespace mwsec::translate {

double EditDistanceMetric::score(const std::string& a,
                                 const std::string& b) const {
  std::string la = util::to_lower(a), lb = util::to_lower(b);
  if (la.empty() && lb.empty()) return 1.0;
  std::size_t d = util::edit_distance(la, lb);
  std::size_t denom = std::max(la.size(), lb.size());
  return 1.0 - static_cast<double>(d) / static_cast<double>(denom);
}

std::set<std::string> TokenSetMetric::tokens(const std::string& s) {
  std::set<std::string> out;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      out.insert(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < s.size(); ++i) {
    unsigned char c = static_cast<unsigned char>(s[i]);
    if (c == '_' || c == '-' || c == '.' || c == '/' || c == ' ') {
      flush();
      continue;
    }
    // camelCase boundary: lower followed by upper.
    if (std::isupper(c) && i > 0 &&
        std::islower(static_cast<unsigned char>(s[i - 1]))) {
      flush();
    }
    current.push_back(static_cast<char>(std::tolower(c)));
  }
  flush();
  return out;
}

double TokenSetMetric::score(const std::string& a, const std::string& b) const {
  auto ta = tokens(a), tb = tokens(b);
  if (ta.empty() && tb.empty()) return 1.0;
  std::size_t inter = 0;
  for (const auto& t : ta) inter += tb.count(t);
  std::size_t uni = ta.size() + tb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

SynonymMetric::SynonymMetric() {
  add_group({"read", "get", "select", "view", "fetch", "access"});
  add_group({"write", "set", "update", "modify", "put"});
  add_group({"create", "insert", "add", "new"});
  add_group({"delete", "remove", "drop", "destroy"});
  add_group({"execute", "launch", "run", "start", "invoke", "call"});
  add_group({"admin", "administer", "manage", "runas"});
}

void SynonymMetric::add_group(std::vector<std::string> synonyms) {
  int id = next_group_++;
  for (auto& s : synonyms) {
    group_of_[util::to_lower(s)] = id;
  }
}

double SynonymMetric::score(const std::string& a, const std::string& b) const {
  std::string la = util::to_lower(a), lb = util::to_lower(b);
  if (la == lb) return 1.0;
  auto ia = group_of_.find(la);
  auto ib = group_of_.find(lb);
  if (ia != group_of_.end() && ib != group_of_.end() &&
      ia->second == ib->second) {
    return 1.0;
  }
  // Fall back on token-level synonymy: any token pair in a common group.
  for (const auto& ta : TokenSetMetric::tokens(a)) {
    for (const auto& tb : TokenSetMetric::tokens(b)) {
      auto ja = group_of_.find(ta);
      auto jb = group_of_.find(tb);
      if (ja != group_of_.end() && jb != group_of_.end() &&
          ja->second == jb->second) {
        return 0.9;
      }
      if (ta == tb) return 0.8;
    }
  }
  return 0.0;
}

CombinedMetric CombinedMetric::standard() {
  CombinedMetric m;
  m.add(std::make_shared<EditDistanceMetric>());
  m.add(std::make_shared<TokenSetMetric>());
  m.add(std::make_shared<SynonymMetric>());
  return m;
}

void CombinedMetric::add(std::shared_ptr<SimilarityMetric> metric,
                         double weight) {
  parts_.emplace_back(std::move(metric), weight);
}

double CombinedMetric::score(const std::string& a, const std::string& b) const {
  double best = 0.0;
  for (const auto& [metric, weight] : parts_) {
    best = std::max(best, weight * metric->score(a, b));
  }
  return std::min(best, 1.0);
}

std::optional<Match> best_match(const SimilarityMetric& metric,
                                const std::string& term,
                                const std::vector<std::string>& candidates,
                                double threshold) {
  std::optional<Match> best;
  for (const auto& c : candidates) {
    double s = metric.score(term, c);
    if (s >= threshold && (!best || s > best->score)) {
      best = Match{c, s};
    }
  }
  return best;
}

}  // namespace mwsec::translate
