#include "translate/keynote_to_rbac.hpp"

#include "keynote/eval.hpp"
#include "keynote/query.hpp"
#include "translate/rbac_to_keynote.hpp"

namespace mwsec::translate {

namespace {

/// Record `literal` into the vocabulary bucket matching `attr`.
void bucket_literal(Vocabulary& v, const std::string& attr,
                    const std::string& literal) {
  if (attr == "Domain") v.domains.insert(literal);
  else if (attr == "Role") v.roles.insert(literal);
  else if (attr == "ObjectType") v.object_types.insert(literal);
  else if (attr == "Permission") v.permissions.insert(literal);
}

void walk_test(const keynote::Test& t, Vocabulary& v);

void walk_program(const keynote::Program& p, Vocabulary& v) {
  for (const auto& clause : p.clauses) {
    walk_test(*clause.test, v);
    if (clause.program != nullptr) walk_program(*clause.program, v);
  }
}

void walk_test(const keynote::Test& t, Vocabulary& v) {
  using Kind = keynote::Test::Kind;
  switch (t.kind) {
    case Kind::kAnd:
    case Kind::kOr:
      walk_test(*t.ta, v);
      walk_test(*t.tb, v);
      break;
    case Kind::kNot:
      walk_test(*t.ta, v);
      break;
    case Kind::kStrCmp: {
      // attr == "literal" in either operand order.
      const keynote::StringExpr& l = *t.sl;
      const keynote::StringExpr& r = *t.sr;
      if (l.kind == keynote::StringExpr::Kind::kAttr &&
          r.kind == keynote::StringExpr::Kind::kLiteral) {
        bucket_literal(v, l.text, r.text);
      } else if (r.kind == keynote::StringExpr::Kind::kAttr &&
                 l.kind == keynote::StringExpr::Kind::kLiteral) {
        bucket_literal(v, r.text, l.text);
      }
      break;
    }
    default:
      break;
  }
}

}  // namespace

void Vocabulary::merge(const Vocabulary& other) {
  domains.insert(other.domains.begin(), other.domains.end());
  roles.insert(other.roles.begin(), other.roles.end());
  object_types.insert(other.object_types.begin(), other.object_types.end());
  permissions.insert(other.permissions.begin(), other.permissions.end());
}

Vocabulary extract_vocabulary(
    const std::vector<keynote::Assertion>& assertions) {
  Vocabulary v;
  for (const auto& a : assertions) {
    walk_program(a.conditions(), v);
  }
  return v;
}

mwsec::Result<SynthesisResult> synthesize_policy(
    const std::vector<keynote::Assertion>& policy_assertions,
    const std::vector<keynote::Assertion>& membership_credentials,
    const std::string& admin_principal, PrincipalDirectory& directory,
    const Vocabulary& extra_vocabulary) {
  SynthesisResult out;

  Vocabulary vocab = extract_vocabulary(policy_assertions);
  vocab.merge(extract_vocabulary(membership_credentials));
  vocab.merge(extra_vocabulary);

  // HasPermission: semantic probe of every vocabulary combination. The
  // admin key is the requester, matching Figure 5's licensing of KWebCom.
  const keynote::ComplianceValueSet values;
  for (const auto& object_type : vocab.object_types) {
    for (const auto& domain : vocab.domains) {
      for (const auto& role : vocab.roles) {
        for (const auto& permission : vocab.permissions) {
          keynote::Query q;
          q.action_authorizers = {admin_principal};
          q.env.set(kAppDomainAttr, kAppDomainValue);
          q.env.set("ObjectType", object_type);
          q.env.set("Domain", domain);
          q.env.set("Role", role);
          q.env.set("Permission", permission);
          auto r = keynote::evaluate(policy_assertions, {}, q);
          if (!r.ok()) return r.error();
          if (r->authorized()) {
            out.policy.grant(domain, role, object_type, permission).ok();
          }
        }
      }
    }
  }

  // UserRole: each membership credential authored by the admin key with a
  // single resolvable licensee contributes the (domain, role) pairs its
  // own conditions accept.
  for (const auto& cred : membership_credentials) {
    if (cred.authorizer() != admin_principal) {
      out.unresolved.push_back("credential not authored by the admin key (" +
                               cred.authorizer() + ")");
      continue;
    }
    if (cred.licensees().kind != keynote::LicenseeExpr::Kind::kPrincipal) {
      out.unresolved.push_back(
          "credential has a compound licensee expression");
      continue;
    }
    auto user = directory.user_of(cred.licensees().principal);
    if (!user.ok()) {
      out.unresolved.push_back("unknown principal " +
                               cred.licensees().principal);
      continue;
    }
    for (const auto& domain : vocab.domains) {
      for (const auto& role : vocab.roles) {
        auto lookup = [&](std::string_view name) -> std::string_view {
          if (name == kAppDomainAttr) return kAppDomainValue;
          if (name == "Domain") return domain;
          if (name == "Role") return role;
          if (const std::string* c = cred.find_constant(name)) return *c;
          return {};
        };
        std::size_t val = keynote::eval_conditions(cred.conditions(), values,
                                                   lookup);
        if (val == values.max_index()) {
          out.policy.assign(*user, domain, role).ok();
        }
      }
    }
  }
  return out;
}

}  // namespace mwsec::translate
