// Similarity metrics for imprecise policy translation (paper §4.3; Foley,
// "Supporting imprecise delegation in KeyNote using similarity measures"
// [13]). Migrating a policy between middlewares whose permission
// vocabularies differ (e.g. EJB method names vs COM+'s fixed
// Launch/Access/RunAs) is not a one-to-one mapping; the translation tools
// score candidate targets and pick the best match above a threshold.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace mwsec::translate {

/// A similarity metric scores term pairs in [0, 1]; 1 is identical.
class SimilarityMetric {
 public:
  virtual ~SimilarityMetric() = default;
  virtual double score(const std::string& a, const std::string& b) const = 0;
};

/// 1 - normalised Levenshtein distance, case-insensitive.
class EditDistanceMetric final : public SimilarityMetric {
 public:
  double score(const std::string& a, const std::string& b) const override;
};

/// Jaccard similarity of the camelCase/snake_case token sets, so
/// "GetSalary" ~ "get_salary_record" scores well.
class TokenSetMetric final : public SimilarityMetric {
 public:
  double score(const std::string& a, const std::string& b) const override;
  static std::set<std::string> tokens(const std::string& s);
};

/// Domain-knowledge synonym table: pairs in the same group score 1.
/// Ships with middleware permission synonyms (read/get/select/Access,
/// write/set/update, execute/launch/run/start...).
class SynonymMetric final : public SimilarityMetric {
 public:
  SynonymMetric();  // default middleware synonym groups
  void add_group(std::vector<std::string> synonyms);
  double score(const std::string& a, const std::string& b) const override;

 private:
  std::map<std::string, int> group_of_;  // lower-cased term -> group id
  int next_group_ = 0;
};

/// max over weighted component metrics.
class CombinedMetric final : public SimilarityMetric {
 public:
  /// Default: max(edit, token, synonym).
  static CombinedMetric standard();
  void add(std::shared_ptr<SimilarityMetric> metric, double weight = 1.0);
  double score(const std::string& a, const std::string& b) const override;

 private:
  std::vector<std::pair<std::shared_ptr<SimilarityMetric>, double>> parts_;
};

struct Match {
  std::string candidate;
  double score;
};

/// Best-scoring candidate at or above `threshold`, if any. Ties break to
/// the earlier candidate.
std::optional<Match> best_match(const SimilarityMetric& metric,
                                const std::string& term,
                                const std::vector<std::string>& candidates,
                                double threshold);

}  // namespace mwsec::translate
