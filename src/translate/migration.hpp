// Policy migration between heterogeneous middlewares (paper §4.3,
// Figure 9): export the source's native policy into the common RBAC
// model, remap domain names and (where vocabularies differ) permissions,
// and commission the result into the target.
//
// Two pipelines are provided:
//   * migrate()             — direct, through the RBAC interlingua;
//   * migrate_via_keynote() — the paper's full path: compile the source
//     policy to KeyNote credentials, then synthesise the RBAC relations
//     back from those credentials and commission them. This is what a
//     Figure 9 deployment actually ships across the network.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "middleware/common/system.hpp"
#include "translate/directory.hpp"
#include "translate/keynote_to_rbac.hpp"
#include "translate/rbac_to_keynote.hpp"
#include "translate/similarity.hpp"

namespace mwsec::translate {

struct MigrationOptions {
  /// Source domain -> target domain renames. Domains not mentioned are
  /// kept verbatim.
  std::map<std::string, std::string> domain_mapping;
  /// When non-empty, permissions are remapped onto this target vocabulary
  /// using the similarity metric (e.g. {"Launch","Access","RunAs"} when
  /// migrating into COM+).
  std::vector<std::string> target_permissions;
  double similarity_threshold = 0.5;
};

struct MigrationReport {
  middleware::ImportStats import_stats;
  /// permission renames applied: source -> (target, score).
  std::map<std::string, Match> permission_mapping;
  /// rows dropped because no target permission scored above threshold.
  std::vector<std::string> unmapped;
  /// intermediate RBAC policy that was commissioned into the target.
  rbac::Policy commissioned;
};

/// Apply domain and permission remapping to a policy.
rbac::Policy remap_policy(const rbac::Policy& source,
                          const MigrationOptions& options,
                          const SimilarityMetric& metric,
                          MigrationReport& report);

/// Direct migration through the RBAC interlingua.
mwsec::Result<MigrationReport> migrate(const middleware::SecuritySystem& source,
                                       middleware::SecuritySystem& target,
                                       const MigrationOptions& options = {});

/// Full KeyNote round trip: source policy -> KeyNote policy+credentials ->
/// synthesised RBAC -> target. Exercises exactly the interoperability path
/// of Figure 9 (legacy COM policy driving a replacement EJB configuration).
mwsec::Result<MigrationReport> migrate_via_keynote(
    const middleware::SecuritySystem& source,
    middleware::SecuritySystem& target, const crypto::Identity& admin,
    PrincipalDirectory& directory, const MigrationOptions& options = {});

}  // namespace mwsec::translate
