// KeyNote -> RBAC synthesis (paper §4.1 "Policy Configuration" and §4.2
// "Policy Comprehension" in the reverse direction): given a set of KeyNote
// assertions, reconstruct the RBAC relations they encode so they can be
// commissioned into a middleware's native policy store.
//
// Conditions programs are not invertible in general, so synthesis is
// *semantic*: a vocabulary of candidate Domains/Roles/ObjectTypes/
// Permissions is extracted from the assertions' own literals (plus any
// caller-supplied hints), and each candidate row is decided by actually
// evaluating the KeyNote assertions — the same interpretation the paper
// attributes to the translation tools.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "keynote/assertion.hpp"
#include "rbac/model.hpp"
#include "translate/directory.hpp"
#include "util/result.hpp"

namespace mwsec::translate {

/// Candidate values for each RBAC attribute.
struct Vocabulary {
  std::set<std::string> domains;
  std::set<std::string> roles;
  std::set<std::string> object_types;
  std::set<std::string> permissions;

  void merge(const Vocabulary& other);
  std::size_t combinations() const {
    return domains.size() * roles.size() * object_types.size() *
           permissions.size();
  }
};

/// Walk the assertions' conditions ASTs and collect every string literal
/// compared (==) against the Domain / Role / ObjectType / Permission
/// attributes.
Vocabulary extract_vocabulary(const std::vector<keynote::Assertion>& assertions);

struct SynthesisResult {
  rbac::Policy policy;
  /// Membership credentials whose licensee could not be resolved to a
  /// middleware user (foreign keys, thresholds, compound licensees).
  std::vector<std::string> unresolved;
};

/// Reconstruct the RBAC relations encoded by `policy_assertions` (the
/// Figure 5 style POLICY) and `membership_credentials` (Figure 6 style,
/// authored by `admin_principal`).
///
/// HasPermission rows: every vocabulary combination for which the admin
/// key is authorised by the policy assertions.
/// UserRole rows: for each credential authored by the admin key with a
/// single-principal licensee resolvable by `directory`, every (domain,
/// role) in the vocabulary satisfying the credential's conditions.
mwsec::Result<SynthesisResult> synthesize_policy(
    const std::vector<keynote::Assertion>& policy_assertions,
    const std::vector<keynote::Assertion>& membership_credentials,
    const std::string& admin_principal, PrincipalDirectory& directory,
    const Vocabulary& extra_vocabulary = {});

}  // namespace mwsec::translate
