// RBAC -> KeyNote compilation (paper §4.2, "Policy Comprehension";
// Figures 5-6 show the target encoding).
//
// The HasPermission relation becomes one KeyNote POLICY assertion that
// authorises the WebCom administration key over the attribute vocabulary
// {app_domain, ObjectType, Domain, Role, Permission}; each user's rows of
// the UserRole relation become one membership credential signed by the
// WebCom key (Figure 6).
#pragma once

#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "keynote/assertion.hpp"
#include "rbac/model.hpp"
#include "rbac/sessions.hpp"
#include "translate/directory.hpp"
#include "util/result.hpp"

namespace mwsec::translate {

/// The attribute names of the WebCom encoding (Figure 5).
inline constexpr const char* kAppDomainAttr = "app_domain";
inline constexpr const char* kAppDomainValue = "WebCom";

struct CompiledPolicy {
  /// The POLICY assertion encoding HasPermission (Figure 5).
  keynote::Assertion policy;
  /// One membership credential per user (Figure 6), authored by the
  /// WebCom key. Signed when compiled with a signing identity.
  std::vector<keynote::Assertion> membership_credentials;
};

/// Render the Figure 5 conditions program for a HasPermission relation.
/// Deterministic: rows are grouped by ObjectType, in relation order.
std::string render_haspermission_conditions(const rbac::Policy& policy);

/// Render the Figure 6 conditions for one user's role memberships.
std::string render_membership_conditions(
    const std::vector<rbac::RoleAssignment>& memberships);

/// Attribute name a role-instance parameter binding appears under in the
/// action environment: parameter "project" ⇒ attribute "param_project".
std::string instance_param_attr(const std::string& param_name);

/// Render the conditions for one *parameterized role instance* (the unit
/// an RBAC session activates): the Figure 6 (Domain, Role) pin extended
/// with one equality per parameter binding, so a credential minted for
/// Manager{project=apollo} only satisfies requests whose environment
/// carries param_project == "apollo".
std::string render_instance_conditions(const rbac::RoleInstance& instance);

/// Mint the membership credential an activated role instance turns into:
/// authorizer `admin_principal`, licensee `user_principal`, conditions
/// from render_instance_conditions. Unsigned — sign with
/// Assertion::sign_with when the admission path verifies signatures.
mwsec::Result<keynote::Assertion> instance_credential(
    const std::string& admin_principal, const std::string& user_principal,
    const rbac::RoleInstance& instance);

/// Compile with an unsigned-credential result (opaque principals, as the
/// paper's figures print them).
mwsec::Result<CompiledPolicy> compile_policy(const rbac::Policy& policy,
                                             const std::string& admin_principal,
                                             PrincipalDirectory& directory);

/// Compile and sign every membership credential with the admin identity
/// (whose principal becomes the authorizer).
mwsec::Result<CompiledPolicy> compile_policy_signed(
    const rbac::Policy& policy, const crypto::Identity& admin,
    PrincipalDirectory& directory);

}  // namespace mwsec::translate
