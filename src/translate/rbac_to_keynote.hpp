// RBAC -> KeyNote compilation (paper §4.2, "Policy Comprehension";
// Figures 5-6 show the target encoding).
//
// The HasPermission relation becomes one KeyNote POLICY assertion that
// authorises the WebCom administration key over the attribute vocabulary
// {app_domain, ObjectType, Domain, Role, Permission}; each user's rows of
// the UserRole relation become one membership credential signed by the
// WebCom key (Figure 6).
#pragma once

#include <string>
#include <vector>

#include "crypto/keys.hpp"
#include "keynote/assertion.hpp"
#include "rbac/model.hpp"
#include "translate/directory.hpp"
#include "util/result.hpp"

namespace mwsec::translate {

/// The attribute names of the WebCom encoding (Figure 5).
inline constexpr const char* kAppDomainAttr = "app_domain";
inline constexpr const char* kAppDomainValue = "WebCom";

struct CompiledPolicy {
  /// The POLICY assertion encoding HasPermission (Figure 5).
  keynote::Assertion policy;
  /// One membership credential per user (Figure 6), authored by the
  /// WebCom key. Signed when compiled with a signing identity.
  std::vector<keynote::Assertion> membership_credentials;
};

/// Render the Figure 5 conditions program for a HasPermission relation.
/// Deterministic: rows are grouped by ObjectType, in relation order.
std::string render_haspermission_conditions(const rbac::Policy& policy);

/// Render the Figure 6 conditions for one user's role memberships.
std::string render_membership_conditions(
    const std::vector<rbac::RoleAssignment>& memberships);

/// Compile with an unsigned-credential result (opaque principals, as the
/// paper's figures print them).
mwsec::Result<CompiledPolicy> compile_policy(const rbac::Policy& policy,
                                             const std::string& admin_principal,
                                             PrincipalDirectory& directory);

/// Compile and sign every membership credential with the admin identity
/// (whose principal becomes the authorizer).
mwsec::Result<CompiledPolicy> compile_policy_signed(
    const rbac::Policy& policy, const crypto::Identity& admin,
    PrincipalDirectory& directory);

}  // namespace mwsec::translate
