#include "translate/migration.hpp"

namespace mwsec::translate {

namespace {
std::string mapped_domain(const std::string& domain,
                          const MigrationOptions& options) {
  auto it = options.domain_mapping.find(domain);
  return it == options.domain_mapping.end() ? domain : it->second;
}
}  // namespace

rbac::Policy remap_policy(const rbac::Policy& source,
                          const MigrationOptions& options,
                          const SimilarityMetric& metric,
                          MigrationReport& report) {
  rbac::Policy out;
  for (const auto& g : source.grants()) {
    std::string permission = g.permission;
    if (!options.target_permissions.empty()) {
      auto cached = report.permission_mapping.find(g.permission);
      if (cached != report.permission_mapping.end()) {
        permission = cached->second.candidate;
      } else {
        auto m = best_match(metric, g.permission, options.target_permissions,
                            options.similarity_threshold);
        if (!m) {
          report.unmapped.push_back(g.domain + "/" + g.role + " on " +
                                    g.object_type + ": permission '" +
                                    g.permission +
                                    "' has no target equivalent");
          continue;
        }
        report.permission_mapping.emplace(g.permission, *m);
        permission = m->candidate;
      }
    }
    out.grant(mapped_domain(g.domain, options), g.role, g.object_type,
              permission)
        .ok();
  }
  for (const auto& a : source.assignments()) {
    out.assign(a.user, mapped_domain(a.domain, options), a.role).ok();
  }
  return out;
}

mwsec::Result<MigrationReport> migrate(const middleware::SecuritySystem& source,
                                       middleware::SecuritySystem& target,
                                       const MigrationOptions& options) {
  MigrationReport report;
  auto metric = CombinedMetric::standard();
  rbac::Policy remapped = remap_policy(source.export_policy(), options,
                                       metric, report);
  auto stats = target.import_policy(remapped);
  if (!stats.ok()) return stats.error();
  report.import_stats = std::move(stats).take();
  report.commissioned = std::move(remapped);
  return report;
}

mwsec::Result<MigrationReport> migrate_via_keynote(
    const middleware::SecuritySystem& source,
    middleware::SecuritySystem& target, const crypto::Identity& admin,
    PrincipalDirectory& directory, const MigrationOptions& options) {
  MigrationReport report;

  // 1. Comprehend the source policy as KeyNote credentials (Figures 5-6).
  auto compiled = compile_policy_signed(source.export_policy(), admin,
                                        directory);
  if (!compiled.ok()) return compiled.error();

  // 2. Ship them (conceptually across Figure 9's network) and synthesise
  //    the RBAC relations back on the target side.
  auto synth = synthesize_policy({compiled->policy},
                                 compiled->membership_credentials,
                                 admin.principal(), directory);
  if (!synth.ok()) return synth.error();

  // 3. Remap onto the target's names and vocabulary, then commission.
  auto metric = CombinedMetric::standard();
  rbac::Policy remapped = remap_policy(synth->policy, options, metric, report);
  auto stats = target.import_policy(remapped);
  if (!stats.ok()) return stats.error();
  report.import_stats = std::move(stats).take();
  report.commissioned = std::move(remapped);
  return report;
}

}  // namespace mwsec::translate
