#include "translate/rbac_to_keynote.hpp"

#include <map>

namespace mwsec::translate {

namespace {
/// Quote a value for embedding in a conditions program.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}
}  // namespace

std::string render_haspermission_conditions(const rbac::Policy& policy) {
  // Group rows by ObjectType so the program reads like Figure 5: a guard
  // on app_domain and ObjectType, then one disjunct per (Domain, Role)
  // with its permissions.
  std::map<std::string,
           std::map<std::pair<std::string, std::string>,
                    std::vector<std::string>>>
      by_object;
  for (const auto& g : policy.grants()) {
    by_object[g.object_type][{g.domain, g.role}].push_back(g.permission);
  }
  if (by_object.empty()) {
    // No permissions anywhere: a never-satisfied program.
    return "false";
  }

  std::string out;
  bool first_object = true;
  for (const auto& [object_type, roles] : by_object) {
    if (!first_object) out += " || ";
    first_object = false;
    out += "(" + std::string(kAppDomainAttr) + " == " +
           quoted(kAppDomainValue) + " && ObjectType == " +
           quoted(object_type) + " && (";
    bool first_role = true;
    for (const auto& [domain_role, permissions] : roles) {
      if (!first_role) out += " || ";
      first_role = false;
      out += "(Domain==" + quoted(domain_role.first) +
             " && Role==" + quoted(domain_role.second) + " && ";
      if (permissions.size() == 1) {
        out += "Permission==" + quoted(permissions[0]);
      } else {
        out += "(";
        for (std::size_t i = 0; i < permissions.size(); ++i) {
          if (i != 0) out += "||";
          out += "Permission==" + quoted(permissions[i]);
        }
        out += ")";
      }
      out += ")";
    }
    out += "))";
  }
  return out;
}

std::string render_membership_conditions(
    const std::vector<rbac::RoleAssignment>& memberships) {
  std::string out = std::string(kAppDomainAttr) + " == " +
                    quoted(kAppDomainValue) + " && (";
  for (std::size_t i = 0; i < memberships.size(); ++i) {
    if (i != 0) out += " || ";
    out += "(Domain==" + quoted(memberships[i].domain) +
           " && Role==" + quoted(memberships[i].role) + ")";
  }
  out += ")";
  return out;
}

std::string instance_param_attr(const std::string& param_name) {
  return "param_" + param_name;
}

std::string render_instance_conditions(const rbac::RoleInstance& instance) {
  std::string out = std::string(kAppDomainAttr) + " == " +
                    quoted(kAppDomainValue) + " && (Domain==" +
                    quoted(instance.domain) + " && Role==" +
                    quoted(instance.role);
  for (const auto& [name, value] : instance.params) {
    out += " && " + instance_param_attr(name) + "==" + quoted(value);
  }
  out += ")";
  return out;
}

mwsec::Result<keynote::Assertion> instance_credential(
    const std::string& admin_principal, const std::string& user_principal,
    const rbac::RoleInstance& instance) {
  return keynote::AssertionBuilder()
      .authorizer(quoted(admin_principal))
      .licensees(quoted(user_principal))
      .comment("role instance " + instance.label())
      .conditions(render_instance_conditions(instance))
      .build();
}

mwsec::Result<CompiledPolicy> compile_policy(const rbac::Policy& policy,
                                             const std::string& admin_principal,
                                             PrincipalDirectory& directory) {
  auto policy_assertion =
      keynote::AssertionBuilder()
          .authorizer("POLICY")
          .licensees(quoted(admin_principal))
          .comment("HasPermission relation compiled by mwsec::translate")
          .conditions(render_haspermission_conditions(policy))
          .build();
  if (!policy_assertion.ok()) return policy_assertion.error();
  CompiledPolicy out{std::move(policy_assertion).take(), {}};

  for (const auto& user : policy.users()) {
    auto memberships = policy.assignments_of(user);
    auto cred = keynote::AssertionBuilder()
                    .authorizer(quoted(admin_principal))
                    .licensees(quoted(directory.principal_of(user)))
                    .comment("role membership for " + user)
                    .conditions(render_membership_conditions(memberships))
                    .build();
    if (!cred.ok()) return cred.error();
    out.membership_credentials.push_back(std::move(cred).take());
  }
  return out;
}

mwsec::Result<CompiledPolicy> compile_policy_signed(
    const rbac::Policy& policy, const crypto::Identity& admin,
    PrincipalDirectory& directory) {
  auto compiled = compile_policy(policy, admin.principal(), directory);
  if (!compiled.ok()) return compiled;
  for (auto& cred : compiled.value().membership_credentials) {
    if (auto s = cred.sign_with(admin); !s.ok()) return s.error();
  }
  return compiled;
}

}  // namespace mwsec::translate
