#include "stack/layers.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwsec::stack {

namespace {

struct StackMetrics {
  obs::Counter& decisions;
  obs::Counter& permits;
  obs::Counter& denies;
  obs::Histogram& decide_us;

  static StackMetrics& get() {
    auto& r = obs::Registry::global();
    static StackMetrics m{
        r.counter("stack.decisions"),
        r.counter("stack.permits"),
        r.counter("stack.denies"),
        r.histogram("stack.decide_us"),
    };
    return m;
  }
};

/// The Figure 5 action environment the trust layer queries with — also
/// the "failing constraint" a denied-request trace reports.
keynote::Query trust_query(const Request& request) {
  keynote::Query q;
  q.action_authorizers = {request.principal};
  q.env.set("app_domain", "WebCom");
  q.env.set("ObjectType", request.object_type);
  q.env.set("Permission", request.permission);
  q.env.set("Domain", request.domain);
  q.env.set("Role", request.role);
  return q;
}

std::string trust_env_text(const Request& request) {
  return "{app_domain=WebCom, ObjectType=" + request.object_type +
         ", Permission=" + request.permission + ", Domain=" + request.domain +
         ", Role=" + request.role + "}";
}

}  // namespace

const char* decision_name(Decision d) {
  switch (d) {
    case Decision::kPermit: return "permit";
    case Decision::kDeny: return "deny";
    case Decision::kAbstain: return "abstain";
  }
  return "?";
}

Decision OsLayer::decide(const Request& request) const {
  if (!os_.account_exists(request.user)) return Decision::kDeny;
  if (os_.check(request.user, request.object_type, request.permission)) {
    return Decision::kPermit;
  }
  // The account exists but holds no grant: the OS may simply not manage
  // this object (middleware-level resources usually are not OS files).
  // Abstain unless the OS has *some* opinion on the object — modelled as:
  // no ACL entry at all for it from anyone means "not an OS object".
  // A conservative approximation: abstain always on a missing grant,
  // deny only for unknown accounts. Deployments wanting strict OS
  // mediation grant explicitly.
  return Decision::kAbstain;
}

std::string OsLayer::explain(const Request& request, Decision decision) const {
  switch (decision) {
    case Decision::kDeny:
      return "no OS account '" + request.user + "'";
    case Decision::kPermit:
      return "ACL grants " + request.user + " " + request.object_type + ":" +
             request.permission;
    case Decision::kAbstain:
      return "no ACL entry for " + request.object_type + " (not an OS object)";
  }
  return {};
}

Decision MiddlewareLayer::decide(const Request& request) const {
  // Does this middleware serve the object type at all?
  bool serves = false;
  for (const auto& component : system_.components()) {
    if (component.object_type == request.object_type) {
      serves = true;
      break;
    }
  }
  if (!serves) return Decision::kAbstain;
  return system_.mediate(request.user, request.object_type,
                         request.permission)
             ? Decision::kPermit
             : Decision::kDeny;
}

std::string MiddlewareLayer::explain(const Request& request,
                                     Decision decision) const {
  switch (decision) {
    case Decision::kDeny:
      return "no " + system_.kind() + " grant for user '" + request.user +
             "' on " + request.object_type + ":" + request.permission;
    case Decision::kPermit:
      return system_.kind() + " catalogue grants " + request.object_type +
             ":" + request.permission;
    case Decision::kAbstain:
      return request.object_type + " is not served by this middleware";
  }
  return {};
}

Decision TrustLayer::decide(const Request& request) const {
  auto r = store_.query(trust_query(request), request.credentials);
  if (!r.ok()) return Decision::kDeny;
  return r->authorized() ? Decision::kPermit : Decision::kDeny;
}

std::string TrustLayer::explain(const Request& request,
                                Decision decision) const {
  // Re-evaluate to recover the compliance value and any dropped
  // credentials; explain() runs on the trace/audit path only.
  auto r = store_.query(trust_query(request), request.credentials);
  if (!r.ok()) {
    return "query failed: " + r.error().message;
  }
  std::string out = "compliance '" + r->value_name + "' for principal '" +
                    request.principal + "' under " + trust_env_text(request);
  if (decision == Decision::kDeny && !r->dropped_credentials.empty()) {
    out += "; dropped credentials: " + r->dropped_credentials.front();
  }
  return out;
}

void StackedAuthorizer::push(std::shared_ptr<Layer> layer, bool enabled) {
  slots_.push_back(Slot{std::move(layer), enabled, {}});
}

bool StackedAuthorizer::set_enabled(const std::string& name, bool enabled) {
  for (auto& slot : slots_) {
    if (slot.layer->name() == name) {
      slot.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool StackedAuthorizer::is_enabled(const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.enabled;
  }
  return false;
}

std::vector<std::string> StackedAuthorizer::layer_names() const {
  std::vector<std::string> out;
  for (const auto& slot : slots_) out.push_back(slot.layer->name());
  return out;
}

Decision StackedAuthorizer::decide(const Request& request) const {
  auto& metrics = StackMetrics::get();
  metrics.decisions.inc();
  obs::ScopedTimer timer(metrics.decide_us);
  auto span = obs::Tracer::global().root("stack.decide");
  // The audit event is derived from the same decision record the trace
  // exports (explain() is only consulted when one of the two wants it).
  const bool explaining = span.active() || audit_ != nullptr;

  Decision verdict = Decision::kAbstain;
  bool any_permit = false;
  bool any_deny = false;
  std::string denied_by;   // first (top-most) denying layer
  std::string deny_reason;

  // Layers are consulted top-down: last pushed (highest layer) first,
  // mirroring Figure 10 where trust management sits above the middleware.
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (!it->enabled) continue;
    Decision d = it->layer->decide(request);
    switch (d) {
      case Decision::kPermit: ++it->stats.permits; any_permit = true; break;
      case Decision::kDeny: ++it->stats.denies; any_deny = true; break;
      case Decision::kAbstain: ++it->stats.abstains; break;
    }
    if (span.active()) {
      auto layer_span = span.child("stack.layer");
      layer_span.set_attr("layer", it->layer->name());
      layer_span.set_status(decision_name(d));
      if (d == Decision::kDeny) {
        layer_span.set_attr(obs::kAttrReason,
                            it->layer->explain(request, d));
      }
    }
    if (d == Decision::kDeny && denied_by.empty()) {
      denied_by = it->layer->name();
      if (explaining) deny_reason = it->layer->explain(request, d);
    }
    if (composition_ == Composition::kFirstDecisive &&
        d != Decision::kAbstain) {
      verdict = d;
      break;
    }
  }

  if (composition_ == Composition::kAllMustPermit) {
    if (any_deny) verdict = Decision::kDeny;
    else if (any_permit) verdict = Decision::kPermit;
    else verdict = Decision::kAbstain;
  } else if (composition_ == Composition::kAnyPermits) {
    if (any_permit) verdict = Decision::kPermit;
    else if (any_deny) verdict = Decision::kDeny;
    else verdict = Decision::kAbstain;
  }

  // Fail closed: a stack with no opinion denies.
  Decision final_verdict =
      verdict == Decision::kAbstain ? Decision::kDeny : verdict;
  if (final_verdict == Decision::kPermit) {
    metrics.permits.inc();
  } else {
    metrics.denies.inc();
  }
  if (final_verdict == Decision::kDeny && denied_by.empty()) {
    denied_by = "stack";
    deny_reason = "all enabled layers abstained (fail-closed)";
  }

  if (span.active() || audit_ != nullptr) {
    obs::SpanRecord decision_rec;
    decision_rec.name = "stack.decide";
    decision_rec.status = decision_name(final_verdict);
    decision_rec.attrs = {
        {obs::kAttrSystem, "stack"},
        {obs::kAttrPrincipal, request.user},
        {obs::kAttrAction, request.object_type + ":" + request.permission},
        {obs::kAttrDecision,
         final_verdict == Decision::kPermit ? "permit" : "deny"},
    };
    if (final_verdict == Decision::kDeny) {
      decision_rec.attrs.emplace_back(obs::kAttrDeniedBy, denied_by);
      decision_rec.attrs.emplace_back(obs::kAttrReason, deny_reason);
    } else {
      decision_rec.attrs.emplace_back(obs::kAttrReason,
                                      decision_name(verdict));
    }
    if (audit_ != nullptr) audit_->record_from(decision_rec);
    if (span.active()) {
      for (const auto& [k, v] : decision_rec.attrs) span.set_attr(k, v);
      span.set_status(decision_rec.status);
    }
  }
  return final_verdict;
}

StackedAuthorizer::LayerStats StackedAuthorizer::stats_for(
    const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.stats;
  }
  return {};
}

}  // namespace mwsec::stack
