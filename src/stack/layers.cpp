#include "stack/layers.hpp"

namespace mwsec::stack {

const char* decision_name(Decision d) {
  switch (d) {
    case Decision::kPermit: return "permit";
    case Decision::kDeny: return "deny";
    case Decision::kAbstain: return "abstain";
  }
  return "?";
}

Decision OsLayer::decide(const Request& request) const {
  if (!os_.account_exists(request.user)) return Decision::kDeny;
  if (os_.check(request.user, request.object_type, request.permission)) {
    return Decision::kPermit;
  }
  // The account exists but holds no grant: the OS may simply not manage
  // this object (middleware-level resources usually are not OS files).
  // Abstain unless the OS has *some* opinion on the object — modelled as:
  // no ACL entry at all for it from anyone means "not an OS object".
  // A conservative approximation: abstain always on a missing grant,
  // deny only for unknown accounts. Deployments wanting strict OS
  // mediation grant explicitly.
  return Decision::kAbstain;
}

Decision MiddlewareLayer::decide(const Request& request) const {
  // Does this middleware serve the object type at all?
  bool serves = false;
  for (const auto& component : system_.components()) {
    if (component.object_type == request.object_type) {
      serves = true;
      break;
    }
  }
  if (!serves) return Decision::kAbstain;
  return system_.mediate(request.user, request.object_type,
                         request.permission)
             ? Decision::kPermit
             : Decision::kDeny;
}

Decision TrustLayer::decide(const Request& request) const {
  keynote::Query q;
  q.action_authorizers = {request.principal};
  q.env.set("app_domain", "WebCom");
  q.env.set("ObjectType", request.object_type);
  q.env.set("Permission", request.permission);
  q.env.set("Domain", request.domain);
  q.env.set("Role", request.role);
  auto r = store_.query(q, request.credentials);
  if (!r.ok()) return Decision::kDeny;
  return r->authorized() ? Decision::kPermit : Decision::kDeny;
}

void StackedAuthorizer::push(std::shared_ptr<Layer> layer, bool enabled) {
  slots_.push_back(Slot{std::move(layer), enabled, {}});
}

bool StackedAuthorizer::set_enabled(const std::string& name, bool enabled) {
  for (auto& slot : slots_) {
    if (slot.layer->name() == name) {
      slot.enabled = enabled;
      return true;
    }
  }
  return false;
}

bool StackedAuthorizer::is_enabled(const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.enabled;
  }
  return false;
}

std::vector<std::string> StackedAuthorizer::layer_names() const {
  std::vector<std::string> out;
  for (const auto& slot : slots_) out.push_back(slot.layer->name());
  return out;
}

Decision StackedAuthorizer::decide(const Request& request) const {
  Decision verdict = Decision::kAbstain;
  bool any_permit = false;
  bool any_deny = false;

  // Layers are consulted top-down: last pushed (highest layer) first,
  // mirroring Figure 10 where trust management sits above the middleware.
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (!it->enabled) continue;
    Decision d = it->layer->decide(request);
    switch (d) {
      case Decision::kPermit: ++it->stats.permits; any_permit = true; break;
      case Decision::kDeny: ++it->stats.denies; any_deny = true; break;
      case Decision::kAbstain: ++it->stats.abstains; break;
    }
    if (composition_ == Composition::kFirstDecisive &&
        d != Decision::kAbstain) {
      verdict = d;
      break;
    }
  }

  if (composition_ == Composition::kAllMustPermit) {
    if (any_deny) verdict = Decision::kDeny;
    else if (any_permit) verdict = Decision::kPermit;
    else verdict = Decision::kAbstain;
  } else if (composition_ == Composition::kAnyPermits) {
    if (any_permit) verdict = Decision::kPermit;
    else if (any_deny) verdict = Decision::kDeny;
    else verdict = Decision::kAbstain;
  }

  // Fail closed: a stack with no opinion denies.
  Decision final_verdict =
      verdict == Decision::kAbstain ? Decision::kDeny : verdict;
  if (audit_ != nullptr) {
    audit_->record(middleware::AuditEvent{
        "stack", request.user, request.object_type + ":" + request.permission,
        final_verdict == Decision::kPermit, decision_name(verdict)});
  }
  return final_verdict;
}

StackedAuthorizer::LayerStats StackedAuthorizer::stats_for(
    const std::string& name) const {
  for (const auto& slot : slots_) {
    if (slot.layer->name() == name) return slot.stats;
  }
  return {};
}

}  // namespace mwsec::stack
