#include "stack/layers.hpp"

namespace mwsec::stack {

Verdict OsLayer::decide(const Request& request) const {
  if (!os_.account_exists(request.user)) return Verdict::deny("L0-os");
  if (os_.check(request.user, request.object_type, request.permission)) {
    return Verdict::permit("L0-os");
  }
  // The account exists but holds no grant: the OS may simply not manage
  // this object (middleware-level resources usually are not OS files).
  // Abstain unless the OS has *some* opinion on the object — modelled as:
  // no ACL entry at all for it from anyone means "not an OS object".
  // A conservative approximation: abstain always on a missing grant,
  // deny only for unknown accounts. Deployments wanting strict OS
  // mediation grant explicitly.
  return Verdict::abstain("L0-os");
}

std::string OsLayer::explain(const Request& request,
                             const Verdict& verdict) const {
  switch (verdict.decision) {
    case Decision::kDeny:
      return "no OS account '" + request.user + "'";
    case Decision::kPermit:
      return "ACL grants " + request.user + " " + request.object_type + ":" +
             request.permission;
    case Decision::kAbstain:
      return "no ACL entry for " + request.object_type + " (not an OS object)";
  }
  return {};
}

Verdict TrustLayer::decide(const Request& request) const {
  auto r = store_.query(authz::fig5_query(request), request.credentials);
  if (!r.ok()) return Verdict::deny(name());
  return r->authorized() ? Verdict::permit(name()) : Verdict::deny(name());
}

std::string TrustLayer::explain(const Request& request,
                                const Verdict& verdict) const {
  // Re-evaluate to recover the compliance value and any dropped
  // credentials; explain() runs on the trace/audit path only.
  auto r = store_.query(authz::fig5_query(request), request.credentials);
  if (!r.ok()) {
    return "query failed: " + r.error().message;
  }
  std::string out = "compliance '" + r->value_name + "' for principal '" +
                    request.principal + "' under " +
                    authz::fig5_env_text(request);
  if (verdict.decision == Decision::kDeny && !r->dropped_credentials.empty()) {
    out += "; dropped credentials: " + r->dropped_credentials.front();
  }
  return out;
}

}  // namespace mwsec::stack
