// Minimal operating-system security substrate: the L0 layer of Figure 10.
//
// Models what the paper relies on from Windows/Unix: user accounts,
// groups, and per-object ACLs granting permissions to users or groups.
// Deny-by-default; unknown accounts can do nothing.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "util/result.hpp"

namespace mwsec::stack {

class OsSecurity {
 public:
  mwsec::Status add_account(const std::string& user);
  mwsec::Status add_group(const std::string& group);
  mwsec::Status add_member(const std::string& user, const std::string& group);

  /// Grant `permission` on `object` to a user or group principal.
  mwsec::Status grant(const std::string& principal, const std::string& object,
                      const std::string& permission);
  mwsec::Status revoke(const std::string& principal, const std::string& object,
                       const std::string& permission);

  bool account_exists(const std::string& user) const;
  /// Access check: directly or via any group membership.
  bool check(const std::string& user, const std::string& object,
             const std::string& permission) const;

  std::vector<std::string> groups_of(const std::string& user) const;

 private:
  // Movable, same idiom as the middleware simulators.
  mutable std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::set<std::string> accounts_;
  std::set<std::string> groups_;
  std::map<std::string, std::set<std::string>> members_;  // group -> users
  // principal -> object -> permissions
  std::map<std::string, std::map<std::string, std::set<std::string>>> acl_;
};

}  // namespace mwsec::stack
