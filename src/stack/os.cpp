#include "stack/os.hpp"

namespace mwsec::stack {

mwsec::Status OsSecurity::add_account(const std::string& user) {
  if (user.empty()) return Error::make("empty account name", "os");
  std::scoped_lock lock(*mu_);
  accounts_.insert(user);
  return {};
}

mwsec::Status OsSecurity::add_group(const std::string& group) {
  if (group.empty()) return Error::make("empty group name", "os");
  std::scoped_lock lock(*mu_);
  groups_.insert(group);
  return {};
}

mwsec::Status OsSecurity::add_member(const std::string& user,
                                     const std::string& group) {
  std::scoped_lock lock(*mu_);
  if (!accounts_.count(user)) {
    return Error::make("unknown account: " + user, "os");
  }
  if (!groups_.count(group)) {
    return Error::make("unknown group: " + group, "os");
  }
  members_[group].insert(user);
  return {};
}

mwsec::Status OsSecurity::grant(const std::string& principal,
                                const std::string& object,
                                const std::string& permission) {
  std::scoped_lock lock(*mu_);
  if (!accounts_.count(principal) && !groups_.count(principal)) {
    return Error::make("unknown principal: " + principal, "os");
  }
  acl_[principal][object].insert(permission);
  return {};
}

mwsec::Status OsSecurity::revoke(const std::string& principal,
                                 const std::string& object,
                                 const std::string& permission) {
  std::scoped_lock lock(*mu_);
  auto pit = acl_.find(principal);
  if (pit == acl_.end()) return Error::make("no such grant", "os");
  auto oit = pit->second.find(object);
  if (oit == pit->second.end() || oit->second.erase(permission) == 0) {
    return Error::make("no such grant", "os");
  }
  return {};
}

bool OsSecurity::account_exists(const std::string& user) const {
  std::scoped_lock lock(*mu_);
  return accounts_.count(user) > 0;
}

bool OsSecurity::check(const std::string& user, const std::string& object,
                       const std::string& permission) const {
  std::scoped_lock lock(*mu_);
  if (!accounts_.count(user)) return false;
  auto allowed = [&](const std::string& principal) {
    auto pit = acl_.find(principal);
    if (pit == acl_.end()) return false;
    auto oit = pit->second.find(object);
    return oit != pit->second.end() && oit->second.count(permission) > 0;
  };
  if (allowed(user)) return true;
  for (const auto& [group, users] : members_) {
    if (users.count(user) && allowed(group)) return true;
  }
  return false;
}

std::vector<std::string> OsSecurity::groups_of(const std::string& user) const {
  std::scoped_lock lock(*mu_);
  std::vector<std::string> out;
  for (const auto& [group, users] : members_) {
    if (users.count(user)) out.push_back(group);
  }
  return out;
}

}  // namespace mwsec::stack
