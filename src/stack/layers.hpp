// Stacked authorisation (paper §5, Figure 10).
//
// Security mediation in Secure WebCom is a stack of pluggable layers:
//   L0 — operating system security,
//   L1 — middleware security (CORBASec / EJB descriptors / COM+ catalogue),
//   L2 — trust management (KeyNote),
//   L3 — application/workflow security (a hook; the paper defers it).
// Layers are "pluggable in the sense of PAM" [17, 25]: any subset may be
// enabled — e.g. an ORB without CORBASec support runs with KeyNote + OS
// only — and the composition strategy decides how layer verdicts combine.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "keynote/store.hpp"
#include "middleware/common/audit.hpp"
#include "middleware/common/system.hpp"
#include "stack/os.hpp"

namespace mwsec::stack {

/// A layer may permit, deny, or abstain (it has no opinion — e.g. the OS
/// layer abstains on requests for objects it does not manage).
enum class Decision { kPermit, kDeny, kAbstain };

const char* decision_name(Decision d);

/// One mediation request, carrying everything any layer might need.
struct Request {
  std::string user;        ///< OS / middleware user name
  std::string principal;   ///< the user's key (for the TM layer)
  std::string object_type;
  std::string permission;
  std::string domain;      ///< RBAC domain context
  std::string role;        ///< RBAC role context
  /// Credentials presented with the request (TM layer).
  std::vector<keynote::Assertion> credentials;
};

class Layer {
 public:
  virtual ~Layer() = default;
  virtual std::string name() const = 0;
  virtual Decision decide(const Request& request) const = 0;
  /// Human-readable account of why this layer reached `decision` for
  /// `request` — the failing condition/constraint for a deny. Consulted
  /// only on the audit/trace path (never on the hot path), so an
  /// implementation may re-evaluate the request to explain it.
  virtual std::string explain(const Request& request,
                              Decision decision) const {
    (void)request;
    return decision == Decision::kDeny ? "denied (no detail)" : std::string{};
  }
};

/// L0: OS accounts + ACLs. Denies requests from non-existent accounts;
/// abstains on objects it has no ACL entries for.
class OsLayer final : public Layer {
 public:
  explicit OsLayer(const OsSecurity& os) : os_(os) {}
  std::string name() const override { return "L0-os"; }
  Decision decide(const Request& request) const override;
  std::string explain(const Request& request,
                      Decision decision) const override;

 private:
  const OsSecurity& os_;
};

/// L1: a middleware's native mediation. Abstains when the object type is
/// not served by this middleware (no component exposes it).
class MiddlewareLayer final : public Layer {
 public:
  explicit MiddlewareLayer(const middleware::SecuritySystem& system)
      : system_(system) {}
  std::string name() const override { return "L1-" + system_.kind(); }
  Decision decide(const Request& request) const override;
  std::string explain(const Request& request,
                      Decision decision) const override;

 private:
  const middleware::SecuritySystem& system_;
};

/// L2: KeyNote. Queries the store with the Figure 5 attribute vocabulary;
/// permits on _MAX_TRUST, denies otherwise. Never abstains — trust
/// management always has an opinion (deny-by-default).
class TrustLayer final : public Layer {
 public:
  explicit TrustLayer(const keynote::CredentialStore& store) : store_(store) {}
  std::string name() const override { return "L2-keynote"; }
  Decision decide(const Request& request) const override;
  std::string explain(const Request& request,
                      Decision decision) const override;

 private:
  const keynote::CredentialStore& store_;
};

/// L3: application hook (condensed-graph-level policy); the paper notes
/// this layer exists but does not elaborate — provided as a predicate.
class ApplicationLayer final : public Layer {
 public:
  using Predicate = std::function<Decision(const Request&)>;
  explicit ApplicationLayer(Predicate predicate)
      : predicate_(std::move(predicate)) {}
  std::string name() const override { return "L3-application"; }
  Decision decide(const Request& request) const override {
    return predicate_(request);
  }

 private:
  Predicate predicate_;
};

/// How layer verdicts combine.
enum class Composition {
  kAllMustPermit,   ///< deny wins; every non-abstaining layer must permit
  kFirstDecisive,   ///< top-most non-abstaining layer decides
  kAnyPermits,      ///< a single permit suffices (audit-heavy deployments)
};

class StackedAuthorizer {
 public:
  explicit StackedAuthorizer(Composition composition = Composition::kAllMustPermit,
                             middleware::AuditLog* audit = nullptr)
      : composition_(composition), audit_(audit) {}

  /// Push a layer on top of the stack (L0 first, L3 last, by convention).
  void push(std::shared_ptr<Layer> layer, bool enabled = true);

  /// Plug a layer in or out by name; returns false if unknown.
  bool set_enabled(const std::string& name, bool enabled);
  bool is_enabled(const std::string& name) const;
  std::vector<std::string> layer_names() const;

  void set_composition(Composition c) { composition_ = c; }

  /// Mediate: combine the enabled layers' verdicts. An all-abstain stack
  /// denies (fail-closed).
  Decision decide(const Request& request) const;
  bool permitted(const Request& request) const {
    return decide(request) == Decision::kPermit;
  }

  struct LayerStats {
    std::uint64_t permits = 0;
    std::uint64_t denies = 0;
    std::uint64_t abstains = 0;
  };
  LayerStats stats_for(const std::string& name) const;

 private:
  struct Slot {
    std::shared_ptr<Layer> layer;
    bool enabled;
    mutable LayerStats stats;
  };
  Composition composition_;
  middleware::AuditLog* audit_;
  std::vector<Slot> slots_;
};

}  // namespace mwsec::stack
