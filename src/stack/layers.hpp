// Stacked authorisation (paper §5, Figure 10).
//
// The layer model now lives in the authz core (src/authz): `Layer` IS
// `authz::Authorizer`, the tri-state fold and fail-closed rule are
// `authz::Stack`, and the middleware adapter is
// `authz::MiddlewareAuthorizer` — this header keeps the Figure 10 names
// and provides the layers with stack-specific backends: the OS layer
// (accounts + ACLs) and the KeyNote trust layer over the interpreting
// `CredentialStore` (the compiled-store variant is
// `authz::KeyNoteAuthorizer`).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "authz/authz.hpp"
#include "authz/middleware_authorizer.hpp"
#include "authz/stack.hpp"
#include "keynote/store.hpp"
#include "stack/os.hpp"

namespace mwsec::stack {

using Decision = authz::Decision;
using Request = authz::Request;
using Verdict = authz::Verdict;
using Layer = authz::Authorizer;
using Composition = authz::Composition;
using StackedAuthorizer = authz::Stack;
/// L1: a middleware's native mediation (abstains when the object type is
/// not served by this middleware).
using MiddlewareLayer = authz::MiddlewareAuthorizer;
using authz::decision_name;

/// L0: OS accounts + ACLs. Denies requests from non-existent accounts;
/// abstains on objects it has no ACL entries for.
class OsLayer final : public Layer {
 public:
  explicit OsLayer(const OsSecurity& os) : os_(os) {}
  std::string name() const override { return "L0-os"; }
  Verdict decide(const Request& request) const override;
  std::string explain(const Request& request,
                      const Verdict& verdict) const override;

 private:
  const OsSecurity& os_;
};

/// L2: KeyNote over the interpreting `CredentialStore`. Queries with the
/// Figure 5 attribute vocabulary; permits on _MAX_TRUST, denies otherwise.
/// Never abstains — trust management always has an opinion
/// (deny-by-default).
class TrustLayer final : public Layer {
 public:
  explicit TrustLayer(const keynote::CredentialStore& store) : store_(store) {}
  std::string name() const override { return "L2-keynote"; }
  Verdict decide(const Request& request) const override;
  std::string explain(const Request& request,
                      const Verdict& verdict) const override;

 private:
  const keynote::CredentialStore& store_;
};

/// L3: application hook (condensed-graph-level policy); the paper notes
/// this layer exists but does not elaborate — provided as a predicate.
class ApplicationLayer final : public Layer {
 public:
  using Predicate = std::function<Decision(const Request&)>;
  explicit ApplicationLayer(Predicate predicate)
      : predicate_(std::move(predicate)) {}
  std::string name() const override { return "L3-application"; }
  Verdict decide(const Request& request) const override {
    switch (predicate_(request)) {
      case Decision::kPermit: return Verdict::permit(name());
      case Decision::kDeny: return Verdict::deny(name());
      case Decision::kAbstain: break;
    }
    return Verdict::abstain(name());
  }

 private:
  Predicate predicate_;
};

}  // namespace mwsec::stack
