#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>

namespace mwsec::obs {

namespace {

std::atomic<bool> g_metrics_enabled{false};

void atomic_add_double(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max_double(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

/// Minimal JSON string escaping (names and labels are ASCII identifiers,
/// but be safe about quotes/backslashes/control bytes).
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

/// Stripe index for the calling thread: a dense per-thread counter (wraps
/// modulo the stripe count) distributes threads evenly where hashing
/// std::thread::id tends to collide.
std::size_t this_thread_stripe(std::size_t stripes) {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t mine =
      next.fetch_add(1, std::memory_order_relaxed);
  return mine & (stripes - 1);
}

}  // namespace

bool metrics_enabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void set_metrics_enabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  for (auto& stripe : stripes_) {
    stripe.buckets =
        std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    // ±inf sentinels make min/max pure CAS-min/max with no racy
    // "first observation" special case; snapshot() skips stripes whose
    // count is 0, so the sentinels never leak out.
    stripe.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    stripe.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
  }
}

std::vector<double> Histogram::latency_bounds_us() {
  std::vector<double> bounds;
  for (double b = 0.1; b < 20e6; b *= 2) bounds.push_back(b);
  return bounds;  // 0.1, 0.2, 0.4 ... ~13.4e6 µs
}

void Histogram::observe(double v) {
  if (!metrics_enabled()) return;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  auto idx = static_cast<std::size_t>(it - bounds_.begin());
  Stripe& stripe = stripes_[this_thread_stripe(kStripes)];
  stripe.buckets[idx].fetch_add(1, std::memory_order_relaxed);
  atomic_min_double(stripe.min, v);
  atomic_max_double(stripe.max, v);
  atomic_add_double(stripe.sum, v);
  // Count last: a snapshot that sees count > 0 is guaranteed at least one
  // fully recorded min/max, so the ±inf sentinels stay internal.
  stripe.count.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t Histogram::count() const {
  std::uint64_t n = 0;
  for (const auto& stripe : stripes_) {
    n += stripe.count.load(std::memory_order_relaxed);
  }
  return n;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.buckets.assign(bounds_.size() + 1, 0);
  bool first = true;
  for (const auto& stripe : stripes_) {
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      const auto b = stripe.buckets[i].load(std::memory_order_relaxed);
      s.buckets[i] += b;
      s.count += b;
    }
    s.sum += stripe.sum.load(std::memory_order_relaxed);
    // min/max only from stripes that recorded something, so idle stripes'
    // zero-initialised extremes don't pollute the merge; an empty
    // histogram keeps min = max = 0 as before.
    if (stripe.count.load(std::memory_order_relaxed) == 0) continue;
    const double lo = stripe.min.load(std::memory_order_relaxed);
    const double hi = stripe.max.load(std::memory_order_relaxed);
    s.min = first ? lo : std::min(s.min, lo);
    s.max = first ? hi : std::max(s.max, hi);
    first = false;
  }

  // Quantile: find the bucket holding the q-th observation, interpolate
  // linearly inside it. The overflow bucket reports the observed max.
  auto quantile = [&](double q) -> double {
    if (s.count == 0) return 0;
    auto target = static_cast<std::uint64_t>(q * double(s.count));
    if (target < 1) target = 1;
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < s.buckets.size(); ++i) {
      if (s.buckets[i] == 0) continue;
      std::uint64_t before = cum;
      cum += s.buckets[i];
      if (cum < target) continue;
      if (i >= s.bounds.size()) return s.max;
      double lo = i == 0 ? std::min(s.min, s.bounds[0]) : s.bounds[i - 1];
      double hi = s.bounds[i];
      double frac = double(target - before) / double(s.buckets[i]);
      return lo + (hi - lo) * frac;
    }
    return s.max;
  };
  s.p50 = quantile(0.50);
  s.p95 = quantile(0.95);
  s.p99 = quantile(0.99);
  return s;
}

void Histogram::reset() {
  for (auto& stripe : stripes_) {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
      stripe.buckets[i].store(0, std::memory_order_relaxed);
    }
    stripe.count.store(0, std::memory_order_relaxed);
    stripe.sum.store(0, std::memory_order_relaxed);
    stripe.min.store(std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
    stripe.max.store(-std::numeric_limits<double>::infinity(),
                     std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::vector<double> bounds) {
  std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::latency_bounds_us();
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return *it->second;
}

void Registry::reset() {
  std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry::Snapshot Registry::snapshot() const {
  std::scoped_lock lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace_back(name, g->value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace_back(name, h->snapshot());
  }
  return s;
}

std::uint64_t Registry::Snapshot::counter_or_zero(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return 0;
}

double Registry::Snapshot::hit_rate(std::string_view hits,
                                    std::string_view misses) const {
  double h = double(counter_or_zero(hits));
  double m = double(counter_or_zero(misses));
  return h + m == 0 ? 0 : h / (h + m);
}

// ---------------------------------------------------------------------------
// Rendering

std::string render_text(const Registry::Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot.counters) {
    os << name << " " << v << "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    os << name << " " << v << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    os << name << " count=" << h.count << " mean=" << fmt_double(h.mean())
       << " p50=" << fmt_double(h.p50) << " p95=" << fmt_double(h.p95)
       << " p99=" << fmt_double(h.p99) << " max=" << fmt_double(h.max)
       << "\n";
  }
  return os.str();
}

std::string render_json(const Registry::Snapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(snapshot.counters[i].first)
       << "\":" << snapshot.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) os << ",";
    os << "\"" << json_escape(snapshot.gauges[i].first)
       << "\":" << snapshot.gauges[i].second;
  }
  os << "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i != 0) os << ",";
    const auto& [name, h] = snapshot.histograms[i];
    os << "\"" << json_escape(name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << fmt_double(h.sum)
       << ",\"mean\":" << fmt_double(h.mean())
       << ",\"min\":" << fmt_double(h.min) << ",\"max\":" << fmt_double(h.max)
       << ",\"p50\":" << fmt_double(h.p50) << ",\"p95\":" << fmt_double(h.p95)
       << ",\"p99\":" << fmt_double(h.p99) << "}";
  }
  os << "}}";
  return os.str();
}

bool append_snapshot_jsonl(const std::string& path, std::string_view label,
                           const Registry::Snapshot& snapshot) {
  std::FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) return false;
  std::string body = render_json(snapshot);
  // Splice the label into the leading object: {"label":"...", <body sans {>.
  std::string line = "{\"label\":\"" + json_escape(label) + "\"," +
                     body.substr(1) + "\n";
  bool ok = std::fwrite(line.data(), 1, line.size(), f) == line.size();
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

}  // namespace mwsec::obs
