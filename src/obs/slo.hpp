// Declarative service-level objectives evaluated against a metrics
// snapshot plus the trace buffer — the machine-checked form of the
// claims EXPERIMENTS.md makes in prose ("p99 decide latency", "revoke
// reaches every replica", "the cache actually hits").
//
// An objective names a kind, the metric(s)/span(s) it reads, and a
// threshold; evaluate_slo() turns a set of them into pass/fail results
// with the measured value attached. SloReport::to_json() is the artifact
// tools/bench_report.py merges into BENCH_keynote.json under "slo", and
// what CI gates on (DESIGN.md §13 for the schema).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mwsec::obs {

struct SloObjective {
  enum class Kind {
    /// histogram `metric` p99 <= threshold (µs for *_us histograms).
    kHistogramP99Max,
    /// hit_rate(metric, metric2) >= threshold (counters: hits, misses).
    kHitRateMin,
    /// counter `metric` >= threshold.
    kCounterAtLeast,
    /// counter `metric` <= threshold.
    kCounterAtMost,
    /// Trace-derived propagation lag: within each trace containing a span
    /// named `metric` (the cause), the latest *end* of a span named
    /// `metric2` (the effect) minus the cause's start, maximised over
    /// traces, must be <= threshold µs. Fails if no trace pairs them —
    /// an SLO about propagation is meaningless without evidence it
    /// happened.
    kSpanGapMax,
  };

  std::string name;    ///< report key, e.g. "decide_p99_us"
  Kind kind;
  std::string metric;  ///< histogram/counter/start-span name
  std::string metric2; ///< misses counter / end-span name (kind-dependent)
  double threshold = 0;
};

const char* slo_kind_name(SloObjective::Kind kind);

struct SloResult {
  std::string name;
  std::string kind;
  bool pass = false;
  double value = 0;      ///< what was measured
  double threshold = 0;
  std::string detail;    ///< why it failed / how it was derived
};

struct SloReport {
  std::vector<SloResult> results;

  bool pass() const;
  /// {"pass":bool,"objectives":[{...}]}
  std::string to_json() const;
};

SloReport evaluate_slo(std::span<const SloObjective> objectives,
                       const Registry::Snapshot& snapshot,
                       std::span<const SpanRecord> spans);

/// The standing objectives for the revocation/scheduling scenario that
/// `mwsec-stats slo` runs (and CI gates on): p99 decide latency,
/// revoke→verdict-flip propagation lag, decision-cache hit-rate floor,
/// and denied-correctness (a post-revocation denial actually happened,
/// with zero replica apply errors).
std::vector<SloObjective> default_slo_objectives();

}  // namespace mwsec::obs
