// Always-on flight recorder: a lock-free, fixed-memory, per-thread ring
// of recent noteworthy events (decision latencies, retransmits,
// quarantines) that costs ~nothing while armed and idle, and dumps its
// recent history the moment an anomaly trips a trigger.
//
// Design (DESIGN.md §13):
//   - One ring per recording thread, `kRingCapacity` slots of plain-old
//     atomics (~48 bytes each → ~48 KiB/thread, fixed at arm time, never
//     freed). Rings register themselves once, under a mutex, on a
//     thread's first record(); the hot path after that touches only the
//     thread-local ring.
//   - Every slot field is a relaxed std::atomic. The writer is single
//     (the owning thread); dumpers read concurrently without stopping
//     the world. A slot's `seq` is stamped last with release order, so a
//     reader that acquires a non-zero seq sees a fully written event —
//     and a torn read (writer lapping the reader) at worst yields one
//     stale-but-well-formed event, never UB. TSan-clean by construction.
//   - Timestamps are obs::process_now_ns() (the same epoch spans use), so
//     a dump interleaves exactly with the trace tree.
//   - Triggers: set_threshold(kind, min_value) arms "dump_on(anomaly)" —
//     a record() whose value reaches the threshold snapshots every ring
//     (JSONL, ts-ascending) to the configured path/callback, rate-limited
//     by a cooldown so a latency storm produces one dump, not thousands.
//
// When disarmed (the default), record() is one relaxed load and a branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mwsec::obs {

enum class FlightKind : std::uint8_t {
  kDecision = 0,    ///< value = authz decide latency, µs
  kRetransmit = 1,  ///< value = log-suffix length resent
  kQuarantine = 2,  ///< value = delivery attempts when the client was cut
  kDeltaApply = 3,  ///< value = applied epoch
  kCustom = 4,
};
inline constexpr std::size_t kFlightKinds = 5;
const char* flight_kind_name(FlightKind kind);

/// One decoded event (the snapshot/dump element).
struct FlightEvent {
  std::uint64_t ts_ns = 0;     ///< obs::process_now_ns() at record time
  std::uint64_t trace_id = 0;  ///< causal tree the event belongs to (0 = none)
  std::uint64_t detail = 0;    ///< kind-specific (epoch, attempt count…)
  double value = 0;
  FlightKind kind = FlightKind::kCustom;
  std::uint32_t thread = 0;  ///< util::this_thread_tag() of the recorder

  std::string to_json() const;
};

class FlightRecorder {
 public:
  static constexpr std::size_t kRingCapacity = 1024;  ///< slots per thread

  /// The process-wide recorder every instrumentation site records into.
  static FlightRecorder& global();

  void arm() { armed_.store(true, std::memory_order_relaxed); }
  void disarm() { armed_.store(false, std::memory_order_relaxed); }
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Record one event. Disarmed: one relaxed load. Armed: a handful of
  /// relaxed stores into the calling thread's ring (no locks after the
  /// thread's first record), plus a threshold check.
  void record(FlightKind kind, double value, std::uint64_t trace_id = 0,
              std::uint64_t detail = 0) {
    if (!armed()) return;
    record_armed(kind, value, trace_id, detail);
  }

  /// Dump every ring when an event of `kind` records a value >= threshold
  /// (dump_on(anomaly)). Pass a negative threshold to disable that kind.
  void set_threshold(FlightKind kind, double min_value);
  void clear_thresholds();

  /// Where triggered dumps go: appended to `path` as JSONL (one event per
  /// line plus a {"flight_dump":...} header), and/or handed to the
  /// callback. Empty path / null callback disables that sink.
  void set_dump_path(std::string path);
  using DumpFn = std::function<void(const std::string& jsonl, FlightKind kind,
                                    double value)>;
  void set_dump_callback(DumpFn fn);
  /// Minimum time between triggered dumps (default 1s): an anomaly storm
  /// produces one dump, not one per event.
  void set_dump_cooldown_ns(std::uint64_t ns);

  /// All buffered events across every thread's ring, timestamp-ascending.
  /// Safe concurrently with recording (see header comment).
  std::vector<FlightEvent> snapshot() const;
  /// snapshot() as JSON lines, prefixed with a {"flight_dump":...} header
  /// naming the trigger (kCustom/0 for manual dumps).
  std::string dump_jsonl(FlightKind reason, double value) const;

  struct Stats {
    std::uint64_t events = 0;  ///< total recorded since reset
    std::uint64_t dumps = 0;   ///< triggered dumps emitted
    std::size_t threads = 0;   ///< rings registered
  };
  Stats stats() const;

  /// Clear all rings and counters (tests; not thread-safe vs recorders).
  void reset();

 private:
  struct Slot {
    std::atomic<std::uint64_t> seq{0};  ///< 0 = never written
    std::atomic<std::uint64_t> ts_ns{0};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> detail{0};
    std::atomic<double> value{0};
    std::atomic<std::uint8_t> kind{0};
  };
  struct Ring {
    std::array<Slot, kRingCapacity> slots;
    std::uint64_t head = 0;  ///< next slot; single writer (owning thread)
    std::uint32_t thread = 0;
  };

  FlightRecorder() = default;
  void record_armed(FlightKind kind, double value, std::uint64_t trace_id,
                    std::uint64_t detail);
  Ring& ring_for_this_thread();
  void maybe_dump(FlightKind kind, double value);

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> dumps_{0};
  std::atomic<std::uint64_t> last_dump_ns_{0};
  std::array<std::atomic<double>, kFlightKinds> thresholds_{};
  std::array<std::atomic<bool>, kFlightKinds> threshold_set_{};
  std::uint64_t dump_cooldown_ns_ = 1'000'000'000;

  /// Ring registry: appended under the mutex on a thread's first record,
  /// then only read (snapshot) — rings are never freed, so a pointer
  /// handed to a thread_local stays valid for the process lifetime.
  mutable std::mutex registry_mu_;
  std::vector<std::unique_ptr<Ring>> rings_;

  mutable std::mutex dump_mu_;  ///< serialises dump emission + sink config
  std::string dump_path_;
  DumpFn dump_fn_;
};

}  // namespace mwsec::obs
