#include "obs/flight_recorder.hpp"

#include <algorithm>
#include <cstdio>

#include "obs/trace.hpp"
#include "util/logging.hpp"

namespace mwsec::obs {

namespace {
constexpr std::memory_order kRelaxed = std::memory_order_relaxed;

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}
}  // namespace

const char* flight_kind_name(FlightKind kind) {
  switch (kind) {
    case FlightKind::kDecision: return "decision";
    case FlightKind::kRetransmit: return "retransmit";
    case FlightKind::kQuarantine: return "quarantine";
    case FlightKind::kDeltaApply: return "delta_apply";
    case FlightKind::kCustom: return "custom";
  }
  return "?";
}

std::string FlightEvent::to_json() const {
  std::string out = "{\"ts_ns\":" + std::to_string(ts_ns) + ",\"kind\":\"" +
                    flight_kind_name(kind) +
                    "\",\"value\":" + fmt_double(value) +
                    ",\"trace_id\":" + std::to_string(trace_id) +
                    ",\"detail\":" + std::to_string(detail) +
                    ",\"thread\":" + std::to_string(thread) + "}";
  return out;
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder fr;
  return fr;
}

FlightRecorder::Ring& FlightRecorder::ring_for_this_thread() {
  // One registration (under the mutex) per thread per recorder; the
  // pointer stays valid forever because rings are never destroyed before
  // process exit (`global()` is a leaky singleton in practice — tests use
  // reset(), which clears slots but keeps rings).
  thread_local Ring* mine = nullptr;
  thread_local FlightRecorder* owner = nullptr;
  if (mine == nullptr || owner != this) {
    std::scoped_lock lock(registry_mu_);
    rings_.push_back(std::make_unique<Ring>());
    rings_.back()->thread = util::this_thread_tag();
    mine = rings_.back().get();
    owner = this;
  }
  return *mine;
}

void FlightRecorder::record_armed(FlightKind kind, double value,
                                  std::uint64_t trace_id,
                                  std::uint64_t detail) {
  Ring& ring = ring_for_this_thread();
  Slot& slot = ring.slots[ring.head % kRingCapacity];
  ++ring.head;
  slot.ts_ns.store(process_now_ns(), kRelaxed);
  slot.trace_id.store(trace_id, kRelaxed);
  slot.detail.store(detail, kRelaxed);
  slot.value.store(value, kRelaxed);
  slot.kind.store(static_cast<std::uint8_t>(kind), kRelaxed);
  // seq last, release: a reader that sees it non-zero sees the fields.
  slot.seq.store(ring.head, std::memory_order_release);
  events_.fetch_add(1, kRelaxed);

  const auto k = static_cast<std::size_t>(kind);
  if (threshold_set_[k].load(kRelaxed) &&
      value >= thresholds_[k].load(kRelaxed)) {
    maybe_dump(kind, value);
  }
}

void FlightRecorder::set_threshold(FlightKind kind, double min_value) {
  const auto k = static_cast<std::size_t>(kind);
  if (min_value < 0) {
    threshold_set_[k].store(false, kRelaxed);
    return;
  }
  thresholds_[k].store(min_value, kRelaxed);
  threshold_set_[k].store(true, kRelaxed);
}

void FlightRecorder::clear_thresholds() {
  for (auto& set : threshold_set_) set.store(false, kRelaxed);
}

void FlightRecorder::set_dump_path(std::string path) {
  std::scoped_lock lock(dump_mu_);
  dump_path_ = std::move(path);
}

void FlightRecorder::set_dump_callback(DumpFn fn) {
  std::scoped_lock lock(dump_mu_);
  dump_fn_ = std::move(fn);
}

void FlightRecorder::set_dump_cooldown_ns(std::uint64_t ns) {
  std::scoped_lock lock(dump_mu_);
  dump_cooldown_ns_ = ns;
}

void FlightRecorder::maybe_dump(FlightKind kind, double value) {
  // Cooldown gate: first trigger in a window wins the CAS and dumps; the
  // storm behind it sees a fresh last_dump and returns.
  const std::uint64_t now = process_now_ns();
  std::uint64_t last = last_dump_ns_.load(kRelaxed);
  std::uint64_t cooldown;
  {
    std::scoped_lock lock(dump_mu_);
    cooldown = dump_cooldown_ns_;
  }
  // `now` can be 0 only within the first nanosecond of the epoch; +1
  // keeps the very first trigger distinguishable from "never dumped".
  if (last != 0 && now - last < cooldown) return;
  if (!last_dump_ns_.compare_exchange_strong(last, now + 1, kRelaxed)) return;

  const std::string jsonl = dump_jsonl(kind, value);
  dumps_.fetch_add(1, kRelaxed);
  std::scoped_lock lock(dump_mu_);
  if (!dump_path_.empty()) {
    if (std::FILE* f = std::fopen(dump_path_.c_str(), "a")) {
      std::fwrite(jsonl.data(), 1, jsonl.size(), f);
      std::fclose(f);
    }
  }
  if (dump_fn_) dump_fn_(jsonl, kind, value);
}

std::vector<FlightEvent> FlightRecorder::snapshot() const {
  std::vector<FlightEvent> out;
  std::scoped_lock lock(registry_mu_);
  for (const auto& ring : rings_) {
    for (const Slot& slot : ring->slots) {
      if (slot.seq.load(std::memory_order_acquire) == 0) continue;
      FlightEvent e;
      e.ts_ns = slot.ts_ns.load(kRelaxed);
      e.trace_id = slot.trace_id.load(kRelaxed);
      e.detail = slot.detail.load(kRelaxed);
      e.value = slot.value.load(kRelaxed);
      e.kind = static_cast<FlightKind>(slot.kind.load(kRelaxed));
      e.thread = ring->thread;
      out.push_back(e);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              return a.ts_ns < b.ts_ns;
            });
  return out;
}

std::string FlightRecorder::dump_jsonl(FlightKind reason, double value) const {
  std::string out = "{\"flight_dump\":{\"reason\":\"" +
                    std::string(flight_kind_name(reason)) +
                    "\",\"value\":" + fmt_double(value) +
                    ",\"ts_ns\":" + std::to_string(process_now_ns()) + "}}\n";
  for (const FlightEvent& e : snapshot()) {
    out += e.to_json();
    out += "\n";
  }
  return out;
}

FlightRecorder::Stats FlightRecorder::stats() const {
  Stats s;
  s.events = events_.load(kRelaxed);
  s.dumps = dumps_.load(kRelaxed);
  std::scoped_lock lock(registry_mu_);
  s.threads = rings_.size();
  return s;
}

void FlightRecorder::reset() {
  std::scoped_lock lock(registry_mu_);
  for (auto& ring : rings_) {
    for (Slot& slot : ring->slots) slot.seq.store(0, kRelaxed);
    // head intentionally kept: the owning thread's thread_local pointer
    // still targets this ring and keeps writing monotonically.
  }
  events_.store(0, kRelaxed);
  dumps_.store(0, kRelaxed);
  last_dump_ns_.store(0, kRelaxed);
}

}  // namespace mwsec::obs
