// Structured decision tracing for the authorisation pipeline.
//
// A `Tracer` records spans — named, timed operations with string
// attributes and a parent link — into a bounded in-memory ring, and fans
// finished spans out to registered sinks (the audit log is one such
// consumer; see middleware::AuditLog::attach). Spans are RAII handles:
// when tracing is disabled, `root()` hands back an inert span and every
// operation on it is a null-pointer check, so the mediation hot paths pay
// nothing measurable with tracing off.
//
// Causal propagation: every span carries a (trace_id, span_id, parent)
// triple. A root span starts a new trace (trace_id == its own id); a span
// created with `join()` continues the trace described by a `TraceContext`
// — the 16-byte envelope that `net::Message` and the sync delta frames
// carry across component boundaries. `Span::context()` extracts the
// context to forward; `ScopedTraceContext` + `Tracer::start()` provide an
// ambient (thread-local) current context so deep callees join the
// enclosing operation without threading a parameter through every layer.
//
// Timestamps are nanoseconds since one process-wide steady-clock epoch
// (`process_now_ns`), so spans recorded by different components and
// threads order correctly in one merged trace tree.
//
// Mediation points use the well-known attribute keys below so a consumer
// (audit log, mwsec-stats, a human reading the JSONL export) can answer
// "why was this request denied, and by which layer?" without knowing the
// producer: a denied stacked decision, for example, carries
//   decision=deny denied_by=L2-keynote reason=<failing condition>.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mwsec::obs {

/// Attribute keys shared by every decision-producing component.
inline constexpr const char* kAttrSystem = "system";
inline constexpr const char* kAttrPrincipal = "principal";
inline constexpr const char* kAttrAction = "action";
inline constexpr const char* kAttrDecision = "decision";  // "permit"/"deny"
inline constexpr const char* kAttrDeniedBy = "denied_by";  // layer name
inline constexpr const char* kAttrReason = "reason";  // failing constraint

/// Nanoseconds since the process-wide steady-clock epoch (fixed at the
/// first call, one epoch per process). All span timestamps derive from
/// this so records from any tracer, thread, or component are comparable.
std::uint64_t process_now_ns();

/// The portable causal link: which trace an operation belongs to and
/// which span caused it. This is what crosses component boundaries —
/// stamped into net::Message envelopes and sync delta frames. A
/// default-constructed context is invalid (joins fall back to roots).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool valid() const { return trace_id != 0 && span_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// The calling thread's ambient trace context (set by ScopedTraceContext;
/// invalid when no traced operation is active on this thread).
TraceContext current_context();

/// RAII: makes `ctx` the calling thread's ambient context for the scope,
/// restoring the previous one on destruction. Also mirrors the trace id
/// into util::Logger's line prefix (via util::set_current_trace_id).
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext ctx);
  ~ScopedTraceContext();
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

/// One finished span.
struct SpanRecord {
  std::uint64_t trace_id = 0;  ///< root span id of the causal tree
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  ///< 0 for roots
  std::string name;
  std::uint64_t start_ns = 0;  ///< steady-clock ns since the process epoch
  std::uint64_t duration_ns = 0;
  std::string status;  ///< e.g. "complete", "timeout", "permit", "deny"
  std::vector<std::pair<std::string, std::string>> attrs;

  /// Attribute value by key, or nullptr.
  const std::string* attr(std::string_view key) const;
  /// One-line JSON object (the JSONL export element).
  std::string to_json() const;
};

class Tracer {
 public:
  Tracer();

  /// The process-wide tracer the pipeline components record into.
  static Tracer& global();

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Seed span-id allocation with a per-process prefix: subsequent ids are
  /// (prefix << 48) | sequence, mirroring net::Transport::compose_id. In a
  /// multi-process deployment every process sets a distinct prefix (the
  /// orchestrator hands them out with the transport node ids), so span ids
  /// — and therefore trace joins on merged exports — never collide across
  /// address spaces. Call before recording any spans.
  void set_id_prefix(std::uint16_t prefix) {
    next_id_.store((static_cast<std::uint64_t>(prefix) << 48) | 1,
                   std::memory_order_relaxed);
  }

  /// Bound on buffered records (oldest evicted first). Default 8192.
  void set_capacity(std::size_t capacity);

  /// RAII span handle. Movable, not copyable; finishes (records duration
  /// and hands the record to the tracer) on destruction or finish().
  /// A default-constructed or disabled-tracer span is inert.
  class Span {
   public:
    Span() = default;
    Span(Span&& other) noexcept
        : tracer_(other.tracer_), rec_(std::move(other.rec_)),
          start_(other.start_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        finish();
        tracer_ = other.tracer_;
        rec_ = std::move(other.rec_);
        start_ = other.start_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { finish(); }

    bool active() const { return tracer_ != nullptr; }
    std::uint64_t id() const { return rec_ != nullptr ? rec_->id : 0; }
    std::uint64_t trace_id() const {
      return rec_ != nullptr ? rec_->trace_id : 0;
    }
    /// The context to forward so downstream work joins this span as its
    /// parent. Invalid for inert spans.
    TraceContext context() const {
      return rec_ != nullptr ? TraceContext{rec_->trace_id, rec_->id}
                             : TraceContext{};
    }

    void set_attr(std::string_view key, std::string_view value);
    void set_status(std::string_view status);
    /// A child span of this one (inert if this span is inert).
    Span child(std::string name);
    /// Record and emit now (idempotent; the destructor is a no-op after).
    void finish();

   private:
    friend class Tracer;
    Tracer* tracer_ = nullptr;
    std::unique_ptr<SpanRecord> rec_;
    std::chrono::steady_clock::time_point start_;
  };

  /// Start a root span (a new trace); inert when tracing is disabled.
  Span root(std::string name);

  /// Continue the trace described by `ctx` with a new span whose parent
  /// is `ctx.span_id`. An invalid context starts a new trace (root).
  /// Inert when tracing is disabled.
  Span join(std::string name, TraceContext ctx);

  /// Join the calling thread's ambient context (see ScopedTraceContext);
  /// a root when no ambient context is set. Inert when disabled.
  Span start(std::string name);

  /// Sinks observe every finished span (called with the tracer's sink
  /// lock held — keep them fast, do not re-enter the tracer).
  using Sink = std::function<void(const SpanRecord&)>;
  std::uint64_t add_sink(Sink sink);
  void remove_sink(std::uint64_t sink_id);

  /// Buffered finished spans, oldest first.
  std::vector<SpanRecord> records() const;
  /// Buffered spans as JSON lines (one span per line).
  std::string to_jsonl() const;
  std::size_t size() const;
  void clear();

 private:
  Span make_span(std::string name, std::uint64_t parent, std::uint64_t trace);
  void record(SpanRecord rec);

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_id_{1};
  mutable std::mutex mu_;
  std::size_t capacity_ = 8192;
  std::deque<SpanRecord> records_;
  std::vector<std::pair<std::uint64_t, Sink>> sinks_;
  std::uint64_t next_sink_id_ = 1;
};

using Span = Tracer::Span;

}  // namespace mwsec::obs
