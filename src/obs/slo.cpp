#include "obs/slo.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

namespace mwsec::obs {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string json_escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const Histogram::Snapshot* find_histogram(const Registry::Snapshot& snapshot,
                                          std::string_view name) {
  for (const auto& [n, h] : snapshot.histograms) {
    if (n == name) return &h;
  }
  return nullptr;
}

SloResult eval_one(const SloObjective& o, const Registry::Snapshot& snapshot,
                   std::span<const SpanRecord> spans) {
  SloResult r;
  r.name = o.name;
  r.kind = slo_kind_name(o.kind);
  r.threshold = o.threshold;
  switch (o.kind) {
    case SloObjective::Kind::kHistogramP99Max: {
      const Histogram::Snapshot* h = find_histogram(snapshot, o.metric);
      if (h == nullptr || h->count == 0) {
        r.pass = false;
        r.detail = "histogram '" + o.metric + "' missing or empty";
        return r;
      }
      r.value = h->p99;
      r.pass = r.value <= o.threshold;
      r.detail = "p99 of " + std::to_string(h->count) + " observations";
      return r;
    }
    case SloObjective::Kind::kHitRateMin: {
      const auto hits = snapshot.counter_or_zero(o.metric);
      const auto misses = snapshot.counter_or_zero(o.metric2);
      if (hits + misses == 0) {
        r.pass = false;
        r.detail = "no lookups recorded (" + o.metric + " + " + o.metric2 +
                   " == 0)";
        return r;
      }
      r.value = snapshot.hit_rate(o.metric, o.metric2);
      r.pass = r.value >= o.threshold;
      r.detail = std::to_string(hits) + " hits / " + std::to_string(misses) +
                 " misses";
      return r;
    }
    case SloObjective::Kind::kCounterAtLeast: {
      r.value = double(snapshot.counter_or_zero(o.metric));
      r.pass = r.value >= o.threshold;
      r.detail = "counter " + o.metric;
      return r;
    }
    case SloObjective::Kind::kCounterAtMost: {
      r.value = double(snapshot.counter_or_zero(o.metric));
      r.pass = r.value <= o.threshold;
      r.detail = "counter " + o.metric;
      return r;
    }
    case SloObjective::Kind::kSpanGapMax: {
      // Earliest cause-span start per trace; latest effect-span end per
      // trace; the lag is their gap, maximised over all traces that have
      // both. No pair anywhere → fail (the propagation never completed,
      // or tracing was off — either way the claim is unsupported).
      std::map<std::uint64_t, std::uint64_t> cause_start;
      std::map<std::uint64_t, std::uint64_t> effect_end;
      for (const SpanRecord& s : spans) {
        if (s.trace_id == 0) continue;
        if (s.name == o.metric) {
          auto [it, fresh] = cause_start.emplace(s.trace_id, s.start_ns);
          if (!fresh) it->second = std::min(it->second, s.start_ns);
        } else if (s.name == o.metric2) {
          const std::uint64_t end = s.start_ns + s.duration_ns;
          auto [it, fresh] = effect_end.emplace(s.trace_id, end);
          if (!fresh) it->second = std::max(it->second, end);
        }
      }
      std::size_t pairs = 0;
      double max_us = 0;
      for (const auto& [trace, start] : cause_start) {
        auto it = effect_end.find(trace);
        if (it == effect_end.end()) continue;
        ++pairs;
        const double us =
            it->second > start ? double(it->second - start) / 1000.0 : 0.0;
        max_us = std::max(max_us, us);
      }
      if (pairs == 0) {
        r.pass = false;
        r.detail = "no trace pairs '" + o.metric + "' -> '" + o.metric2 + "'";
        return r;
      }
      r.value = max_us;
      r.pass = max_us <= o.threshold;
      r.detail = "max over " + std::to_string(pairs) + " trace(s)";
      return r;
    }
  }
  r.detail = "unknown objective kind";
  return r;
}

}  // namespace

const char* slo_kind_name(SloObjective::Kind kind) {
  switch (kind) {
    case SloObjective::Kind::kHistogramP99Max: return "histogram_p99_max";
    case SloObjective::Kind::kHitRateMin: return "hit_rate_min";
    case SloObjective::Kind::kCounterAtLeast: return "counter_at_least";
    case SloObjective::Kind::kCounterAtMost: return "counter_at_most";
    case SloObjective::Kind::kSpanGapMax: return "span_gap_max_us";
  }
  return "?";
}

bool SloReport::pass() const {
  return std::all_of(results.begin(), results.end(),
                     [](const SloResult& r) { return r.pass; });
}

std::string SloReport::to_json() const {
  std::ostringstream os;
  os << "{\"pass\":" << (pass() ? "true" : "false") << ",\"objectives\":[";
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (i != 0) os << ",";
    const SloResult& r = results[i];
    os << "{\"name\":\"" << json_escape(r.name) << "\",\"kind\":\"" << r.kind
       << "\",\"pass\":" << (r.pass ? "true" : "false")
       << ",\"value\":" << fmt_double(r.value)
       << ",\"threshold\":" << fmt_double(r.threshold) << ",\"detail\":\""
       << json_escape(r.detail) << "\"}";
  }
  os << "]}";
  return os.str();
}

SloReport evaluate_slo(std::span<const SloObjective> objectives,
                       const Registry::Snapshot& snapshot,
                       std::span<const SpanRecord> spans) {
  SloReport report;
  report.results.reserve(objectives.size());
  for (const SloObjective& o : objectives) {
    report.results.push_back(eval_one(o, snapshot, spans));
  }
  return report;
}

std::vector<SloObjective> default_slo_objectives() {
  using Kind = SloObjective::Kind;
  return {
      // Cached-path decide latency (the CachingAuthorizer records every
      // decide into authz.decide_us). Generous for a loaded CI container;
      // tight enough to catch an accidental O(store) regression.
      {"decide_p99_us", Kind::kHistogramP99Max, "authz.decide_us", "", 5000.0},
      // A revocation published at the authority flips cached verdicts at
      // the subscribed masters within half a second (poll interval is
      // single-digit ms in the scenario; this bounds queueing tails).
      {"revoke_propagation_us", Kind::kSpanGapMax, "sync.publish",
       "authz.verdict_flip", 500'000.0},
      // The scheduler's per-(principal, target) decision cache earns its
      // keep: repeated waves mostly hit.
      {"decision_cache_hit_rate", Kind::kHitRateMin,
       "webcom.decision_cache_hits", "webcom.decision_cache_misses", 0.5},
      // Denied-correctness: after the revocation, the master actually
      // denied work (the flip is observable, not just traced) …
      {"denied_after_revocation", Kind::kCounterAtLeast,
       "webcom.tasks_denied_by_master", "", 1.0},
      // … and no replica rejected a delta getting there.
      {"replica_apply_errors", Kind::kCounterAtMost, "sync.apply_errors", "",
       0.0},
  };
}

}  // namespace mwsec::obs
