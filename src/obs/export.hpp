// OpenMetrics / Prometheus-text exposition of an obs::Registry snapshot.
//
// Metric names are sanitised (dots → underscores, "mwsec_" prefix);
// counters gain the conventional `_total` suffix; histograms emit the
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`, ending
// with le="+Inf". The output terminates with the OpenMetrics `# EOF`
// marker, so a scraper (or promtool) can validate completeness.
//
// `write_openmetrics_file` writes atomically (temp file + rename) so a
// scraper reading the path mid-update never sees a torn exposition —
// this is the periodic file sink behind `mwsec-stats serve`.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "util/result.hpp"

namespace mwsec::obs {

/// "webcom.decision_cache_hits" → "mwsec_webcom_decision_cache_hits".
std::string openmetrics_name(std::string_view name);

std::string render_openmetrics(const Registry::Snapshot& snapshot);

/// Atomic write: render to `path + ".tmp"`, then rename over `path`.
mwsec::Status write_openmetrics_file(const std::string& path,
                                     const Registry::Snapshot& snapshot);

}  // namespace mwsec::obs
