#include "obs/export.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace mwsec::obs {

namespace {

std::string fmt_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void render_histogram(std::ostringstream& os, const std::string& name,
                      const Histogram::Snapshot& h) {
  os << "# TYPE " << name << " histogram\n";
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cum += i < h.buckets.size() ? h.buckets[i] : 0;
    os << name << "_bucket{le=\"" << fmt_double(h.bounds[i]) << "\"} " << cum
       << "\n";
  }
  os << name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
  os << name << "_sum " << fmt_double(h.sum) << "\n";
  os << name << "_count " << h.count << "\n";
}

}  // namespace

std::string openmetrics_name(std::string_view name) {
  std::string out = "mwsec_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

std::string render_openmetrics(const Registry::Snapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " counter\n" << n << "_total " << v << "\n";
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string n = openmetrics_name(name);
    os << "# TYPE " << n << " gauge\n" << n << " " << v << "\n";
  }
  for (const auto& [name, h] : snapshot.histograms) {
    render_histogram(os, openmetrics_name(name), h);
  }
  os << "# EOF\n";
  return os.str();
}

mwsec::Status write_openmetrics_file(const std::string& path,
                                     const Registry::Snapshot& snapshot) {
  const std::string body = render_openmetrics(snapshot);
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return Error::make("openmetrics: cannot open " + tmp + ": " +
                           std::strerror(errno),
                       "obs");
  }
  const bool wrote = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const bool closed = std::fclose(f) == 0;
  if (!wrote || !closed) {
    std::remove(tmp.c_str());
    return Error::make("openmetrics: short write to " + tmp, "obs");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Error::make("openmetrics: rename to " + path + " failed: " +
                           std::strerror(errno),
                       "obs");
  }
  return {};
}

}  // namespace mwsec::obs
