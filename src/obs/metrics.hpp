// Lock-cheap metrics for the authorisation pipeline.
//
// Every mediation hot path (the compiled KeyNote engine, the WebCom
// scheduler, the stacked authoriser, KeyCOM, the simulated network)
// records into a process-wide `Registry` of named counters, gauges and
// fixed-bucket latency histograms. Recording is guarded by one relaxed
// atomic enable flag and is disabled by default, so an uninstrumented run
// pays a single predictable branch per site — the fig2/fig3 benchmark
// numbers must not move when observability is off.
//
// Instrumentation sites hold references obtained once (function-local
// statics); metric objects have stable addresses for the life of the
// registry, so the hot path never touches the registry map.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mwsec::obs {

/// Process-wide metrics switch. Relaxed loads: recording may lag an
/// enable/disable by a few operations, which is fine for statistics.
bool metrics_enabled();
void set_metrics_enabled(bool enabled);

/// Monotone event count. inc() is a no-op while metrics are disabled.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    if (!metrics_enabled()) return;
    v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// A settable level (queue depths, live clients...). set() applies even
/// while disabled — a gauge is state, not an event stream.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) {
    if (!metrics_enabled()) return;
    v_.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds,
/// with an implicit overflow bucket above the last. Observation is a
/// linear bound scan (bucket counts are small) plus a few relaxed atomics;
/// snapshots interpolate p50/p95/p99 within the hit bucket.
///
/// Contention tolerance (DESIGN.md §12): state is striped — each thread
/// records into one of kStripes independent stripe blocks (picked by a
/// per-thread index), so concurrent observers on different threads bump
/// disjoint cache lines instead of CAS-looping on one shared sum/min/max.
/// snapshot() and reset() merge/clear across stripes; a snapshot racing
/// observers sees each stripe's values at slightly different instants,
/// which is fine for statistics.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  /// Geometric microsecond buckets 0.1 µs .. ~13 s, the default for
  /// per-request latency.
  static std::vector<double> latency_bounds_us();

  void observe(double v);

  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    double min = 0;
    double max = 0;
    double p50 = 0;
    double p95 = 0;
    double p99 = 0;
    std::vector<double> bounds;          ///< upper bounds, ascending
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 counts
    double mean() const { return count == 0 ? 0 : sum / double(count); }
  };
  Snapshot snapshot() const;
  std::uint64_t count() const;
  void reset();

 private:
  static constexpr std::size_t kStripes = 8;  // power of two
  struct alignas(64) Stripe {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
    std::atomic<double> min{0};
    std::atomic<double> max{0};
  };

  std::vector<double> bounds_;
  std::array<Stripe, kStripes> stripes_;
};

/// Named metric registry. Creation takes a mutex (cold); recorded objects
/// are stable for the registry's lifetime, so hot paths cache references.
class Registry {
 public:
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies on first creation only; later callers get the
  /// existing histogram whatever bounds they pass.
  Histogram& histogram(std::string_view name, std::vector<double> bounds = {});

  /// Zero every value. Registrations (and site-cached references) survive.
  void reset();

  struct Snapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, std::int64_t>> gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;

    /// Counter value by exact name; 0 when absent.
    std::uint64_t counter_or_zero(std::string_view name) const;
    /// hits / (hits + misses), or 0 when nothing was recorded. The
    /// canonical derivation for the cache-rate metrics.
    double hit_rate(std::string_view hits, std::string_view misses) const;
  };
  Snapshot snapshot() const;

 private:
  Registry() = default;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Records elapsed microseconds into `h` on destruction. Reads the clock
/// only while metrics are enabled; otherwise construction is one branch.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h)
      : h_(metrics_enabled() ? &h : nullptr),
        start_(h_ != nullptr ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (h_ == nullptr) return;
    auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start_)
                  .count();
    h_->observe(double(ns) / 1000.0);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* h_;
  std::chrono::steady_clock::time_point start_;
};

/// Human-readable dump, one metric per line (histograms show
/// count/mean/p50/p95/p99).
std::string render_text(const Registry::Snapshot& snapshot);
/// The same snapshot as one JSON object:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
std::string render_json(const Registry::Snapshot& snapshot);

/// Append one JSON line {"label": label, ...snapshot...} to `path` —
/// the hand-off format bench binaries use to feed metrics snapshots into
/// tools/bench_report.py (see MWSEC_METRICS_OUT).
bool append_snapshot_jsonl(const std::string& path, std::string_view label,
                           const Registry::Snapshot& snapshot);

}  // namespace mwsec::obs
