#include "obs/trace.hpp"

#include <cstdio>
#include <sstream>

#include "util/logging.hpp"

namespace mwsec::obs {

namespace {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// One steady-clock origin per process (fixed at first use). Every span
/// timestamp is relative to this, never to a tracer's creation time —
/// components construct tracers at different moments, and per-tracer
/// epochs made cross-component trees unorderable.
std::chrono::steady_clock::time_point process_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

thread_local TraceContext t_current_context;

}  // namespace

std::uint64_t process_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - process_epoch())
          .count());
}

TraceContext current_context() { return t_current_context; }

ScopedTraceContext::ScopedTraceContext(TraceContext ctx)
    : saved_(t_current_context) {
  t_current_context = ctx;
  util::set_current_trace_id(ctx.trace_id);
}

ScopedTraceContext::~ScopedTraceContext() {
  t_current_context = saved_;
  util::set_current_trace_id(saved_.trace_id);
}

const std::string* SpanRecord::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string SpanRecord::to_json() const {
  std::ostringstream os;
  os << "{\"trace_id\":" << trace_id << ",\"id\":" << id
     << ",\"parent\":" << parent << ",\"name\":\"" << json_escape(name)
     << "\",\"start_ns\":" << start_ns << ",\"duration_ns\":" << duration_ns
     << ",\"status\":\"" << json_escape(status) << "\"";
  if (!attrs.empty()) {
    os << ",\"attrs\":{";
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (i != 0) os << ",";
      os << "\"" << json_escape(attrs[i].first) << "\":\""
         << json_escape(attrs[i].second) << "\"";
    }
    os << "}";
  }
  os << "}";
  return os.str();
}

Tracer::Tracer() { process_epoch(); }

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

void Tracer::set_capacity(std::size_t capacity) {
  std::scoped_lock lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  while (records_.size() > capacity_) records_.pop_front();
}

void Tracer::Span::set_attr(std::string_view key, std::string_view value) {
  if (rec_ == nullptr) return;
  for (auto& [k, v] : rec_->attrs) {
    if (k == key) {
      v = std::string(value);
      return;
    }
  }
  rec_->attrs.emplace_back(std::string(key), std::string(value));
}

void Tracer::Span::set_status(std::string_view status) {
  if (rec_ == nullptr) return;
  rec_->status = std::string(status);
}

Tracer::Span Tracer::Span::child(std::string name) {
  if (tracer_ == nullptr) return {};
  return tracer_->make_span(std::move(name), rec_->id, rec_->trace_id);
}

void Tracer::Span::finish() {
  if (tracer_ == nullptr) return;
  auto now = std::chrono::steady_clock::now();
  rec_->duration_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
          .count());
  Tracer* t = tracer_;
  tracer_ = nullptr;
  t->record(std::move(*rec_));
  rec_.reset();
}

Tracer::Span Tracer::root(std::string name) {
  if (!enabled()) return {};
  return make_span(std::move(name), 0, 0);
}

Tracer::Span Tracer::join(std::string name, TraceContext ctx) {
  if (!enabled()) return {};
  if (!ctx.valid()) return make_span(std::move(name), 0, 0);
  return make_span(std::move(name), ctx.span_id, ctx.trace_id);
}

Tracer::Span Tracer::start(std::string name) {
  return join(std::move(name), current_context());
}

Tracer::Span Tracer::make_span(std::string name, std::uint64_t parent,
                               std::uint64_t trace) {
  Span span;
  span.tracer_ = this;
  span.rec_ = std::make_unique<SpanRecord>();
  span.rec_->id = next_id_.fetch_add(1, std::memory_order_relaxed);
  // A root starts a new trace named after itself.
  span.rec_->trace_id = trace != 0 ? trace : span.rec_->id;
  span.rec_->parent = parent;
  span.rec_->name = std::move(name);
  span.start_ = std::chrono::steady_clock::now();
  span.rec_->start_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(span.start_ -
                                                           process_epoch())
          .count());
  return span;
}

void Tracer::record(SpanRecord rec) {
  std::scoped_lock lock(mu_);
  for (const auto& [id, sink] : sinks_) sink(rec);
  records_.push_back(std::move(rec));
  while (records_.size() > capacity_) records_.pop_front();
}

std::uint64_t Tracer::add_sink(Sink sink) {
  std::scoped_lock lock(mu_);
  auto id = next_sink_id_++;
  sinks_.emplace_back(id, std::move(sink));
  return id;
}

void Tracer::remove_sink(std::uint64_t sink_id) {
  std::scoped_lock lock(mu_);
  std::erase_if(sinks_,
                [&](const auto& entry) { return entry.first == sink_id; });
}

std::vector<SpanRecord> Tracer::records() const {
  std::scoped_lock lock(mu_);
  return {records_.begin(), records_.end()};
}

std::string Tracer::to_jsonl() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const auto& rec : records_) {
    out += rec.to_json();
    out += "\n";
  }
  return out;
}

std::size_t Tracer::size() const {
  std::scoped_lock lock(mu_);
  return records_.size();
}

void Tracer::clear() {
  std::scoped_lock lock(mu_);
  records_.clear();
}

}  // namespace mwsec::obs
