// KeyCOM over the network: the full Figure 8 flow — a WebCom client in
// Domain B submits a policy update request plus credentials to the KeyCOM
// service fronting Domain A's COM catalogue.
#include "net/network.hpp"
#include "keycom/server.hpp"

#include <gtest/gtest.h>

#include "middleware/com/catalogue.hpp"

namespace mwsec::keycom {
namespace {

using namespace std::chrono_literals;

crypto::KeyRing& ring() {
  static crypto::KeyRing r(/*seed=*/1904, /*modulus_bits=*/256);
  return r;
}

struct Rig {
  net::Network network;
  middleware::com::Catalogue catalogue{"winsrvA", "DomainA"};
  Service service{catalogue};
  Server server{network, "keycom-A", service};

  Rig() {
    service.trust_root()
        .add_policy_text("Authorizer: POLICY\nLicensees: \"" +
                         ring().principal("KWebCom") +
                         "\"\nConditions: app_domain == \"WebCom\";\n")
        .ok();
    EXPECT_TRUE(server.start().ok());
  }
};

TEST(KeyComServer, EndToEndUpdateOverNetwork) {
  Rig rig;
  auto client = rig.network.open("webcom-client-B").take();

  UpdateRequest req;
  req.add_assignments.push_back({"DomainA", "Operators", "userB"});
  req.sign(ring().identity("KWebCom"));

  auto reply = submit_update(*client, "keycom-A", req, 2000ms);
  ASSERT_TRUE(reply.ok()) << reply.error().message;
  EXPECT_TRUE(reply->accepted);
  EXPECT_TRUE(reply->report.fully_applied());
  EXPECT_EQ(reply->report.assignments_applied, 1u);
  EXPECT_TRUE(
      rig.catalogue.export_policy().user_in_role("userB", "DomainA", "Operators"));
}

TEST(KeyComServer, BadSignatureReportedOverNetwork) {
  Rig rig;
  auto client = rig.network.open("attacker").take();

  UpdateRequest req;
  req.add_assignments.push_back({"DomainA", "Operators", "mallory"});
  req.sign(ring().identity("KWebCom"));
  req.add_assignments[0].user = "mallory2";  // tamper after signing

  auto reply = submit_update(*client, "keycom-A", req, 2000ms);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->accepted);
  EXPECT_NE(reply->error.find("signature"), std::string::npos);
}

TEST(KeyComServer, MalformedPayloadAnswered) {
  Rig rig;
  auto client = rig.network.open("fuzzer").take();
  ASSERT_TRUE(client->send("keycom-A", kSubjectUpdate,
                           util::Bytes{1, 2, 3}).ok());
  auto m = client->receive(2000ms);
  ASSERT_TRUE(m.has_value());
  auto reply = decode_report(m->payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_FALSE(reply->accepted);
}

TEST(KeyComServer, TimeoutWhenServiceUnreachable) {
  net::Network network;
  auto client = network.open("lonely").take();
  UpdateRequest req;
  req.sign(ring().identity("KWebCom"));
  auto reply = submit_update(*client, "keycom-nowhere", req, 100ms);
  EXPECT_FALSE(reply.ok());
}

TEST(KeyComServer, ReportEncodingRoundTrip) {
  UpdateReport report;
  report.assignments_applied = 2;
  report.grants_applied = 1;
  report.assignments_removed = 3;
  report.rejected = {"row a", "row b"};
  auto decoded = decode_report(encode_report(report, true, ""));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->accepted);
  EXPECT_EQ(decoded->report.assignments_applied, 2u);
  EXPECT_EQ(decoded->report.grants_applied, 1u);
  EXPECT_EQ(decoded->report.assignments_removed, 3u);
  EXPECT_EQ(decoded->report.rejected.size(), 2u);
}

}  // namespace
}  // namespace mwsec::keycom
