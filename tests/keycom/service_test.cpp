// KeyCOM service tests: Figure 8's decentralised middleware administration.
// Scenario (paper §4.4, Figures 6-7): the WebCom key authorises Claire as
// a Finance Manager; Claire delegates to Fred; Fred asks KeyCOM to add him
// to the COM+ catalogue — no human administrator involved.
#include "keycom/service.hpp"

#include <gtest/gtest.h>

#include "middleware/com/catalogue.hpp"

namespace mwsec::keycom {
namespace {

crypto::KeyRing& ring() {
  static crypto::KeyRing r(/*seed=*/1879, /*modulus_bits=*/256);
  return r;
}

/// Trust root: POLICY trusts the WebCom admin key for app_domain WebCom.
std::string webcom_root() {
  return "Authorizer: POLICY\nLicensees: \"" +
         ring().principal("KWebCom") +
         "\"\nConditions: app_domain == \"WebCom\";\n";
}

/// KWebCom -> Claire: Finance/Manager membership (Figure 6).
keynote::Assertion claire_membership() {
  return keynote::AssertionBuilder()
      .authorizer("\"" + ring().principal("KWebCom") + "\"")
      .licensees("\"" + ring().principal("Kclaire") + "\"")
      .conditions(
          "app_domain == \"WebCom\" && Domain==\"Finance\" && "
          "Role==\"Manager\"")
      .build_signed(ring().identity("KWebCom"))
      .take();
}

/// Claire -> Fred: re-delegation of the same role (Figure 7, Finance
/// variant).
keynote::Assertion fred_delegation() {
  return keynote::AssertionBuilder()
      .authorizer("\"" + ring().principal("Kclaire") + "\"")
      .licensees("\"" + ring().principal("Kfred") + "\"")
      .conditions(
          "app_domain==\"WebCom\" && Domain==\"Finance\" && "
          "Role==\"Manager\"")
      .build_signed(ring().identity("Kclaire"))
      .take();
}

struct Rig {
  middleware::AuditLog audit;
  middleware::com::Catalogue catalogue{"winsrv", "Finance", &audit};
  Service service{catalogue, &audit};

  Rig() {
    EXPECT_TRUE(service.trust_root().add_policy_text(webcom_root()).ok());
  }
};

TEST(KeyComService, DelegatedMembershipUpdateApplies) {
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  req.credentials = claire_membership().to_text() + "\n" +
                    fred_delegation().to_text();
  req.sign(ring().identity("Kfred"));

  auto report = rig.service.apply(req);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report->fully_applied());
  EXPECT_EQ(report->assignments_applied, 1u);
  EXPECT_TRUE(
      rig.catalogue.export_policy().user_in_role("Fred", "Finance", "Manager"));
}

TEST(KeyComService, RequestWithoutCredentialsRejected) {
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  req.sign(ring().identity("Kfred"));  // no delegation chain presented
  auto report = rig.service.apply(req);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->fully_applied());
  EXPECT_EQ(report->assignments_applied, 0u);
  EXPECT_EQ(report->rejected.size(), 1u);
}

TEST(KeyComService, UnsignedRequestRejected) {
  Rig rig;
  UpdateRequest req;
  req.requester = ring().principal("Kfred");
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  EXPECT_FALSE(rig.service.apply(req).ok());
  EXPECT_EQ(rig.service.stats().bad_signatures, 1u);
}

TEST(KeyComService, TamperedRequestRejected) {
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  req.credentials = claire_membership().to_text();
  req.sign(ring().identity("Kfred"));
  req.add_assignments.push_back({"Finance", "Manager", "Mallory"});  // after!
  EXPECT_FALSE(rig.service.apply(req).ok());
}

TEST(KeyComService, DelegationCannotExceedDelegatedScope) {
  // Fred's chain covers Finance/Manager only; a Sales/Manager row (the
  // verbatim Figure 7 case) and a grant row must be refused.
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Sales", "Manager", "Fred"});
  req.add_grants.push_back({"Finance", "Manager", "SalariesDB", "Access"});
  req.credentials = claire_membership().to_text() + "\n" +
                    fred_delegation().to_text();
  req.sign(ring().identity("Kfred"));
  auto report = rig.service.apply(req);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->assignments_applied, 0u);
  // The grant row: chain conditions don't mention ObjectType/Permission,
  // so the membership chain actually authorises it? No: the conditions
  // require nothing about Permission, and the env includes extra
  // attributes, which the chain ignores -> authorised. COM+ then applies
  // it because "Access" is a COM verb.
  EXPECT_EQ(report->grants_applied, 1u);
  EXPECT_EQ(report->rejected.size(), 1u);  // the Sales row
}

TEST(KeyComService, AdminKeyCanActDirectly) {
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Clerk", "Newhire"});
  req.add_grants.push_back({"Finance", "Clerk", "SalariesDB", "Access"});
  req.sign(ring().identity("KWebCom"));
  auto report = rig.service.apply(req);
  ASSERT_TRUE(report.ok()) << report.error().message;
  EXPECT_TRUE(report->fully_applied());
  EXPECT_TRUE(rig.catalogue.mediate("Newhire", "SalariesDB", "Access"));
}

TEST(KeyComService, InexpressiblePermissionReportedByTargetStore) {
  Rig rig;
  UpdateRequest req;
  req.add_grants.push_back({"Finance", "Clerk", "SalariesDB", "write"});
  req.sign(ring().identity("KWebCom"));
  auto report = rig.service.apply(req);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->grants_applied, 0u);
  ASSERT_EQ(report->rejected.size(), 1u);
  EXPECT_NE(report->rejected[0].find("not expressible"), std::string::npos);
}

TEST(KeyComService, RevocationRemovesMembership) {
  Rig rig;
  // Commission Fred first.
  UpdateRequest add;
  add.add_assignments.push_back({"Finance", "Manager", "Fred"});
  add.sign(ring().identity("KWebCom"));
  ASSERT_TRUE(rig.service.apply(add)->fully_applied());
  ASSERT_TRUE(
      rig.catalogue.export_policy().user_in_role("Fred", "Finance", "Manager"));

  UpdateRequest remove;
  remove.remove_assignments.push_back({"Finance", "Manager", "Fred"});
  remove.sign(ring().identity("KWebCom"));
  auto report = rig.service.apply(remove);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->assignments_removed, 1u);
  EXPECT_FALSE(
      rig.catalogue.export_policy().user_in_role("Fred", "Finance", "Manager"));
}

TEST(KeyComService, RevocationRequiresAuthority) {
  Rig rig;
  UpdateRequest add;
  add.add_assignments.push_back({"Finance", "Manager", "Claire"});
  add.sign(ring().identity("KWebCom"));
  ASSERT_TRUE(rig.service.apply(add)->fully_applied());

  UpdateRequest remove;
  remove.remove_assignments.push_back({"Finance", "Manager", "Claire"});
  remove.sign(ring().identity("Kmallory"));
  auto report = rig.service.apply(remove);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->assignments_removed, 0u);
  EXPECT_EQ(report->rejected.size(), 1u);
  EXPECT_TRUE(
      rig.catalogue.export_policy().user_in_role("Claire", "Finance", "Manager"));
}

TEST(KeyComService, StatsAccumulate) {
  Rig rig;
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  req.credentials = claire_membership().to_text() + "\n" +
                    fred_delegation().to_text();
  req.sign(ring().identity("Kfred"));
  rig.service.apply(req).ok();
  rig.service.apply(req).ok();  // idempotent at the catalogue level
  EXPECT_EQ(rig.service.stats().requests, 2u);
  EXPECT_GE(rig.service.stats().rows_applied, 2u);
  EXPECT_GT(rig.audit.size(), 0u);
}

TEST(KeyComUpdateRequest, EncodeDecodeRoundTrip) {
  UpdateRequest req;
  req.add_assignments.push_back({"Finance", "Manager", "Fred"});
  req.add_grants.push_back({"Finance", "Clerk", "SalariesDB", "Access"});
  req.remove_assignments.push_back({"Sales", "Manager", "Elaine"});
  req.credentials = "Authorizer: POLICY\nConditions: true\n";
  req.sign(ring().identity("Kfred"));

  auto decoded = UpdateRequest::decode(req.encode());
  ASSERT_TRUE(decoded.ok()) << decoded.error().message;
  EXPECT_EQ(decoded->requester, req.requester);
  EXPECT_EQ(decoded->add_assignments, req.add_assignments);
  EXPECT_EQ(decoded->add_grants, req.add_grants);
  EXPECT_EQ(decoded->remove_assignments, req.remove_assignments);
  EXPECT_EQ(decoded->credentials, req.credentials);
  EXPECT_TRUE(decoded->verify().ok());
}

TEST(KeyComUpdateRequest, DecodeRejectsTruncation) {
  UpdateRequest req;
  req.add_assignments.push_back({"D", "R", "U"});
  req.sign(ring().identity("Kfred"));
  auto bytes = req.encode();
  util::Bytes cut(bytes.begin(), bytes.begin() + 10);
  EXPECT_FALSE(UpdateRequest::decode(cut).ok());
}

}  // namespace
}  // namespace mwsec::keycom
